//! Transport matrix: the same session-layer invariants checked over both
//! transports the collector supports. `GILL_TRANSPORT=tcp` runs them over
//! real sockets through the daemon pool; `GILL_TRANSPORT=sim` (the
//! default) runs them in-process over `SimTransport` on a virtual clock.
//! CI runs this suite once per backend.

use gill::collector::{
    handshake_client, run_scenario, DaemonConfig, DaemonPool, FaultSchedule, MemoryStorage,
    MessageStream, Scenario,
};
use gill::prelude::*;
use gill::wire::{BgpMessage, Notification, UpdateMessage};
use std::net::{Ipv4Addr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Backend {
    Tcp,
    Sim,
}

fn backend() -> Backend {
    match std::env::var("GILL_TRANSPORT").as_deref() {
        Ok("tcp") => Backend::Tcp,
        Ok("sim") | Err(_) => Backend::Sim,
        Ok(other) => panic!("unknown GILL_TRANSPORT value {other:?} (use tcp or sim)"),
    }
}

fn script(n: u32) -> Vec<UpdateMessage> {
    (0..n)
        .map(|i| {
            UpdateMessage::announce(
                Prefix::synthetic(i),
                AsPath::from_u32s([65021, 174, 3356]),
                Ipv4Addr::new(10, 0, 0, 9),
                vec![],
            )
        })
        .collect()
}

fn wait_counter(counter: &AtomicUsize, expect: usize) {
    for _ in 0..500 {
        if counter.load(Ordering::Relaxed) >= expect {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Delivered prefixes, in reception order, for either backend.
fn deliver_over_backend(n: u32) -> Vec<Prefix> {
    match backend() {
        Backend::Sim => {
            let scenario = Scenario {
                seed: 1,
                updates: script(n),
                ..Scenario::default()
            };
            let out = run_scenario(&scenario);
            assert!(out.completed, "{}", out.transcript.lines().join("\n"));
            out.delivered
                .iter()
                .flat_map(|u| u.announced.iter().map(|n| n.prefix))
                .collect()
        }
        Backend::Tcp => {
            let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
            let addr = pool.local_addr();
            {
                let stream = TcpStream::connect(addr).unwrap();
                let mut ms = MessageStream::new(stream);
                handshake_client(&mut ms, 65021).unwrap();
                for u in script(n) {
                    ms.write_message(&BgpMessage::Update(u)).unwrap();
                }
                ms.write_message(&BgpMessage::Notification(Notification::cease()))
                    .unwrap();
            }
            wait_counter(&pool.stats().received, n as usize);
            pool.stop();
            let mut storage = MemoryStorage::default();
            pool.drain_into(&mut storage);
            storage.updates.iter().map(|u| u.prefix).collect()
        }
    }
}

#[test]
fn handshake_and_in_order_delivery() {
    let got = deliver_over_backend(8);
    let want: Vec<Prefix> = (0..8).map(Prefix::synthetic).collect();
    assert_eq!(got, want, "backend {:?}", backend());
}

#[test]
fn malformed_open_is_rejected_and_the_next_peer_is_served() {
    match backend() {
        Backend::Sim => {
            // one attempt, marker bit flipped in the client's OPEN: the
            // handshake must fail without delivering anything
            let mut scenario = Scenario {
                seed: 2,
                updates: script(2),
                max_attempts: 1,
                ..Scenario::default()
            };
            scenario.client_faults = vec![FaultSchedule::parse("corrupt@3.7").unwrap()];
            let out = run_scenario(&scenario);
            assert!(!out.completed);
            assert!(out.delivered.is_empty());
            assert!(out
                .transcript
                .lines()
                .join("\n")
                .contains("notification-tx code=1 sub=1"));

            // a clean scenario afterwards succeeds
            scenario.client_faults.clear();
            let out = run_scenario(&scenario);
            assert!(out.completed);
        }
        Backend::Tcp => {
            let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
            let addr = pool.local_addr();
            {
                use std::io::Write;
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(b"\xffnot a bgp marker at all\x00\x00").unwrap();
            }
            wait_counter(&pool.stats().handshake_failures, 1);
            assert_eq!(pool.stats().handshake_failures.load(Ordering::Relaxed), 1);

            // a clean peer afterwards is served
            {
                let stream = TcpStream::connect(addr).unwrap();
                let mut ms = MessageStream::new(stream);
                handshake_client(&mut ms, 65022).unwrap();
                ms.write_message(&BgpMessage::Update(script(1).remove(0)))
                    .unwrap();
            }
            wait_counter(&pool.stats().received, 1);
            pool.stop();
            assert_eq!(pool.stats().received.load(Ordering::Relaxed), 1);
        }
    }
}

#[test]
fn graceful_cease_closes_without_errors() {
    match backend() {
        Backend::Sim => {
            let scenario = Scenario {
                seed: 3,
                updates: script(1),
                ..Scenario::default()
            };
            let out = run_scenario(&scenario);
            assert!(out.completed);
            assert_eq!(out.attempts, 1);
            let joined = out.transcript.lines().join("\n");
            assert!(joined.contains("closed reason=NotificationReceived"));
            assert!(!joined.contains("HoldTimerExpired"));
        }
        Backend::Tcp => {
            let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
            let addr = pool.local_addr();
            {
                let stream = TcpStream::connect(addr).unwrap();
                let mut ms = MessageStream::new(stream);
                handshake_client(&mut ms, 65023).unwrap();
                ms.write_message(&BgpMessage::Notification(Notification::cease()))
                    .unwrap();
            }
            wait_counter(&pool.stats().sessions_closed, 1);
            pool.stop();
            let stats = pool.stats();
            assert_eq!(stats.sessions_opened.load(Ordering::Relaxed), 1);
            assert_eq!(stats.sessions_closed.load(Ordering::Relaxed), 1);
            assert_eq!(stats.hold_expirations.load(Ordering::Relaxed), 0);
        }
    }
}
