//! End-to-end test of the command-line tools: simulate → analyze →
//! replay, exercising the real binaries through their public interface.

use std::path::PathBuf;
use std::process::Command;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gill-cli-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn simulate_analyze_replay_pipeline() {
    let dir = tmpdir("pipeline");
    let updates = dir.join("updates.mrt");
    let ribs = dir.join("ribs.mrt");
    let filters = dir.join("filters.txt");
    let kept = dir.join("kept.mrt");

    // 1. simulate
    let out = Command::new(env!("CARGO_BIN_EXE_gill-simulate"))
        .args([
            "--ases",
            "150",
            "--coverage",
            "0.25",
            "--events",
            "40",
            "--seed",
            "5",
            "--out",
            updates.to_str().unwrap(),
            "--ribs",
            ribs.to_str().unwrap(),
        ])
        .output()
        .expect("gill-simulate runs");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(updates.exists() && ribs.exists());

    // 2. analyze
    let out = Command::new(env!("CARGO_BIN_EXE_gill-analyze"))
        .args([
            "--updates",
            updates.to_str().unwrap(),
            "--ribs",
            ribs.to_str().unwrap(),
            "--filters",
            filters.to_str().unwrap(),
        ])
        .output()
        .expect("gill-analyze runs");
    assert!(
        out.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("component #1"), "missing summary: {stdout}");
    let filter_text = std::fs::read_to_string(&filters).unwrap();
    assert!(
        filter_text.lines().any(|l| l.starts_with("drop ")),
        "no drop rules emitted"
    );

    // 3. replay
    let out = Command::new(env!("CARGO_BIN_EXE_gill-replay"))
        .args([
            "--updates",
            updates.to_str().unwrap(),
            "--filters",
            filters.to_str().unwrap(),
            "--out",
            kept.to_str().unwrap(),
        ])
        .output()
        .expect("gill-replay runs");
    assert!(
        out.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pass the filters"), "{stdout}");
    // the filtered archive is smaller than the input
    let in_size = std::fs::metadata(&updates).unwrap().len();
    let out_size = std::fs::metadata(&kept).unwrap().len();
    assert!(
        out_size < in_size,
        "filtering must shrink the archive ({out_size} vs {in_size})"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_gill-simulate"))
        .args(["--bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_gill-analyze"))
        .output()
        .unwrap();
    assert!(!out.status.success(), "missing required flag must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn collectord_runs_and_archives_nothing_without_peers() {
    let dir = tmpdir("collectord");
    let archive = dir.join("collected.mrt");
    let out = Command::new(env!("CARGO_BIN_EXE_gill-collectord"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--archive",
            archive.to_str().unwrap(),
            "--duration",
            "1",
        ])
        .output()
        .expect("gill-collectord runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("received 0"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
