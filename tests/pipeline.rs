//! Cross-crate integration: topology → simulator → GILL analysis →
//! filters → collection, exercising the whole pipeline the way the
//! deployed system runs it.

use gill::core::AnchorConfig;
use gill::prelude::*;
use std::collections::HashMap;

fn categories(topo: &Topology) -> HashMap<Asn, AsCategory> {
    let cats = gill::topology::categories::classify(topo);
    (0..topo.num_ases() as u32)
        .map(|u| (topo.asn(u), cats[u as usize]))
        .collect()
}

fn small_gill_config() -> GillConfig {
    GillConfig {
        anchor: AnchorConfig {
            events_per_cell: 3,
            ..AnchorConfig::default()
        },
        ..GillConfig::default()
    }
}

#[test]
fn end_to_end_train_filter_collect() {
    let topo = TopologyBuilder::artificial(200, 5).build();
    let cats = categories(&topo);
    let vps = topo.pick_vps(0.25, 3);
    let mut sim = Simulator::new(&topo);

    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(50).seed(1));
    let analysis = GillAnalysis::run_with_categories(&train, &cats, &small_gill_config());

    // the analysis discards a meaningful share and keeps anchors unfiltered
    assert!(analysis.component1.redundant_fraction() > 0.2);
    assert!(!analysis.component2.anchors.is_empty());
    let filters = analysis.filter_set();

    // a future window: anchors fully retained, total volume reduced
    let eval = sim.synthesize_stream(&vps, StreamConfig::default().events(50).seed(2));
    let kept: Vec<&BgpUpdate> = eval.updates.iter().filter(|u| filters.accepts(u)).collect();
    assert!(kept.len() < eval.updates.len());
    for u in &eval.updates {
        if analysis.component2.anchors.contains(&u.vp) {
            assert!(filters.accepts(u), "anchor update dropped");
        }
    }
    // never-seen-before (vp, prefix) spaces default to accept
    let novel = UpdateBuilder::announce(VpId::from_asn(Asn(9999)), Prefix::synthetic(999))
        .path([9999, 1])
        .build();
    assert!(filters.accepts(&novel));
}

#[test]
fn gill_beats_random_vp_sampling_on_moas_detection() {
    let topo = TopologyBuilder::artificial(200, 5).build();
    let cats = categories(&topo);
    let vps = topo.pick_vps(0.3, 3);
    let mut sim = Simulator::new(&topo);
    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(11));
    let eval = sim.synthesize_stream(
        &vps,
        StreamConfig {
            events: 60,
            seed: 12,
            weights: [0.3, 0.25, 0.25, 0.2],
            ..StreamConfig::default()
        },
    );
    use gill::sampling::{GillSampler, GillVariant, RandomVps, Sampler};
    let gill = GillSampler::train(&train, &cats, &small_gill_config(), GillVariant::Full);
    let budget = gill.sample(&eval, usize::MAX, 1).len();
    assert!(budget > 0);
    let moas = gill::use_cases::MoasDetection::new(&eval);
    let g = moas.score(&eval, &gill.sample(&eval, budget, 1));
    // average the random baseline over seeds (it is high-variance)
    let mut r_sum = 0.0;
    for seed in 0..5 {
        r_sum += moas.score(&eval, &RandomVps.sample(&eval, budget, seed));
    }
    let r = r_sum / 5.0;
    assert!(
        g >= r - 0.05,
        "GILL ({g:.2}) should not lose to random VPs ({r:.2}) at equal budget"
    );
}

#[test]
fn wire_roundtrip_of_simulated_stream() {
    // every simulated update survives BGP wire encoding and MRT archival
    let topo = TopologyBuilder::artificial(100, 5).build();
    let vps = topo.pick_vps(0.2, 3);
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(20).seed(3));
    use gill::wire::{BgpMessage, MrtReader, MrtRecord, MrtWriter, UpdateMessage};
    let mut w = MrtWriter::new(Vec::new());
    for u in &stream.updates {
        let msg = UpdateMessage::from_domain(u).expect("IPv4 update encodes");
        w.write_record(&MrtRecord {
            time: u.time,
            peer_as: u.vp.asn,
            local_as: Asn(65535),
            peer_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 2)),
            local_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1)),
            message: BgpMessage::Update(msg),
        })
        .unwrap();
    }
    let bytes = w.into_inner().unwrap();
    let mut r = MrtReader::new(&bytes[..]);
    let mut back = Vec::new();
    while let Some(rec) = r.next_record().unwrap() {
        if let BgpMessage::Update(u) = rec.message {
            back.extend(u.to_domain(VpId::from_asn(rec.peer_as), rec.time));
        }
    }
    assert_eq!(back.len(), stream.updates.len());
    for (a, b) in back.iter().zip(&stream.updates) {
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.path, b.path);
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.vp, b.vp);
        // MRT stores second resolution; times agree within a second
        assert!(a.time.as_secs() == b.time.as_secs());
    }
}

#[test]
fn orchestrator_drives_the_daemon_pool() {
    use gill::collector::{
        DaemonConfig, DaemonPool, FakePeerConfig, MemoryStorage, Orchestrator, OrchestratorConfig,
    };
    let topo = TopologyBuilder::artificial(120, 5).build();
    let cats = categories(&topo);
    let vps = topo.pick_vps(0.25, 3);
    let mut sim = Simulator::new(&topo);
    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(30).seed(7));

    // orchestrator trains from the mirror and produces filters
    let mut orch = Orchestrator::new(
        OrchestratorConfig {
            gill: small_gill_config(),
            ..OrchestratorConfig::default()
        },
        train.vps.clone(),
        cats,
    );
    orch.set_initial_ribs(train.initial_ribs.clone());
    orch.observe(train.updates.iter().cloned());
    orch.maybe_refresh(Timestamp::from_secs(60))
        .expect("first refresh runs");

    // install into a live pool and push updates through real TCP
    let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
    pool.install_filters(orch.filters().clone());
    let addr = pool.local_addr();
    let h = std::thread::spawn(move || {
        gill::collector::run_fake_peer(
            addr,
            &FakePeerConfig {
                asn: 65001,
                rate_per_sec: 500.0,
                count: 50,
                prefixes: 20,
            },
        )
    });
    h.join().unwrap().unwrap();
    // deterministic drain: wait on the received counter, not wall time
    for _ in 0..500 {
        if pool
            .stats()
            .received
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 50
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    pool.stop();
    let mut storage = MemoryStorage::default();
    pool.drain_into(&mut storage);
    let s = pool.stats();
    let rx = s.received.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rx, 50);
    assert_eq!(
        storage.updates.len(),
        s.retained.load(std::sync::atomic::Ordering::Relaxed)
    );
}
