//! Failure injection: the platform must survive malformed peers, abrupt
//! disconnects, and corrupted archives without crashing or corrupting
//! state.

use gill::collector::{handshake_client, DaemonConfig, DaemonPool, MemoryStorage, MessageStream};
use gill::prelude::*;
use gill::wire::{BgpMessage, MrtReader, MrtRecord, MrtWriter, UpdateMessage};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Deterministic drain: waits until the pool's received counter reaches
/// `expect` (bounded), instead of sleeping an arbitrary wall-clock amount.
fn wait_received(pool: &DaemonPool, expect: usize) {
    for _ in 0..500 {
        if pool
            .stats()
            .received
            .load(std::sync::atomic::Ordering::Relaxed)
            >= expect
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn send_one_update(addr: std::net::SocketAddr, asn: u32, prefix: u32) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut ms = MessageStream::new(stream);
    handshake_client(&mut ms, asn).unwrap();
    let u = UpdateBuilder::announce(VpId::from_asn(Asn(asn)), Prefix::synthetic(prefix))
        .path([asn, 2, 3])
        .build();
    ms.write_message(&BgpMessage::Update(UpdateMessage::from_domain(&u).unwrap()))
        .unwrap();
    // abrupt close without NOTIFICATION — daemons must treat EOF as done
}

#[test]
fn garbage_peer_does_not_poison_the_pool() {
    let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
    let addr = pool.local_addr();

    // a peer that sends pure garbage instead of an OPEN
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\nHost: not-bgp\r\n\r\n")
            .unwrap();
        // the daemon rejects the handshake; dropping the socket is fine
    }
    // a peer that handshakes, then desynchronizes the stream
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, 65009).unwrap();
        // raw garbage instead of a framed message
        // (write through a fresh socket handle since MessageStream owns it)
    }
    // a well-behaved peer afterwards must still be served
    send_one_update(addr, 65010, 7);
    wait_received(&pool, 1);
    pool.stop();
    let mut storage = MemoryStorage::default();
    pool.drain_into(&mut storage);
    assert!(
        storage
            .updates
            .iter()
            .any(|u| u.vp == VpId::from_asn(Asn(65010))),
        "healthy peer lost after malformed peers: {:?}",
        storage.updates
    );
}

#[test]
fn abrupt_disconnect_mid_message_is_contained() {
    let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
    let addr = pool.local_addr();
    {
        // handshake on a cloned handle, then write half a message on the
        // raw socket and slam the connection shut
        let raw = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(raw.try_clone().unwrap());
        handshake_client(&mut ms, 65012).unwrap();
        let u = UpdateBuilder::announce(VpId::from_asn(Asn(65012)), Prefix::synthetic(1))
            .path([65012, 2])
            .build();
        let bytes = BgpMessage::Update(UpdateMessage::from_domain(&u).unwrap())
            .encode_to_vec()
            .unwrap();
        let mut raw = raw;
        raw.write_all(&bytes[..bytes.len() / 2]).unwrap();
        drop(raw);
    }
    // pool still serves others
    send_one_update(addr, 65013, 2);
    wait_received(&pool, 1);
    pool.stop();
    let mut storage = MemoryStorage::default();
    pool.drain_into(&mut storage);
    assert!(storage
        .updates
        .iter()
        .any(|u| u.vp == VpId::from_asn(Asn(65013))));
}

#[test]
fn corrupted_mrt_archive_fails_loudly_not_silently() {
    // build a healthy archive
    let mut w = MrtWriter::new(Vec::new());
    for i in 0..4u32 {
        let u = UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(i))
            .at(Timestamp::from_secs(i as u64))
            .path([65001, 2])
            .build();
        w.write_record(&MrtRecord {
            time: u.time,
            peer_as: u.vp.asn,
            local_as: Asn(65535),
            peer_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 2)),
            local_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1)),
            message: BgpMessage::Update(UpdateMessage::from_domain(&u).unwrap()),
        })
        .unwrap();
    }
    let mut bytes = w.into_inner().unwrap();
    // truncate mid-record
    bytes.truncate(bytes.len() - 7);
    let mut r = MrtReader::new(&bytes[..]);
    let mut ok = 0;
    let err = loop {
        match r.next_record() {
            Ok(Some(_)) => ok += 1,
            Ok(None) => break None,
            Err(e) => break Some(e),
        }
    };
    assert_eq!(ok, 3, "intact records still readable");
    assert!(err.is_some(), "truncation must surface as an error");
}
