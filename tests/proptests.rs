//! Property-based tests on the core data structures and invariants.

use gill::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// Prefix properties
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn prefix_parse_display_roundtrip(a in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::v4(Ipv4Addr::from(a), len);
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn prefix_masking_is_idempotent(a in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::v4(Ipv4Addr::from(a), len);
        let q = match p.addr() {
            std::net::IpAddr::V4(v4) => Prefix::v4(v4, len),
            _ => unreachable!(),
        };
        prop_assert_eq!(p, q);
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_up_to_equality(
        a in any::<u32>(), la in 0u8..=32,
        b in any::<u32>(), lb in 0u8..=32,
    ) {
        let p = Prefix::v4(Ipv4Addr::from(a), la);
        let q = Prefix::v4(Ipv4Addr::from(b), lb);
        prop_assert!(p.covers(&p));
        if p.covers(&q) && q.covers(&p) {
            prop_assert_eq!(p, q);
        }
        // covers implies overlap, symmetric
        prop_assert_eq!(p.overlaps(&q), q.overlaps(&p));
    }
}

// ---------------------------------------------------------------------------
// AS path properties
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn path_links_count_bounded_by_hops(hops in proptest::collection::vec(1u32..10_000, 0..12)) {
        let p = AsPath::from_u32s(hops.clone());
        prop_assert!(p.links().len() <= hops.len().saturating_sub(1));
        prop_assert_eq!(p.hop_count(), hops.len());
        prop_assert!(p.unique_len() <= p.hop_count());
    }

    #[test]
    fn prepend_preserves_suffix(hops in proptest::collection::vec(1u32..10_000, 1..10), new_as in 1u32..10_000) {
        let p = AsPath::from_u32s(hops);
        let q = p.prepend(Asn(new_as));
        prop_assert_eq!(q.first_hop(), Some(Asn(new_as)));
        prop_assert_eq!(q.origin(), p.origin());
        prop_assert_eq!(q.hop_count(), p.hop_count() + 1);
        // every link of p is still in q
        for l in p.links() {
            prop_assert!(q.links().contains(&l));
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec properties
// ---------------------------------------------------------------------------

// Shared with the gill-stream frame-codec proptests: both codecs draw
// updates from the same distribution (bgp-types `testgen` feature).
use gill::types::testgen::arb_update;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_update_roundtrip(u in arb_update()) {
        use gill::wire::{AddressFamily, BgpMessage, DecodeCtx, UpdateMessage};
        let wire = UpdateMessage::from_domain(&u).unwrap();
        let bytes = BgpMessage::Update(wire).encode_to_vec().unwrap();
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        // ADD-PATH updates need the negotiated session context to decode
        let ctx = if u.path_id.is_some() {
            DecodeCtx::from_families([AddressFamily::Ipv4Unicast, AddressFamily::Ipv6Unicast])
        } else {
            DecodeCtx::default()
        };
        let BgpMessage::Update(back) = BgpMessage::decode_ctx(&mut buf, &ctx).unwrap().unwrap() else {
            return Err(TestCaseError::fail("wrong message type"));
        };
        let domain = back.to_domain(u.vp, u.time);
        prop_assert_eq!(domain.len(), 1);
        prop_assert_eq!(&domain[0].prefix, &u.prefix);
        prop_assert_eq!(&domain[0].path, &u.path);
        prop_assert_eq!(&domain[0].communities, &u.communities);
        prop_assert_eq!(&domain[0].kind, &u.kind);
    }

    #[test]
    fn decoder_never_panics_on_mutated_input(u in arb_update(), flip in 0usize..64, bit in 0u8..8) {
        use gill::wire::{BgpMessage, UpdateMessage};
        let wire = UpdateMessage::from_domain(&u).unwrap();
        let mut bytes = BgpMessage::Update(wire).encode_to_vec().unwrap();
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        // must not panic; any Result/None outcome is fine
        let _ = BgpMessage::decode(&mut buf);
    }

    #[test]
    fn mrt_record_roundtrip(u in arb_update()) {
        use gill::wire::{AddressFamily, BgpMessage, DecodeCtx, MrtRecord, UpdateMessage};
        let rec = MrtRecord {
            time: u.time,
            peer_as: u.vp.asn,
            local_as: Asn(65535),
            peer_ip: std::net::IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            local_ip: std::net::IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            message: BgpMessage::Update(UpdateMessage::from_domain(&u).unwrap()),
        };
        let bytes = rec.encode().unwrap();
        let ctx = if u.path_id.is_some() {
            DecodeCtx::from_families([AddressFamily::Ipv4Unicast, AddressFamily::Ipv6Unicast])
        } else {
            DecodeCtx::default()
        };
        let (back, used) = MrtRecord::decode_ctx(&bytes, &ctx).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.peer_as, rec.peer_as);
        prop_assert_eq!(back.message, rec.message);
    }
}

/// Wire-struct-level UPDATE generator, covering the edge cases the domain
/// generator can't express: withdraw-only messages with an empty attribute
/// section, multi-prefix NLRI, and empty community lists.
fn arb_wire_update() -> impl Strategy<Value = gill::wire::UpdateMessage> {
    use gill::wire::UpdateMessage;
    (
        proptest::collection::vec((any::<u32>(), 8u8..=30), 0..4), // announced
        proptest::collection::vec((any::<u32>(), 8u8..=30), 0..4), // withdrawn
        proptest::collection::vec(1u32..4_000_000_000, 1..6),      // path
        any::<u32>(),                                              // next hop
        proptest::collection::vec(any::<u32>(), 0..5),             // communities
    )
        .prop_map(|(ann, wd, path, nh, comms)| {
            let prefixes = |v: Vec<(u32, u8)>| {
                v.into_iter()
                    .map(|(bits, len)| Prefix::v4(Ipv4Addr::from(bits), len))
                    .collect::<Vec<_>>()
            };
            let announced = prefixes(ann);
            let nlris = |v: Vec<Prefix>| v.into_iter().map(Into::into).collect::<Vec<_>>();
            if announced.is_empty() {
                // withdraw-only: attribute section must be empty on the wire
                UpdateMessage {
                    withdrawn: nlris(prefixes(wd)),
                    ..UpdateMessage::default()
                }
            } else {
                let mut u = UpdateMessage::announce(
                    announced[0],
                    AsPath::from_u32s(path),
                    Ipv4Addr::from(nh),
                    comms.into_iter().map(Community).collect(),
                );
                u.announced = nlris(announced);
                u.withdrawn = nlris(prefixes(wd));
                u
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_open_roundtrip_including_4_byte_asn(
        asn in 1u32..4_000_000_000, // beyond u16::MAX exercises RFC 6793
        hold in any::<u16>(),
        router in any::<u32>(),
    ) {
        use gill::wire::{BgpMessage, OpenMessage};
        let open = OpenMessage::new(Asn(asn), hold, Ipv4Addr::from(router));
        let bytes = BgpMessage::Open(open.clone()).encode_to_vec().unwrap();
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let BgpMessage::Open(back) = BgpMessage::decode(&mut buf).unwrap().unwrap() else {
            return Err(TestCaseError::fail("wrong message type"));
        };
        prop_assert_eq!(back.asn, Asn(asn));
        prop_assert_eq!(back.hold_time, hold);
        prop_assert_eq!(back.router_id, Ipv4Addr::from(router));
        prop_assert!(buf.is_empty(), "no trailing bytes");
    }

    #[test]
    fn wire_update_struct_roundtrip(u in arb_wire_update()) {
        use gill::wire::BgpMessage;
        let bytes = BgpMessage::Update(u.clone()).encode_to_vec().unwrap();
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let BgpMessage::Update(back) = BgpMessage::decode(&mut buf).unwrap().unwrap() else {
            return Err(TestCaseError::fail("wrong message type"));
        };
        prop_assert_eq!(back, u);
    }

    #[test]
    fn wire_notification_roundtrip(
        code in any::<u8>(),
        subcode in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        use gill::wire::{BgpMessage, Notification};
        let n = Notification { code, subcode, data };
        let bytes = BgpMessage::Notification(n.clone()).encode_to_vec().unwrap();
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let BgpMessage::Notification(back) = BgpMessage::decode(&mut buf).unwrap().unwrap() else {
            return Err(TestCaseError::fail("wrong message type"));
        };
        prop_assert_eq!(back, n);
    }
}

// The fault-schedule grammar round-trip proptest lives with the code it
// constrains: `crates/gill-collector/tests/transport_proptests.rs`.

// ---------------------------------------------------------------------------
// RIB invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rib_withdrawn_sets_are_disjoint_from_new_sets(
        updates in proptest::collection::vec(arb_update(), 1..40)
    ) {
        let mut rib = Rib::new();
        for u in updates {
            let mut u = u;
            rib.apply(&mut u);
            // Lw ∩ L = ∅ and Cw ∩ C = ∅ by construction (§4.2)
            for l in u.path.links() {
                prop_assert!(!u.withdrawn_links.contains(&l));
            }
            for c in &u.communities {
                prop_assert!(!u.withdrawn_communities.contains(c));
            }
        }
    }

    #[test]
    fn rib_size_never_exceeds_distinct_prefixes(
        updates in proptest::collection::vec(arb_update(), 1..40)
    ) {
        let mut rib = Rib::new();
        let mut prefixes = std::collections::HashSet::new();
        for u in updates {
            prefixes.insert(u.prefix);
            let mut u = u;
            rib.apply(&mut u);
            prop_assert!(rib.len() <= prefixes.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Redundancy-definition properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stricter_definitions_imply_looser_ones(a in arb_update(), b in arb_update()) {
        use gill::core::{is_redundant_with, RedundancyDef};
        if is_redundant_with(&a, &b, RedundancyDef::Def3) {
            prop_assert!(is_redundant_with(&a, &b, RedundancyDef::Def2));
        }
        if is_redundant_with(&a, &b, RedundancyDef::Def2) {
            prop_assert!(is_redundant_with(&a, &b, RedundancyDef::Def1));
        }
    }

    #[test]
    fn update_is_always_redundant_with_itself_under_all_defs(a in arb_update()) {
        use gill::core::{is_redundant_with, RedundancyDef};
        for def in RedundancyDef::ALL {
            prop_assert!(is_redundant_with(&a, &a, def));
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel redundancy engine ≡ sequential reference
// ---------------------------------------------------------------------------

/// A dense stream: few prefixes/VPs and tight timestamps so the 100 s slack
/// windows overlap heavily and all three redundancy conditions fire.
fn arb_dense_stream() -> impl Strategy<Value = Vec<BgpUpdate>> {
    proptest::collection::vec(
        (
            1u32..6,   // vp asn (small pool → VP pairs exist)
            0u64..400, // seconds (dense → slack windows overlap)
            0u32..5,   // prefix pool (small → condition 1 fires)
            proptest::collection::vec(1u32..50, 1..5),
            proptest::collection::vec((0u16..20, 0u16..20), 0..4),
            any::<bool>(), // announce or withdraw
        ),
        0..60,
    )
    .prop_map(|rows| {
        let mut updates: Vec<BgpUpdate> = rows
            .into_iter()
            .map(|(vp, t, pfx, path, comms, announce)| {
                let vp = VpId::from_asn(Asn(vp));
                let prefix = Prefix::synthetic(pfx);
                if announce {
                    let mut b = UpdateBuilder::announce(vp, prefix)
                        .at(Timestamp::from_secs(t))
                        .path(path);
                    for (a, c) in comms {
                        b = b.community(a, c);
                    }
                    b.build()
                } else {
                    UpdateBuilder::withdraw(vp, prefix)
                        .at(Timestamp::from_secs(t))
                        .build()
                }
            })
            .collect();
        updates.sort_by_key(|u| u.time);
        updates
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_flags_match_sequential_reference(updates in arb_dense_stream()) {
        use gill::core::{redundant_flags, redundant_flags_seq, RedundancyDef};
        for def in RedundancyDef::ALL {
            prop_assert_eq!(
                redundant_flags(&updates, def),
                redundant_flags_seq(&updates, def)
            );
        }
    }

    #[test]
    fn parallel_vp_pairs_match_sequential_reference(updates in arb_dense_stream()) {
        use gill::core::{vp_pair_redundancy, vp_pair_redundancy_seq, RedundancyDef};
        for def in RedundancyDef::ALL {
            prop_assert_eq!(
                vp_pair_redundancy(&updates, def),
                vp_pair_redundancy_seq(&updates, def)
            );
        }
    }

    #[test]
    fn prepared_pairwise_checks_match_unprepared(a in arb_update(), b in arb_update()) {
        use gill::core::{is_redundant_with, PreparedUpdate, RedundancyDef};
        let pa = PreparedUpdate::of(&a);
        let pb = PreparedUpdate::of(&b);
        for def in RedundancyDef::ALL {
            prop_assert_eq!(
                pa.is_redundant_with(&pb, def),
                is_redundant_with(&a, &b, def)
            );
        }
    }
}

/// Edge cases the property generator may not reliably hit: the empty
/// stream, a single-VP stream, and an all-same-prefix burst inside one
/// slack window.
#[test]
fn redundancy_engines_agree_on_edge_cases() {
    use gill::core::{
        redundant_flags, redundant_flags_seq, vp_pair_redundancy, vp_pair_redundancy_seq,
        PreparedUpdates, RedundancyDef,
    };
    let upd = |vp: u32, t_ms: u64, pfx: u32| {
        UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(pfx))
            .at(Timestamp::from_millis(t_ms))
            .path([vp, 9, 7])
            .build()
    };
    let empty: Vec<BgpUpdate> = Vec::new();
    let single_vp: Vec<BgpUpdate> = (0..10).map(|k| upd(1, k * 1_000, k as u32 % 2)).collect();
    let same_prefix_burst: Vec<BgpUpdate> =
        (0..30).map(|k| upd(k as u32 % 4 + 1, k * 500, 3)).collect();
    for updates in [&empty, &single_vp, &same_prefix_burst] {
        for def in RedundancyDef::ALL {
            assert_eq!(
                redundant_flags(updates, def),
                redundant_flags_seq(updates, def)
            );
            assert_eq!(
                vp_pair_redundancy(updates, def),
                vp_pair_redundancy_seq(updates, def)
            );
            // the prepared engine agrees with itself across modes too
            let p = PreparedUpdates::prepare(updates);
            assert_eq!(p.redundant_flags(def), p.redundant_flags_seq(def));
            assert_eq!(p.vp_pair_redundancy(def), p.vp_pair_redundancy_seq(def));
        }
    }
    // a single VP can never be pair-redundant with anyone
    for def in RedundancyDef::ALL {
        assert!(vp_pair_redundancy(&single_vp, def).is_empty());
    }
}

// ---------------------------------------------------------------------------
// Filter invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filters_drop_exactly_the_trained_space(
        trained in proptest::collection::vec(arb_update(), 1..20),
        probe in arb_update(),
    ) {
        use gill::core::{FilterGranularity, FilterSet};
        let f = FilterSet::generate([], trained.iter(), FilterGranularity::VpPrefix);
        let in_space = trained
            .iter()
            .any(|t| t.vp == probe.vp && t.prefix == probe.prefix);
        prop_assert_eq!(!f.accepts(&probe), in_space);
    }

    #[test]
    fn anchor_vps_are_never_filtered(
        trained in proptest::collection::vec(arb_update(), 1..20),
        probe in arb_update(),
    ) {
        use gill::core::{FilterGranularity, FilterSet};
        let f = FilterSet::generate([probe.vp], trained.iter(), FilterGranularity::VpPrefix);
        prop_assert!(f.accepts(&probe));
    }
}

// ---------------------------------------------------------------------------
// Routing invariants on random topologies
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn routing_reaches_everyone_and_is_loop_free(seed in 0u64..5000, n in 30usize..120) {
        use gill::sim::{compute_routes, SourceAnnouncement};
        let topo = TopologyBuilder::artificial(n, seed).build();
        let origin = (seed % n as u64) as u32;
        let table = compute_routes(&topo, &[SourceAnnouncement::origin(origin)], &Default::default());
        for u in 0..n as u32 {
            let path = table.path(u).expect("Gao-Rexford reaches everyone");
            prop_assert_eq!(*path.last().unwrap(), origin);
            prop_assert_eq!(path[0], u);
            // loop-free
            let set: std::collections::HashSet<u32> = path.iter().copied().collect();
            prop_assert_eq!(set.len(), path.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Prefix-trie properties (checked against a naive model)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_longest_match_agrees_with_naive_scan(
        entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..40),
        probe_bits in any::<u32>(),
        probe_len in 0u8..=32,
    ) {
        use gill::types::PrefixTrie;
        let probe = Prefix::v4(std::net::Ipv4Addr::from(probe_bits), probe_len);
        let mut trie = PrefixTrie::new();
        let mut model: Vec<(Prefix, usize)> = Vec::new();
        for (i, (bits, len)) in entries.iter().enumerate() {
            let p = Prefix::v4(std::net::Ipv4Addr::from(*bits), *len);
            trie.insert(p, i);
            model.retain(|(q, _)| q != &p);
            model.push((p, i));
        }
        prop_assert_eq!(trie.len(), model.len());
        // naive longest match
        let naive = model
            .iter()
            .filter(|(p, _)| p.covers(&probe))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = trie.longest_match(&probe).map(|(p, v)| (*p, *v));
        prop_assert_eq!(got, naive);
        // more_specifics agrees with the naive filter
        let mut naive_subs: Vec<usize> = model
            .iter()
            .filter(|(p, _)| probe.covers(p))
            .map(|(_, v)| *v)
            .collect();
        naive_subs.sort_unstable();
        let mut got_subs: Vec<usize> = trie
            .more_specifics(&probe)
            .into_iter()
            .map(|(_, &v)| v)
            .collect();
        got_subs.sort_unstable();
        prop_assert_eq!(got_subs, naive_subs);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Mixed-family oracle: a trie holding both v4 and v6 entries must
    // behave, for any probe, exactly like a naive scan restricted to the
    // probe's family — `covers` and longest-match never cross families.
    #[test]
    fn trie_mixed_family_matches_never_cross_families(
        entries in proptest::collection::vec((any::<bool>(), any::<u64>(), 0u8..=32), 1..40),
        probe_v6 in any::<bool>(),
        probe_bits in any::<u64>(),
        probe_len in 0u8..=32,
    ) {
        check_mixed_family_trie(entries, probe_v6, probe_bits, probe_len)?;
    }
}

/// Body of `trie_mixed_family_matches_never_cross_families`, hoisted out of
/// the `proptest!` block to keep the macro expansion shallow.
fn check_mixed_family_trie(
    entries: Vec<(bool, u64, u8)>,
    probe_v6: bool,
    probe_bits: u64,
    probe_len: u8,
) -> Result<(), proptest::TestCaseError> {
    use gill::types::PrefixTrie;
    let mk = |v6: bool, bits: u64, len: u8| -> Prefix {
        if v6 {
            // spread the 64 entropy bits over the high half of the address
            // so /0..=32 masks bite on varied bits
            Prefix::v6(std::net::Ipv6Addr::from((bits as u128) << 64), len)
        } else {
            Prefix::v4(std::net::Ipv4Addr::from(bits as u32), len)
        }
    };
    let probe = mk(probe_v6, probe_bits, probe_len);
    let mut trie = PrefixTrie::new();
    let mut model: Vec<(Prefix, usize)> = Vec::new();
    for (i, (v6, bits, len)) in entries.iter().enumerate() {
        let p = mk(*v6, *bits, *len);
        trie.insert(p, i);
        model.retain(|(q, _)| q != &p);
        model.push((p, i));
    }
    prop_assert_eq!(trie.len(), model.len());

    // the oracle only ever consults the probe's own family
    let naive = model
        .iter()
        .filter(|(p, _)| p.is_ipv6() == probe.is_ipv6() && p.covers(&probe))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v));
    let got = trie.longest_match(&probe).map(|(p, v)| (*p, *v));
    prop_assert_eq!(got, naive);
    if let Some((hit, _)) = got {
        prop_assert_eq!(hit.is_ipv6(), probe.is_ipv6());
    }

    let mut naive_subs: Vec<usize> = model
        .iter()
        .filter(|(p, _)| p.is_ipv6() == probe.is_ipv6() && probe.covers(p))
        .map(|(_, v)| *v)
        .collect();
    naive_subs.sort_unstable();
    let subs = trie.more_specifics(&probe);
    for (p, _) in &subs {
        prop_assert_eq!(p.is_ipv6(), probe.is_ipv6());
    }
    let mut got_subs: Vec<usize> = subs.into_iter().map(|(_, &v)| v).collect();
    got_subs.sort_unstable();
    prop_assert_eq!(got_subs, naive_subs);

    // covers itself refuses cross-family claims, including for /0
    for (p, _) in &model {
        if p.is_ipv6() != probe.is_ipv6() {
            prop_assert!(!p.covers(&probe) && !probe.covers(p));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filter_text_roundtrip_preserves_semantics(
        rules in proptest::collection::vec((1u32..100_000, any::<u32>(), 0u8..=32), 0..30),
        anchors in proptest::collection::vec(1u32..100_000, 0..5),
        probe in arb_update(),
    ) {
        use gill::core::{FilterGranularity, FilterSet};
        let templates: Vec<BgpUpdate> = rules
            .iter()
            .map(|(vp, bits, len)| {
                UpdateBuilder::announce(
                    VpId::from_asn(Asn(*vp)),
                    Prefix::v4(std::net::Ipv4Addr::from(*bits), *len),
                )
                .path([*vp, 2])
                .build()
            })
            .collect();
        let f = FilterSet::generate(
            anchors.iter().map(|&a| VpId::from_asn(Asn(a))),
            templates.iter(),
            FilterGranularity::VpPrefix,
        );
        let text = f.to_text().unwrap();
        let back = FilterSet::from_text(&text).unwrap();
        prop_assert_eq!(back.num_rules(), f.num_rules());
        prop_assert_eq!(back.accepts(&probe), f.accepts(&probe));
        for t in &templates {
            prop_assert_eq!(back.accepts(t), f.accepts(t));
        }
    }

    #[test]
    fn table_dump_roundtrip(
        routes in proptest::collection::vec(
            (1u32..5000, any::<u32>(), 8u8..=28, proptest::collection::vec(1u32..9000, 1..6)),
            1..25,
        )
    ) {
        use gill::wire::TableDump;
        use std::collections::BTreeMap;
        let mut ribs: BTreeMap<VpId, Rib> = BTreeMap::new();
        for (vp, bits, len, path) in &routes {
            let vpid = VpId::from_asn(Asn(*vp));
            let mut u = UpdateBuilder::announce(
                vpid,
                Prefix::v4(std::net::Ipv4Addr::from(*bits), *len),
            )
            .at(Timestamp::from_secs(7))
            .path(path.iter().copied())
            .build();
            ribs.entry(vpid).or_default().apply(&mut u);
        }
        let dump = TableDump::from_ribs(ribs.iter());
        let mut bytes = Vec::new();
        dump.write_mrt(&mut bytes, Timestamp::from_secs(7)).unwrap();
        let back = TableDump::read_mrt(&bytes).unwrap();
        let ribs2 = back.to_ribs();
        prop_assert_eq!(ribs2.len(), ribs.len());
        for (vp, rib) in &ribs {
            let r2 = &ribs2[vp];
            prop_assert_eq!(r2.len(), rib.len());
            for (prefix, entry) in rib.iter() {
                let e2 = r2.get(prefix).expect("prefix survives");
                prop_assert_eq!(&e2.path, &entry.path);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario vocabulary (strategies shared with gill-scenario's proptests)
// ---------------------------------------------------------------------------

use gill::types::testgen::{arb_bursty_schedule, arb_campaign_shape, arb_update_burst};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_prefix_index_roundtrips(id in 0u32..(1 << 22)) {
        prop_assert_eq!(Prefix::synthetic(id).synthetic_index(), Some(id));
    }

    #[test]
    fn bursty_schedules_strictly_advance(times in arb_bursty_schedule()) {
        prop_assert!(!times.is_empty());
        prop_assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn store_accounting_is_exact_under_bursty_arrivals(burst in arb_update_burst()) {
        use gill::query::{RouteStore, StoreConfig};
        let mut store = RouteStore::new(StoreConfig::default());
        for u in &burst {
            store.ingest(u.clone());
        }
        // no mem cap → nothing shed, every arrival accounted for
        prop_assert_eq!(store.stats().updates, burst.len());
        prop_assert_eq!(store.mem_stats().shed_updates, 0);
    }

    #[test]
    fn campaign_streams_hash_reproducibly(s in arb_campaign_shape()) {
        use gill::scenario::{
            generate_campaign, update_line, CampaignConfig, CampaignKind, Fnv64, World,
        };
        let w = World { n_vps: 4, n_prefixes: 24, seed: 5, dual_stack: false };
        let cfg = CampaignConfig {
            kind: CampaignKind::HijackWave,
            start_ms: s.start_ms,
            duration_ms: s.duration_ms,
            n_targets: s.n_targets,
            repeats: s.repeats,
            actor: s.actor,
            seed: s.seed,
        };
        let digest = |cfg: &CampaignConfig| {
            let (updates, _) = generate_campaign(&w, cfg, 0);
            let mut h = Fnv64::new();
            for u in &updates {
                h.write_line(&update_line(u));
            }
            h.finish()
        };
        prop_assert_eq!(digest(&cfg), digest(&cfg));
        let mut other = cfg;
        other.seed = cfg.seed.wrapping_add(1);
        // seed reaches the stream (target choice and jitter)
        prop_assert_ne!(digest(&cfg), digest(&other));
    }
}

// ---------------------------------------------------------------------------
// Validator properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn validator_never_panics_and_verdicts_are_consistent(u in arb_update(), peer in 1u32..100_000) {
        use gill::collector::{UpdateValidator, Verdict};
        let mut v = UpdateValidator::new();
        let verdict = v.validate(Asn(peer), &u);
        // withdrawals are always valid; announcements from the right peer
        // with clean paths are valid or quarantined, never both
        if !u.is_announce() {
            prop_assert_eq!(verdict, Verdict::Valid);
        }
        let s = &v.stats;
        prop_assert_eq!(s.valid + s.invalid + s.quarantined, 1);
    }
}
