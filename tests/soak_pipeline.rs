//! The full-pipeline soak at debug-test scale: scripted regime shifts over
//! an adversarial day, every invariant asserted, and the determinism
//! contract (bit-identical FNV-1a transcript digests across reruns)
//! checked both ways — same seed agrees, different seed diverges.

use gill::scenario::CampaignKind;
use gill::soak::{run_soak, SoakConfig};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gill-soak-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small-but-hostile: caps tight enough that the mirror, the capped store
/// and the lazy subscriber all shed, so the "counted, never silent"
/// invariants are exercised rather than vacuous.
fn hostile_cfg(seed: u64, dir: Option<PathBuf>) -> SoakConfig {
    SoakConfig {
        seed,
        n_vps: 5,
        n_prefixes: 64,
        background_updates: 3_000,
        campaigns: vec![
            CampaignKind::RouteLeak,
            CampaignKind::HijackWave,
            CampaignKind::WithdrawalAvalanche,
        ],
        mirror_cap: 512,
        capped_store_bytes: 64 << 10,
        ring_capacity: 128,
        data_dir: dir,
        bmp_vps: 0,
        dual_stack: false,
    }
}

#[test]
fn soak_holds_every_invariant_under_regime_shifts() {
    let dir = scratch("invariants");
    let report = run_soak(&hostile_cfg(11, Some(dir.clone())));
    for inv in &report.invariants {
        assert!(inv.pass, "invariant {} failed: {}", inv.name, inv.detail);
    }
    assert!(report.all_pass());

    // the hostile caps must actually have bitten: shedding everywhere,
    // every unit counted (the exactness is asserted inside run_soak's
    // invariants; here we check the pressure was real)
    let c = &report.counters;
    assert!(c.sent > 3_000, "day too small: {} updates", c.sent);
    assert_eq!(c.regimes, 3, "one retrain per campaign start");
    assert!(c.mirror_shed > 0, "mirror cap never hit");
    assert!(c.capped_shed > 0, "store mem cap never hit");
    assert!(c.lazy_missed > 0, "lazy subscriber never gapped");
    assert!(c.dropped > 0, "filters never dropped anything");
    assert!(c.kept > 0, "filters dropped everything");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_digest_is_bit_identical_across_reruns() {
    let d1 = scratch("rerun-a");
    let d2 = scratch("rerun-b");
    let a = run_soak(&hostile_cfg(23, Some(d1.clone())));
    let b = run_soak(&hostile_cfg(23, Some(d2.clone())));
    assert!(a.all_pass() && b.all_pass());
    assert_eq!(a.digest, b.digest, "same seed must replay bit-identically");
    assert_eq!(a.counters.sent, b.counters.sent);
    assert_eq!(a.counters.kept, b.counters.kept);
    assert_eq!(a.counters.lazy_missed, b.counters.lazy_missed);

    let c = run_soak(&hostile_cfg(24, None));
    assert!(c.all_pass());
    assert_ne!(a.digest, c.digest, "different seed must diverge");
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn soak_without_data_dir_skips_only_the_restart_invariant() {
    let report = run_soak(&hostile_cfg(31, None));
    assert!(report.all_pass());
    let restart = report
        .invariants
        .iter()
        .find(|i| i.name == "crash-restart-equivalent")
        .expect("restart invariant always reported");
    assert!(restart.detail.contains("skipped"));
}

/// A mixed-protocol day: two of the five VPs enter through one BMP
/// session (Route Monitoring frames, timestamps from per-peer headers),
/// the rest through their own BGP sessions — under one digest, with the
/// same exactness invariants, and still bit-identical across reruns.
#[test]
fn mixed_bgp_and_bmp_day_holds_invariants_and_replays() {
    let cfg = SoakConfig {
        bmp_vps: 2,
        ..hostile_cfg(23, None)
    };
    let a = run_soak(&cfg);
    for inv in &a.invariants {
        assert!(inv.pass, "invariant {} failed: {}", inv.name, inv.detail);
    }
    let bmp = a
        .invariants
        .iter()
        .find(|i| i.name == "bmp-ingest-exact")
        .expect("bmp invariant always reported");
    assert!(
        !bmp.detail.contains("skipped"),
        "bmp path must actually run: {}",
        bmp.detail
    );
    // wire-delivery-complete already asserts received == sent across both
    // protocols; make sure both actually carried traffic
    assert!(
        a.counters.sent > 1_000,
        "day too small: {}",
        a.counters.sent
    );

    // determinism holds for the mixed day too
    let b = run_soak(&cfg);
    assert_eq!(a.digest, b.digest, "mixed-day digest must replay");

    // and the BMP share is not digest-neutral: an all-BGP day of the same
    // seed takes a different transcript (extra bmp lines, same updates)
    let all_bgp = run_soak(&hostile_cfg(23, None));
    assert_ne!(a.digest, all_bgp.digest);
}

/// A dual-stack day: odd world prefixes are IPv6, so MP_REACH/MP_UNREACH
/// routes flow through the live sessions (Multiprotocol negotiated in the
/// OPEN exchange), the store, the broker, and the crash-restart fork —
/// with every exactness invariant intact and the digest replayable.
#[test]
fn dual_stack_day_holds_invariants_and_restarts_byte_equivalent() {
    let d1 = scratch("dual-a");
    let d2 = scratch("dual-b");
    let cfg = SoakConfig {
        dual_stack: true,
        ..hostile_cfg(23, Some(d1.clone()))
    };
    let a = run_soak(&cfg);
    for inv in &a.invariants {
        assert!(inv.pass, "invariant {} failed: {}", inv.name, inv.detail);
    }
    // v6 routes must have reached the restart fork: the invariant compares
    // the reloaded store against the live one over the mixed table
    let restart = a
        .invariants
        .iter()
        .find(|i| i.name == "crash-restart-equivalent")
        .expect("restart invariant always reported");
    assert!(
        !restart.detail.contains("skipped"),
        "restart fork must run on the dual-stack day: {}",
        restart.detail
    );
    assert!(
        a.counters.sent > 1_000,
        "day too small: {}",
        a.counters.sent
    );

    // determinism holds for the mixed-family day, and the family mix is
    // not digest-neutral against the v4-only day of the same seed
    let b = run_soak(&SoakConfig {
        dual_stack: true,
        ..hostile_cfg(23, Some(d2.clone()))
    });
    assert_eq!(a.digest, b.digest, "dual-stack digest must replay");
    let v4_day = run_soak(&hostile_cfg(23, None));
    assert_ne!(a.digest, v4_day.digest);
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn soak_report_serializes_to_json() {
    let report = run_soak(&SoakConfig {
        background_updates: 1_200,
        campaigns: vec![CampaignKind::FlapStorm, CampaignKind::CommunityFlood],
        ..hostile_cfg(41, None)
    });
    assert!(report.all_pass());
    assert_eq!(report.counters.regimes, 2);
    let json = report.to_json();
    assert!(json.contains("\"digest\""));
    assert!(json.contains(&report.digest));
    assert!(json.contains("\"all_pass\": true"));
    assert!(json.contains("broker-gap-exact"));
}
