//! Adversarial codec battery: every decoder must survive truncation,
//! length-field lies, and random bit flips of valid frames — returning a
//! structured `WireError`, never panicking, never looping.
//!
//! Each decoder chews through ≥ 10,000 mutated frames. The mutations are
//! seeded, so a failing input reproduces from the printed (seed, index)
//! pair alone.

use bytes::{Bytes, BytesMut};
use gill::prelude::*;
use gill::wire::{
    BgpMessage, MrtRecord, MrtWriter, Notification, OpenMessage, TableDump, UpdateMessage,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const FRAMES_PER_DECODER: usize = 10_000;

/// Valid BGP frames covering every message type (and the 4-byte-ASN OPEN
/// variant whose body layout differs via the capability).
fn seed_frames() -> Vec<Vec<u8>> {
    let announce = UpdateMessage::announce(
        Prefix::synthetic(7),
        AsPath::from_u32s([65001, 2, 7, 11]),
        std::net::Ipv4Addr::new(10, 0, 0, 9),
        vec![Community::new(65001, 40), Community::new(65001, 77)],
    );
    let withdraw = UpdateMessage::withdraw(Prefix::synthetic(3));
    let mut both = announce.clone();
    both.withdrawn = vec![Prefix::synthetic(1).into(), Prefix::synthetic(2).into()];
    // RFC 4760 multiprotocol frames: v6 reachability rides in MP_REACH /
    // MP_UNREACH attributes instead of the classic NLRI fields
    let announce_v6 = UpdateMessage::announce_v6(
        Prefix::synthetic_v6(7),
        AsPath::from_u32s([65001, 2, 7, 11]),
        std::net::Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 9),
        vec![Community::new(65001, 40)],
    );
    let withdraw_v6 = UpdateMessage::withdraw(Prefix::synthetic_v6(3));
    let mut notif = Notification::cease();
    notif.data = vec![0xde, 0xad, 0xbe, 0xef];
    [
        BgpMessage::Keepalive,
        BgpMessage::Open(OpenMessage::new(
            Asn(65001),
            180,
            std::net::Ipv4Addr::new(10, 0, 0, 1),
        )),
        // 4-byte ASN: AS_TRANS in the fixed field, real ASN in the capability
        BgpMessage::Open(OpenMessage::new(
            Asn(70_000),
            90,
            std::net::Ipv4Addr::new(10, 0, 0, 2),
        )),
        BgpMessage::Notification(notif),
        BgpMessage::Update(announce),
        BgpMessage::Update(withdraw),
        BgpMessage::Update(both),
        BgpMessage::Update(announce_v6),
        BgpMessage::Update(withdraw_v6),
    ]
    .iter()
    .map(|m| m.encode_to_vec().expect("seed frames encode"))
    .collect()
}

/// One seeded mutation of `frame`: truncation, a length-field lie at
/// `len_offset` (if any), bit flips, a byte splice, or pure noise.
fn mutate(rng: &mut SmallRng, frame: &[u8], len_offset: Option<usize>) -> Vec<u8> {
    let mut out = frame.to_vec();
    match rng.gen_range(0u8..5) {
        // truncate anywhere, including inside the header
        0 => {
            let at = rng.gen_range(0..=out.len());
            out.truncate(at);
        }
        // lie in the length field
        1 => {
            if let Some(off) = len_offset {
                if off + 2 <= out.len() {
                    let lie: u16 = match rng.gen_range(0u8..4) {
                        0 => 0,
                        1 => rng.gen_range(0u16..19), // below header size
                        2 => rng.gen_range(4097u16..u16::MAX), // above max
                        _ => rng.gen_range(0u16..200), // plausible but wrong
                    };
                    out[off..off + 2].copy_from_slice(&lie.to_be_bytes());
                }
            }
        }
        // flip 1–8 random bits
        2 => {
            for _ in 0..rng.gen_range(1usize..=8) {
                if out.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1 << rng.gen_range(0u8..8);
            }
        }
        // splice a random byte
        3 => {
            if !out.is_empty() {
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen_range(0u16..256) as u8;
            }
        }
        // pure noise of a plausible size
        _ => {
            let n = rng.gen_range(0usize..128);
            out = (0..n).map(|_| rng.gen_range(0u16..256) as u8).collect();
        }
    }
    out
}

#[test]
fn frame_decoder_survives_mutations() {
    let frames = seed_frames();
    let mut rng = SmallRng::seed_from_u64(0x0ddba11);
    let (mut ok, mut err, mut incomplete) = (0usize, 0usize, 0usize);
    for i in 0..FRAMES_PER_DECODER {
        let base = &frames[i % frames.len()];
        // BGP frame length field sits at offset 16
        let mutated = mutate(&mut rng, base, Some(16));
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&mutated);
        match BgpMessage::decode(&mut buf) {
            Ok(Some(_)) => ok += 1,
            Ok(None) => incomplete += 1,
            Err(_) => err += 1,
        }
    }
    assert_eq!(ok + err + incomplete, FRAMES_PER_DECODER);
    assert!(err > 0, "mutations must produce structured errors");
    assert!(ok > 0, "some mutations leave frames intact");
}

#[test]
fn open_body_decoder_survives_mutations() {
    let bodies: Vec<Vec<u8>> = seed_frames()
        .iter()
        .filter(|f| f.len() > 19 && f[18] == 1) // type 1 = OPEN
        .map(|f| f[19..].to_vec())
        .collect();
    assert!(!bodies.is_empty());
    let mut rng = SmallRng::seed_from_u64(0x09e4);
    let mut err = 0usize;
    for i in 0..FRAMES_PER_DECODER {
        let mutated = mutate(&mut rng, &bodies[i % bodies.len()], None);
        if OpenMessage::decode_body(&Bytes::copy_from_slice(&mutated)).is_err() {
            err += 1;
        }
    }
    assert!(err > 0);
}

#[test]
fn update_body_decoder_survives_mutations() {
    let bodies: Vec<Vec<u8>> = seed_frames()
        .iter()
        .filter(|f| f.len() > 19 && f[18] == 2) // type 2 = UPDATE
        .map(|f| f[19..].to_vec())
        .collect();
    assert!(bodies.len() >= 3, "announce, withdraw and mixed seeds");
    let mut rng = SmallRng::seed_from_u64(0x0bad);
    let mut err = 0usize;
    for i in 0..FRAMES_PER_DECODER {
        let mutated = mutate(&mut rng, &bodies[i % bodies.len()], None);
        if UpdateMessage::decode_body(&Bytes::copy_from_slice(&mutated)).is_err() {
            err += 1;
        }
    }
    assert!(err > 0);
}

#[test]
fn addpath_update_decoder_survives_mutations() {
    use gill::wire::{AddressFamily, DecodeCtx};
    // ADD-PATH-tagged seed bodies for both families; mutations hammer the
    // path-id prefixed NLRI reader under a fully negotiated context.
    let mut v4 = UpdateMessage::announce(
        Prefix::synthetic(9),
        AsPath::from_u32s([65001, 2, 9]),
        std::net::Ipv4Addr::new(10, 0, 0, 9),
        vec![],
    );
    for n in &mut v4.announced {
        n.path_id = Some(7);
    }
    let mut v6 = UpdateMessage::announce_v6(
        Prefix::synthetic_v6(9),
        AsPath::from_u32s([65001, 2, 9]),
        std::net::Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 9),
        vec![],
    );
    for n in &mut v6.announced {
        n.path_id = Some(1);
    }
    let mut wd6 = UpdateMessage::withdraw(Prefix::synthetic_v6(4));
    for n in &mut wd6.withdrawn {
        n.path_id = Some(3);
    }
    let bodies: Vec<Vec<u8>> = [v4, v6, wd6]
        .iter()
        .map(|m| {
            let f = BgpMessage::Update(m.clone()).encode_to_vec().unwrap();
            f[19..].to_vec()
        })
        .collect();
    let ctx = DecodeCtx::from_families([AddressFamily::Ipv4Unicast, AddressFamily::Ipv6Unicast]);
    let mut rng = SmallRng::seed_from_u64(0xadd9);
    let (mut ok, mut err) = (0usize, 0usize);
    for i in 0..FRAMES_PER_DECODER {
        let mutated = mutate(&mut rng, &bodies[i % bodies.len()], None);
        match UpdateMessage::decode_body_ctx(&Bytes::copy_from_slice(&mutated), &ctx) {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    assert_eq!(ok + err, FRAMES_PER_DECODER);
    assert!(err > 0, "mutations must produce structured errors");
    assert!(ok > 0, "some mutations leave bodies intact");
}

#[test]
fn notification_body_decoder_survives_mutations() {
    let body = {
        let mut n = Notification::cease();
        n.data = vec![1, 2, 3, 4, 5];
        let f = BgpMessage::Notification(n).encode_to_vec().unwrap();
        f[19..].to_vec()
    };
    let mut rng = SmallRng::seed_from_u64(0x2077);
    let mut err = 0usize;
    for _ in 0..FRAMES_PER_DECODER {
        let mutated = mutate(&mut rng, &body, None);
        if Notification::decode_body(&Bytes::copy_from_slice(&mutated)).is_err() {
            err += 1;
        }
    }
    // a NOTIFICATION body only needs 2 bytes, so most mutations still parse
    assert!(err > 0, "zero-length truncations must error");
}

/// PDU palettes for the BMP generators: the OPEN and UPDATE frames from
/// `seed_frames`, exactly as they'd ride inside BMP Peer Up / Route
/// Monitoring bodies.
fn bmp_palettes() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let frames = seed_frames();
    let updates: Vec<Vec<u8>> = frames
        .iter()
        .filter(|f| f.len() > 19 && f[18] == 2)
        .cloned()
        .collect();
    let opens: Vec<Vec<u8>> = frames
        .iter()
        .filter(|f| f.len() > 19 && f[18] == 1)
        .cloned()
        .collect();
    (updates, opens)
}

#[test]
fn bmp_decoder_accepts_and_roundtrips_generated_frames() {
    use proptest::Strategy;
    let (updates, opens) = bmp_palettes();
    let strat = gill::types::testgen::arb_bmp_frame(updates, opens);
    let mut rng = SmallRng::seed_from_u64(0xb3b0);
    for i in 0..FRAMES_PER_DECODER {
        let frame = strat.generate(&mut rng);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&frame);
        let msg = gill::bmp::BmpMessage::decode(&mut buf)
            .unwrap_or_else(|e| panic!("valid frame {i} rejected: {e}"))
            .unwrap_or_else(|| panic!("valid frame {i} reported incomplete"));
        assert!(buf.is_empty(), "frame {i} left residue");
        // generated frames are canonical: re-encoding is byte-exact
        assert_eq!(
            msg.encode_to_vec().unwrap(),
            frame,
            "frame {i} did not re-encode byte-exactly"
        );
    }
}

#[test]
fn bmp_decoder_survives_mutations() {
    use proptest::Strategy;
    let (updates, opens) = bmp_palettes();
    let strat = gill::types::testgen::arb_bmp_frame_mutated(updates, opens);
    let mut rng = SmallRng::seed_from_u64(0xb3b1);
    let (mut ok, mut err, mut incomplete) = (0usize, 0usize, 0usize);
    for _ in 0..FRAMES_PER_DECODER {
        let mutated = strat.generate(&mut rng);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&mutated);
        match gill::bmp::BmpMessage::decode(&mut buf) {
            Ok(Some(_)) => ok += 1,
            Ok(None) => incomplete += 1,
            Err(_) => err += 1,
        }
    }
    assert_eq!(ok + err + incomplete, FRAMES_PER_DECODER);
    assert!(err > 0, "mutations must produce structured errors");
    assert!(ok > 0, "some mutations leave frames intact");
    assert!(incomplete > 0, "length lies must read as incomplete frames");
}

fn seed_mrt_record() -> Vec<u8> {
    let u = UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(4))
        .at(Timestamp::from_secs(11))
        .path([65001, 2, 9])
        .build();
    let mut w = MrtWriter::new(Vec::new());
    w.write_record(&MrtRecord {
        time: u.time,
        peer_as: u.vp.asn,
        local_as: Asn(65535),
        peer_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 2)),
        local_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1)),
        message: BgpMessage::Update(UpdateMessage::from_domain(&u).unwrap()),
    })
    .unwrap();
    w.into_inner().unwrap()
}

#[test]
fn mrt_record_decoder_survives_mutations() {
    let record = seed_mrt_record();
    let mut rng = SmallRng::seed_from_u64(0x347);
    let (mut ok, mut err, mut incomplete) = (0usize, 0usize, 0usize);
    for _ in 0..FRAMES_PER_DECODER {
        // MRT length field sits at offset 8 (u32, but lying in its low
        // half exercises the same bound checks)
        let mutated = mutate(&mut rng, &record, Some(10));
        match MrtRecord::decode(&mutated) {
            Ok(Some(_)) => ok += 1,
            Ok(None) => incomplete += 1,
            Err(_) => err += 1,
        }
    }
    assert_eq!(ok + err + incomplete, FRAMES_PER_DECODER);
    assert!(err > 0);
}

fn seed_table_dump() -> Vec<u8> {
    let mut ribs: std::collections::BTreeMap<VpId, Rib> = std::collections::BTreeMap::new();
    for (vp_asn, prefix) in [(65001u32, 1u32), (65001, 2), (65002, 1)] {
        let vp = VpId::from_asn(Asn(vp_asn));
        let mut u = UpdateBuilder::announce(vp, Prefix::synthetic(prefix))
            .at(Timestamp::from_secs(5))
            .path([vp_asn, 3, 8])
            .build();
        ribs.entry(vp).or_default().apply(&mut u);
    }
    let dump = TableDump::from_ribs(ribs.iter());
    let mut bytes = Vec::new();
    dump.write_mrt(&mut bytes, Timestamp::from_secs(100))
        .unwrap();
    bytes
}

#[test]
fn table_dump_reader_survives_mutations() {
    let dump = seed_table_dump();
    let mut rng = SmallRng::seed_from_u64(0x7ab1e);
    let (mut ok, mut err) = (0usize, 0usize);
    for _ in 0..FRAMES_PER_DECODER {
        let mutated = mutate(&mut rng, &dump, Some(10));
        match TableDump::read_mrt(&mutated) {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    assert_eq!(ok + err, FRAMES_PER_DECODER);
    assert!(err > 0);
}
