//! Golden MRT fixtures: known-good byte images checked into
//! `tests/fixtures/`. Decoding must succeed and re-encoding must
//! reproduce the fixture byte-for-byte, so any unintended wire-format
//! drift fails loudly with a diff offset instead of silently corrupting
//! archives.
//!
//! To regenerate after an *intentional* format change:
//! `cargo test --test golden_mrt -- --ignored regenerate`

use gill::prelude::*;
use gill::wire::{BgpMessage, MrtRecord, MrtWriter, TableDump, UpdateMessage};
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); run the regenerate test"))
}

/// The canonical BGP4MP update stream: announce, withdraw, mixed, and a
/// 4-byte-ASN peer. Every field is pinned so the bytes are reproducible.
fn golden_updates() -> Vec<MrtRecord> {
    let announce = UpdateMessage::announce(
        Prefix::synthetic(7),
        AsPath::from_u32s([65001, 174, 3356]),
        Ipv4Addr::new(10, 0, 0, 9),
        vec![Community::new(65001, 100), Community::new(65001, 200)],
    );
    let withdraw = UpdateMessage::withdraw(Prefix::synthetic(3));
    let mut mixed = announce.clone();
    mixed.withdrawn = vec![Prefix::synthetic(1).into(), Prefix::synthetic(2).into()];
    let wide = UpdateMessage::announce(
        Prefix::synthetic(42),
        AsPath::from_u32s([70_000, 65010, 2]),
        Ipv4Addr::new(10, 0, 1, 9),
        vec![],
    );
    let rec = |time, peer_as, message| MrtRecord {
        time: Timestamp::from_secs(time),
        peer_as: Asn(peer_as),
        local_as: Asn(65535),
        peer_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
        local_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
        message: BgpMessage::Update(message),
    };
    vec![
        rec(1_700_000_000, 65001, announce),
        rec(1_700_000_001, 65001, withdraw),
        rec(1_700_000_002, 65001, mixed),
        rec(1_700_000_003, 70_000, wide), // 4-byte ASN peer
    ]
}

/// The canonical IPv6 BGP4MP day: MP_REACH announces, an MP_UNREACH
/// withdrawal, and an ADD-PATH-tagged route, over AFI-2 record headers.
fn golden_updates_v6() -> Vec<MrtRecord> {
    // ADD-PATH is negotiated per family for the whole session, so every
    // v6 NLRI in this stream carries a path identifier
    let mut announce = UpdateMessage::announce_v6(
        Prefix::synthetic_v6(7),
        AsPath::from_u32s([65001, 174, 3356]),
        Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 9),
        vec![Community::new(65001, 100)],
    );
    for n in &mut announce.announced {
        n.path_id = Some(1);
    }
    let mut withdraw = UpdateMessage::withdraw(Prefix::synthetic_v6(3));
    for n in &mut withdraw.withdrawn {
        n.path_id = Some(1);
    }
    let mut addpath = UpdateMessage::announce_v6(
        Prefix::synthetic_v6(42),
        AsPath::from_u32s([70_000, 65010, 2]),
        Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 1, 9),
        vec![],
    );
    for n in &mut addpath.announced {
        n.path_id = Some(9);
    }
    let rec = |time, peer_as, message| MrtRecord {
        time: Timestamp::from_secs(time),
        peer_as: Asn(peer_as),
        local_as: Asn(65535),
        peer_ip: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)),
        local_ip: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)),
        message: BgpMessage::Update(message),
    };
    vec![
        rec(1_700_000_000, 65001, announce),
        rec(1_700_000_001, 65001, withdraw),
        rec(1_700_000_002, 70_000, addpath),
    ]
}

/// The canonical TABLE_DUMP_V2 snapshot: two peers, overlapping prefixes.
fn golden_table_dump() -> TableDump {
    let mut ribs: BTreeMap<VpId, Rib> = BTreeMap::new();
    for (vp_asn, prefix, hops) in [
        (65001u32, 1u32, [65001u32, 174, 3356]),
        (65001, 2, [65001, 174, 2914]),
        (65002, 1, [65002, 6939, 3356]),
    ] {
        let vp = VpId::from_asn(Asn(vp_asn));
        let mut u = UpdateBuilder::announce(vp, Prefix::synthetic(prefix))
            .at(Timestamp::from_secs(1_700_000_000))
            .path(hops)
            .build();
        ribs.entry(vp).or_default().apply(&mut u);
    }
    TableDump::from_ribs(ribs.iter())
}

/// The canonical dual-stack TABLE_DUMP_V2 snapshot: one peer carrying a
/// v4 and a v6 route (RIB_IPV4_UNICAST + RIB_IPV6_UNICAST sections).
fn golden_table_dump_v6() -> TableDump {
    let mut ribs: BTreeMap<VpId, Rib> = BTreeMap::new();
    let vp = VpId::from_asn(Asn(65001));
    for prefix in [Prefix::synthetic(1), Prefix::synthetic_v6(1)] {
        let mut u = UpdateBuilder::announce(vp, prefix)
            .at(Timestamp::from_secs(1_700_000_000))
            .path([65001, 174, 3356])
            .build();
        ribs.entry(vp).or_default().apply(&mut u);
    }
    TableDump::from_ribs(ribs.iter())
}

fn encode_updates() -> Vec<u8> {
    let mut w = MrtWriter::new(Vec::new());
    for rec in golden_updates() {
        w.write_record(&rec).unwrap();
    }
    w.into_inner().unwrap()
}

fn encode_updates_v6() -> Vec<u8> {
    let mut w = MrtWriter::new(Vec::new());
    for rec in golden_updates_v6() {
        w.write_record(&rec).unwrap();
    }
    w.into_inner().unwrap()
}

fn encode_table_dump_v6() -> Vec<u8> {
    let mut bytes = Vec::new();
    golden_table_dump_v6()
        .write_mrt(&mut bytes, Timestamp::from_secs(1_700_000_100))
        .unwrap();
    bytes
}

fn encode_table_dump() -> Vec<u8> {
    let mut bytes = Vec::new();
    golden_table_dump()
        .write_mrt(&mut bytes, Timestamp::from_secs(1_700_000_100))
        .unwrap();
    bytes
}

/// Points at the first differing byte so a format drift is immediately
/// localizable.
fn assert_bytes_eq(actual: &[u8], golden: &[u8], what: &str) {
    if actual == golden {
        return;
    }
    let at = actual
        .iter()
        .zip(golden.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| actual.len().min(golden.len()));
    panic!(
        "{what}: encoding drifted from the golden fixture at byte {at} \
         (actual len {}, golden len {}); if the format change is \
         intentional, regenerate with \
         `cargo test --test golden_mrt -- --ignored regenerate`",
        actual.len(),
        golden.len(),
    );
}

#[test]
fn bgp4mp_updates_reencode_byte_exactly() {
    let golden = read_fixture("updates.mrt");
    assert_bytes_eq(&encode_updates(), &golden, "BGP4MP update stream");

    // and decoding the fixture yields the canonical records
    let mut rest = &golden[..];
    let mut decoded = Vec::new();
    while let Some((rec, used)) = MrtRecord::decode(rest).unwrap() {
        decoded.push(rec);
        rest = &rest[used..];
    }
    let want = golden_updates();
    assert_eq!(decoded.len(), want.len());
    for (d, w) in decoded.iter().zip(&want) {
        assert_eq!(d.peer_as, w.peer_as);
        assert_eq!(d.time.as_secs(), w.time.as_secs());
        assert_eq!(d.message, w.message);
        // each record alone also re-encodes byte-exactly
    }
}

#[test]
fn each_bgp4mp_record_reencodes_byte_exactly() {
    let golden = read_fixture("updates.mrt");
    let mut rest = &golden[..];
    let mut offset = 0usize;
    while let Some((rec, used)) = MrtRecord::decode(rest).unwrap() {
        let re = rec.encode().unwrap();
        assert_bytes_eq(&re, &rest[..used], "decoded record re-encode");
        offset += used;
        rest = &golden[offset..];
    }
    assert_eq!(offset, golden.len(), "no trailing bytes in the fixture");
}

#[test]
fn bgp4mp_v6_updates_reencode_byte_exactly() {
    use gill::wire::{AddressFamily, DecodeCtx};
    let golden = read_fixture("updates_v6.mrt");
    assert_bytes_eq(&encode_updates_v6(), &golden, "BGP4MP v6 update stream");

    // the ADD-PATH record needs the negotiated context to decode; with it,
    // every record roundtrips byte-exactly
    let ctx = DecodeCtx::from_families([AddressFamily::Ipv6Unicast]);
    let mut rest = &golden[..];
    let mut decoded = Vec::new();
    while let Some((rec, used)) = MrtRecord::decode_ctx(rest, &ctx).unwrap() {
        let re = rec.encode().unwrap();
        assert_bytes_eq(&re, &rest[..used], "decoded v6 record re-encode");
        decoded.push(rec);
        rest = &rest[used..];
    }
    let want = golden_updates_v6();
    assert_eq!(decoded.len(), want.len());
    for (d, w) in decoded.iter().zip(&want) {
        assert!(d.peer_ip.is_ipv6(), "AFI-2 record header");
        assert_eq!(d.message, w.message);
    }
}

#[test]
fn table_dump_v2_dual_stack_reencodes_byte_exactly() {
    let golden = read_fixture("table_dump_v6.mrt");
    assert_bytes_eq(
        &encode_table_dump_v6(),
        &golden,
        "dual-stack TABLE_DUMP_V2 snapshot",
    );
    let dump = TableDump::read_mrt(&golden).unwrap();
    let mut re = Vec::new();
    dump.write_mrt(&mut re, Timestamp::from_secs(1_700_000_100))
        .unwrap();
    assert_bytes_eq(&re, &golden, "dual-stack TABLE_DUMP_V2 decode/re-encode");
    let ribs = dump.to_ribs();
    let rib = &ribs[&VpId::from_asn(Asn(65001))];
    assert!(rib.iter().any(|(p, _)| p.is_ipv6()));
    assert!(rib.iter().any(|(p, _)| !p.is_ipv6()));
}

#[test]
fn table_dump_v2_reencodes_byte_exactly() {
    let golden = read_fixture("table_dump.mrt");
    assert_bytes_eq(&encode_table_dump(), &golden, "TABLE_DUMP_V2 snapshot");

    // decode → re-encode of the fixture itself is also byte-exact
    let dump = TableDump::read_mrt(&golden).unwrap();
    let mut re = Vec::new();
    dump.write_mrt(&mut re, Timestamp::from_secs(1_700_000_100))
        .unwrap();
    assert_bytes_eq(&re, &golden, "TABLE_DUMP_V2 decode/re-encode");

    // and the semantic content survives
    let ribs = dump.to_ribs();
    assert_eq!(ribs.len(), 2, "two peers in the golden snapshot");
}

/// Regenerates the fixtures. Run only after an intentional format change:
/// `cargo test --test golden_mrt -- --ignored regenerate`
#[test]
#[ignore = "writes fixtures; run explicitly after intentional format changes"]
fn regenerate() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    std::fs::write(fixture_path("updates.mrt"), encode_updates()).unwrap();
    std::fs::write(fixture_path("table_dump.mrt"), encode_table_dump()).unwrap();
    std::fs::write(fixture_path("updates_v6.mrt"), encode_updates_v6()).unwrap();
    std::fs::write(fixture_path("table_dump_v6.mrt"), encode_table_dump_v6()).unwrap();
}
