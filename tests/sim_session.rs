//! Deterministic session scenarios over `SimTransport`: seeded fault
//! schedules driving the BGP session FSM through corruption, disconnects,
//! half-open peers and hold-timer expiry — with bit-identical replays.
//!
//! These run entirely in-process on a virtual clock; nothing here touches
//! the network, sleeps, or depends on scheduler timing.

use gill::collector::{run_scenario, FaultSchedule, Scenario, SessionConfig};
use gill::prelude::*;
use gill::wire::UpdateMessage;
use std::net::Ipv4Addr;

fn script(n: u32) -> Vec<UpdateMessage> {
    (0..n)
        .map(|i| {
            UpdateMessage::announce(
                Prefix::synthetic(i),
                AsPath::from_u32s([65001, 174, 3356 + i]),
                Ipv4Addr::new(10, 0, 0, 9),
                vec![Community::new(65001, i as u16)],
            )
        })
        .collect()
}

fn short_hold(cfg: &mut SessionConfig, hold: u16) {
    cfg.hold_time = hold;
}

/// The acceptance scenario from the issue: the client stalls (half-open
/// peer) mid-UPDATE, the server's hold timer expires, and the client
/// reconnects on a fresh attempt and delivers the full script. Three
/// consecutive runs must produce bit-identical transcripts.
#[test]
fn hold_expiry_mid_update_then_reconnect_replays_bit_identically() {
    let mut scenario = Scenario {
        seed: 0x5e55_10f5_eed5,
        updates: script(4),
        max_attempts: 3,
        ..Scenario::default()
    };
    short_hold(&mut scenario.server, 3);
    short_hold(&mut scenario.client, 3);
    // the client's byte stream stalls mid-way through its UPDATE burst:
    // the OPEN + KEEPALIVE handshake is ~66 bytes, so offset 150 lands
    // inside the update script
    scenario.client_faults = vec![FaultSchedule::parse("stall@150").unwrap()];

    let runs: Vec<_> = (0..3).map(|_| run_scenario(&scenario)).collect();

    let first = &runs[0];
    assert!(
        first.completed,
        "script must complete after reconnect:\n{}",
        first.transcript.lines().join("\n")
    );
    assert!(first.attempts > 1, "the stall must force a reconnect");
    assert!(first.established_count >= 2, "re-established after expiry");
    // delivery accumulates across attempts; the final attempt replays the
    // whole script, so the transcript ends with all four updates in order
    assert!(first.delivered.len() >= 4);
    assert_eq!(
        &first.delivered[first.delivered.len() - 4..],
        &script(4)[..],
        "full script delivered on the successful attempt"
    );
    let joined = first.transcript.lines().join("\n");
    assert!(
        joined.contains("closed reason=HoldTimerExpired"),
        "server must time the stalled peer out:\n{joined}"
    );
    assert!(joined.contains("reconnect backoff="), "backoff logged");

    // bit-identical replay: same digest, same lines, across 3 runs
    for run in &runs[1..] {
        assert_eq!(run.transcript.digest(), first.transcript.digest());
        assert_eq!(run.transcript.lines(), first.transcript.lines());
    }
}

#[test]
fn clean_scenario_delivers_everything_first_try() {
    let scenario = Scenario {
        seed: 7,
        updates: script(6),
        ..Scenario::default()
    };
    let out = run_scenario(&scenario);
    assert!(out.completed);
    assert_eq!(out.attempts, 1);
    assert_eq!(out.established_count, 1);
    assert_eq!(out.delivered, script(6));
    // a clean run ends with both sides closing gracefully, not by error
    let joined = out.transcript.lines().join("\n");
    assert!(joined.contains("closed reason=NotificationReceived"));
    assert!(!joined.contains("HoldTimerExpired"));
}

#[test]
fn corruption_in_the_open_triggers_notification_and_reconnect() {
    let mut scenario = Scenario {
        seed: 21,
        updates: script(2),
        max_attempts: 3,
        ..Scenario::default()
    };
    // flip a marker bit in the client's very first message: the server
    // must answer with NOTIFICATION (1,1) and the client must retry
    scenario.client_faults = vec![FaultSchedule::parse("corrupt@3.7").unwrap()];
    let out = run_scenario(&scenario);
    assert!(out.completed, "{}", out.transcript.lines().join("\n"));
    assert!(out.attempts > 1);
    let joined = out.transcript.lines().join("\n");
    assert!(
        joined.contains("notification-tx code=1 sub=1"),
        "bad marker must be answered with (1,1):\n{joined}"
    );
}

#[test]
fn sever_mid_message_is_a_partial_close_then_recovery() {
    let mut scenario = Scenario {
        seed: 33,
        updates: script(3),
        max_attempts: 4,
        ..Scenario::default()
    };
    // cut the client's stream inside its second frame (OPEN is 29+ bytes)
    scenario.client_faults = vec![FaultSchedule::parse("sever@40").unwrap()];
    let out = run_scenario(&scenario);
    assert!(out.completed, "{}", out.transcript.lines().join("\n"));
    let joined = out.transcript.lines().join("\n");
    assert!(
        joined.contains("closed reason=PeerClosedMidMessage"),
        "mid-frame EOF must be distinguished from a clean close:\n{joined}"
    );
}

#[test]
fn delays_reorder_nothing_and_lose_nothing() {
    let mut scenario = Scenario {
        seed: 44,
        updates: script(5),
        ..Scenario::default()
    };
    // 800 ms of added latency mid-stream: slower, but still complete
    scenario.client_faults = vec![FaultSchedule::parse("delay@100:800").unwrap()];
    let out = run_scenario(&scenario);
    assert!(out.completed);
    assert_eq!(out.attempts, 1, "latency alone must not drop the session");
    assert_eq!(out.delivered, script(5));
}

#[test]
fn keepalives_maintain_an_idle_session() {
    // no updates at all: the session must stay up on KEEPALIVEs alone
    // for well past several hold intervals
    let mut scenario = Scenario {
        seed: 9,
        updates: Vec::new(),
        ..Scenario::default()
    };
    short_hold(&mut scenario.server, 3);
    short_hold(&mut scenario.client, 3);
    let out = run_scenario(&scenario);
    assert!(out.completed);
    let joined = out.transcript.lines().join("\n");
    assert!(joined.contains("keepalive-tx"));
    assert!(!joined.contains("HoldTimerExpired"));
}

/// A battery of seeded random schedules: whatever the fault mix, the run
/// is deterministic (same seed → same digest) and never panics or hangs.
#[test]
fn random_fault_schedules_are_deterministic_and_contained() {
    for seed in 0..24u64 {
        let schedule = FaultSchedule::random(seed, 400);
        let mut scenario = Scenario {
            seed,
            updates: script(3),
            max_attempts: 3,
            ..Scenario::default()
        };
        short_hold(&mut scenario.server, 3);
        short_hold(&mut scenario.client, 3);
        scenario.client_faults = vec![schedule.clone()];

        let a = run_scenario(&scenario);
        let b = run_scenario(&scenario);
        assert_eq!(
            a.transcript.digest(),
            b.transcript.digest(),
            "seed {seed} schedule `{schedule}` must replay identically"
        );
        // the two runs delivered exactly the same sequence (a bit flip in
        // an UPDATE payload may legitimately alter its content — BGP has
        // no payload checksum — but it must alter it identically)
        assert_eq!(a.delivered, b.delivered, "seed {seed}");
        assert_eq!(a.completed, b.completed, "seed {seed}");
        assert!(
            a.delivered.len() <= 3 * a.attempts as usize,
            "seed {seed}: at most one full script per attempt"
        );
    }
}

/// The grammar printed in transcripts and DESIGN.md round-trips, so a
/// failing seed's schedule can be pasted back verbatim to reproduce it.
#[test]
fn fault_schedule_text_reproduces_the_run() {
    let schedule = FaultSchedule::random(0xfeed, 300);
    let reparsed = FaultSchedule::parse(&schedule.to_string()).unwrap();
    let mut scenario = Scenario {
        seed: 0xfeed,
        updates: script(2),
        max_attempts: 3,
        ..Scenario::default()
    };
    scenario.client_faults = vec![schedule];
    let a = run_scenario(&scenario);
    scenario.client_faults = vec![reparsed];
    let b = run_scenario(&scenario);
    assert_eq!(a.transcript.digest(), b.transcript.digest());
}
