//! Live-daemon retrain: a collector with three simulated sessions runs
//! through a filter refresh mid-stream. No session drops, pre-epoch
//! updates are judged by the old filters, post-epoch updates by the new,
//! and the per-epoch `DaemonStats` counters account for every update.

use gill::collector::{
    handshake_client, handshake_server, run_session_with, sim_pair, CloseReason, DaemonConfig,
    DaemonPool, DaemonStats, FaultSchedule, MessageStream, Orchestrator, OrchestratorConfig,
    SessionCtx, VirtualClock,
};
use gill::core::{FilterGranularity, FilterHandle, FilterSet};
use gill::prelude::*;
use gill::wire::{BgpMessage, Notification, UpdateMessage};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn wait_until(cond: impl Fn() -> bool) -> bool {
    for _ in 0..2000 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn announce(asn: u32, prefix: u32) -> UpdateMessage {
    UpdateMessage::announce(
        Prefix::synthetic(prefix),
        AsPath::from_u32s([asn, 174, 3356]),
        Ipv4Addr::new(10, 0, 0, 9),
        vec![],
    )
}

/// What `DaemonPool::install_filters` does, for the pool-less sim setup:
/// reset the epoch's counter slot *before* publishing it.
fn publish(handle: &Arc<FilterHandle>, stats: &DaemonStats, fs: &FilterSet) -> u64 {
    let compiled = handle.compile_next(fs);
    stats.begin_epoch(compiled.epoch());
    let e = handle.publish(compiled);
    stats.filter_epoch.store(e, Ordering::Release);
    e
}

const PEERS: [u32; 3] = [65001, 65002, 65003];

#[test]
fn refresh_mid_stream_over_three_sim_sessions() {
    let clock = VirtualClock::new();
    let handle = FilterHandle::empty();
    let stats = Arc::new(DaemonStats::default());
    let (queue_tx, queue_rx) = crossbeam::channel::bounded(1024);
    let (mirror_tx, mirror_rx) = crossbeam::channel::bounded(1024);
    let cfg = DaemonConfig::default();
    // both phases gate on the main thread: phase 2 starts only after the
    // new epoch is published mid-stream
    let phase2 = Barrier::new(PEERS.len() + 1);
    let done = Barrier::new(PEERS.len() + 1);

    let reasons = std::thread::scope(|s| {
        let mut servers = Vec::new();
        for &asn in &PEERS {
            let (srv_t, cli_t) =
                sim_pair(&clock, FaultSchedule::default(), FaultSchedule::default());
            let mut ctx = SessionCtx::new(handle.view(), queue_tx.clone(), stats.clone());
            ctx.mirror = Some(mirror_tx.clone());
            ctx.mirror_on = Arc::new(AtomicBool::new(true));
            let cfg = cfg.clone();
            servers.push(s.spawn(move || {
                let mut ms = MessageStream::new(srv_t);
                let session = handshake_server(&mut ms, &cfg).expect("handshake");
                run_session_with(&mut ms, session, &ctx).expect("session io")
            }));
            let phase2 = &phase2;
            let done = &done;
            s.spawn(move || {
                let mut ms = MessageStream::new(cli_t);
                handshake_client(&mut ms, asn).expect("client handshake");
                for p in 0..10 {
                    ms.write_message(&BgpMessage::Update(announce(asn, p)))
                        .unwrap();
                }
                phase2.wait();
                for p in 0..10 {
                    ms.write_message(&BgpMessage::Update(announce(asn, p)))
                        .unwrap();
                }
                done.wait();
                ms.write_message(&BgpMessage::Notification(Notification::cease()))
                    .unwrap();
            });
        }

        // phase 1 complete: 30 updates all judged by epoch 0 (accept-all)
        assert!(
            wait_until(|| stats.retained.load(Ordering::Relaxed) == 30),
            "phase-1 updates must all be retained"
        );
        assert_eq!(stats.received.load(Ordering::Relaxed), 30);
        assert_eq!(stats.epoch_counts(0), Some((30, 0)));

        // mid-stream refresh: drop (vp, prefix 0) for every peer
        let rules: Vec<BgpUpdate> = PEERS
            .iter()
            .map(|&asn| {
                UpdateBuilder::announce(VpId::from_asn(Asn(asn)), Prefix::synthetic(0))
                    .path([asn, 174, 3356])
                    .build()
            })
            .collect();
        let fs = FilterSet::generate([], rules.iter(), FilterGranularity::VpPrefix);
        assert_eq!(publish(&handle, &stats, &fs), 1);
        phase2.wait();

        // phase 2: 30 more updates, 3 of them (prefix 0) judged by epoch 1
        assert!(
            wait_until(|| stats.received.load(Ordering::Relaxed) == 60),
            "phase-2 updates must all arrive"
        );
        assert!(wait_until(|| {
            stats.retained.load(Ordering::Relaxed) + stats.filtered.load(Ordering::Relaxed) == 60
        }));
        done.wait();
        servers
            .into_iter()
            .map(|h| h.join().expect("server thread"))
            .collect::<Vec<_>>()
    });

    // no session drops: every close was the client's graceful cease
    assert_eq!(reasons.len(), PEERS.len());
    for r in &reasons {
        assert!(
            matches!(r, CloseReason::NotificationReceived { code: 6, .. }),
            "session must close gracefully, got {r:?}"
        );
    }
    assert_eq!(stats.hold_expirations.load(Ordering::Relaxed), 0);

    // attribution: epoch 0 judged exactly the 30 pre-refresh updates,
    // epoch 1 the 30 post-refresh ones (27 accepted, 3 dropped)
    assert_eq!(stats.epoch_counts(0), Some((30, 0)));
    assert_eq!(stats.epoch_counts(1), Some((27, 3)));
    assert_eq!(stats.filtered.load(Ordering::Relaxed), 3);
    assert_eq!(stats.retained.load(Ordering::Relaxed), 57);
    // every received update is accounted to exactly one epoch
    let (a0, d0) = stats.epoch_counts(0).unwrap();
    let (a1, d1) = stats.epoch_counts(1).unwrap();
    assert_eq!(
        (a0 + d0 + a1 + d1) as usize,
        stats.received.load(Ordering::Relaxed)
    );

    // the unfiltered stream reached the mirror; a real orchestrator can
    // train on it and publish the next epoch
    assert_eq!(stats.mirror_fed.load(Ordering::Relaxed), 60);
    assert_eq!(stats.mirror_dropped.load(Ordering::Relaxed), 0);
    let mut orch = Orchestrator::new(
        OrchestratorConfig::default(),
        PEERS.iter().map(|&a| VpId::from_asn(Asn(a))).collect(),
        HashMap::new(),
    );
    orch.observe(mirror_rx.try_iter().map(|u: BgpUpdate| u));
    assert_eq!(orch.mirror_len(), 60);
    orch.force_refresh(Timestamp::from_secs(60), true);
    assert_eq!(publish(&handle, &stats, orch.filters()), 2);
    assert_eq!(handle.epoch(), 2);

    drop(queue_tx);
    assert_eq!(queue_rx.try_iter().count(), 57);
}

#[test]
fn attached_orchestrator_retrains_live_tcp_pool() {
    let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
    let orch = Orchestrator::new(
        OrchestratorConfig::default(),
        PEERS.iter().map(|&a| VpId::from_asn(Asn(a))).collect(),
        HashMap::new(),
    );
    pool.attach_orchestrator(orch, Duration::from_millis(200))
        .unwrap();
    // attaching twice is an error, not a second driver
    let orch2 = Orchestrator::new(OrchestratorConfig::default(), Vec::new(), HashMap::new());
    assert!(pool
        .attach_orchestrator(orch2, Duration::from_millis(200))
        .is_err());
    let addr = pool.local_addr();
    let stats = pool.stats();
    let phase2 = Barrier::new(PEERS.len() + 1);
    let opened = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for &asn in &PEERS {
            let phase2 = &phase2;
            let opened = &opened;
            s.spawn(move || {
                let stream = std::net::TcpStream::connect(addr).unwrap();
                let mut ms = MessageStream::new(stream);
                handshake_client(&mut ms, asn).unwrap();
                opened.fetch_add(1, Ordering::Relaxed);
                for p in 0..20 {
                    ms.write_message(&BgpMessage::Update(announce(asn, p)))
                        .unwrap();
                }
                // hold the session open across the background retrain
                phase2.wait();
                for p in 0..5 {
                    ms.write_message(&BgpMessage::Update(announce(asn, p)))
                        .unwrap();
                }
                ms.write_message(&BgpMessage::Notification(Notification::cease()))
                    .unwrap();
            });
        }
        // the driver drains the mirror and publishes a new epoch without
        // touching the live sessions
        assert!(
            wait_until(|| stats.filter_epoch.load(Ordering::Acquire) >= 1),
            "background refresh must publish a new epoch"
        );
        assert_eq!(opened.load(Ordering::Relaxed), PEERS.len());
        assert_eq!(stats.sessions_closed.load(Ordering::Relaxed), 0);
        phase2.wait();
    });

    assert!(wait_until(|| {
        stats.sessions_closed.load(Ordering::Relaxed) == PEERS.len()
    }));
    pool.stop();

    let stats = pool.stats();
    let received = stats.received.load(Ordering::Relaxed);
    assert_eq!(received, PEERS.len() * 25);
    assert_eq!(stats.sessions_opened.load(Ordering::Relaxed), PEERS.len());
    assert_eq!(stats.handshake_failures.load(Ordering::Relaxed), 0);
    assert_eq!(stats.hold_expirations.load(Ordering::Relaxed), 0);
    // every update is attributed to exactly one published epoch
    let last = stats.filter_epoch.load(Ordering::Acquire);
    assert!(last >= 1);
    let mut attributed = 0u64;
    for e in 0..=last {
        if let Some((a, d)) = stats.epoch_counts(e) {
            attributed += a + d;
        }
    }
    assert_eq!(attributed as usize, received);
    // the mirror saw the unfiltered stream
    assert_eq!(stats.mirror_fed.load(Ordering::Relaxed), received);
}
