//! Golden BMP (RFC 7854) fixtures: known-good byte images checked into
//! `tests/fixtures/*.bmp`, one per message type. Decoding must succeed
//! and re-encoding must reproduce the fixture byte-for-byte, so any
//! unintended wire-format drift fails loudly with a diff offset instead
//! of silently corrupting a monitoring feed.
//!
//! To regenerate after an *intentional* format change:
//! `cargo test --test golden_bmp -- --ignored regenerate`

use bytes::BytesMut;
use gill::bmp::codec::{
    info_type, BmpMessage, InfoTlv, PeerDownReason, PeerHeader, PeerUpMessage, StatCounter,
};
use gill::prelude::*;
use gill::wire::{Notification, OpenMessage, UpdateMessage};
use std::net::{Ipv4Addr, Ipv6Addr};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); run the regenerate test"))
}

/// The monitored peer every per-peer fixture refers to. Timestamps are
/// pinned so the bytes are reproducible.
fn golden_peer() -> PeerHeader {
    PeerHeader::v4(65010, Ipv4Addr::new(10, 0, 0, 1), 0, 1_700_000_000_500)
}

fn golden_initiation() -> Vec<BmpMessage> {
    vec![BmpMessage::Initiation {
        info: vec![
            InfoTlv::string(info_type::SYS_DESCR, "gill golden router, sw 1.0"),
            InfoTlv::string(info_type::SYS_NAME, "fra1-r7"),
            InfoTlv::string(info_type::STRING, "golden fixture"),
        ],
    }]
}

fn golden_peer_up() -> Vec<BmpMessage> {
    let mut local = [0u8; 16];
    local[12..].copy_from_slice(&[10, 255, 0, 1]);
    vec![BmpMessage::PeerUp(PeerUpMessage {
        peer: golden_peer(),
        local_address: local,
        local_port: 179,
        remote_port: 41_000,
        sent_open: OpenMessage::new(Asn(65535), 180, Ipv4Addr::new(10, 255, 0, 1)),
        // a 4-byte-ASN peer: AS_TRANS in the fixed field, the real ASN in
        // the capability
        recv_open: OpenMessage::new(Asn(70_000), 90, Ipv4Addr::new(10, 0, 0, 1)),
        info: vec![InfoTlv::string(info_type::STRING, "golden peer")],
    })]
}

/// Route Monitoring with real UPDATE payloads: announce with communities,
/// pure withdraw, and a mixed frame.
fn golden_route_monitoring() -> Vec<BmpMessage> {
    let announce = UpdateMessage::announce(
        Prefix::synthetic(7),
        AsPath::from_u32s([65010, 174, 3356]),
        Ipv4Addr::new(10, 0, 0, 9),
        vec![Community::new(65010, 100), Community::new(65010, 200)],
    );
    let withdraw = UpdateMessage::withdraw(Prefix::synthetic(3));
    let mut mixed = announce.clone();
    mixed.withdrawn = vec![Prefix::synthetic(1).into(), Prefix::synthetic(2).into()];
    [announce, withdraw, mixed]
        .into_iter()
        .map(|update| BmpMessage::RouteMonitoring {
            peer: golden_peer(),
            update,
        })
        .collect()
}

/// Route Monitoring carrying IPv6 unicast routes in MP_REACH_NLRI /
/// MP_UNREACH_NLRI (RFC 4760): an announce and a pure withdraw.
fn golden_route_monitoring_v6() -> Vec<BmpMessage> {
    let announce = UpdateMessage::announce_v6(
        Prefix::synthetic_v6(7),
        AsPath::from_u32s([65010, 174, 3356]),
        Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 9),
        vec![Community::new(65010, 100)],
    );
    let withdraw = UpdateMessage::withdraw(Prefix::synthetic_v6(3));
    [announce, withdraw]
        .into_iter()
        .map(|update| BmpMessage::RouteMonitoring {
            peer: golden_peer(),
            update,
        })
        .collect()
}

/// Peer Down in all three data shapes: embedded NOTIFICATION (reason 1),
/// local FSM code (reason 2), and remote-no-data (reason 4).
fn golden_peer_down() -> Vec<BmpMessage> {
    let mut notif = Notification::cease();
    notif.data = vec![0xde, 0xad, 0xbe, 0xef];
    vec![
        BmpMessage::PeerDown {
            peer: golden_peer(),
            reason: PeerDownReason::LocalNotification(notif),
        },
        BmpMessage::PeerDown {
            peer: golden_peer(),
            reason: PeerDownReason::LocalFsm(18),
        },
        BmpMessage::PeerDown {
            peer: golden_peer(),
            reason: PeerDownReason::RemoteNoData,
        },
    ]
}

fn golden_stats() -> Vec<BmpMessage> {
    vec![BmpMessage::StatsReport {
        peer: golden_peer(),
        stats: vec![
            StatCounter::counter(0, 12),    // prefixes rejected
            StatCounter::counter(2, 3),     // duplicate withdraws
            StatCounter::gauge(7, 950_000), // Adj-RIB-In size
            StatCounter::gauge(8, 845_112), // Loc-RIB size
        ],
    }]
}

fn fixtures() -> Vec<(&'static str, Vec<BmpMessage>)> {
    vec![
        ("initiation.bmp", golden_initiation()),
        ("peer_up.bmp", golden_peer_up()),
        ("route_monitoring.bmp", golden_route_monitoring()),
        ("route_monitoring_v6.bmp", golden_route_monitoring_v6()),
        ("peer_down.bmp", golden_peer_down()),
        ("stats_report.bmp", golden_stats()),
    ]
}

fn encode_all(msgs: &[BmpMessage]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in msgs {
        out.extend(m.encode_to_vec().unwrap());
    }
    out
}

/// Points at the first differing byte so a format drift is immediately
/// localizable.
fn assert_bytes_eq(actual: &[u8], golden: &[u8], what: &str) {
    if actual == golden {
        return;
    }
    let at = actual
        .iter()
        .zip(golden.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| actual.len().min(golden.len()));
    panic!(
        "{what}: encoding drifted from the golden fixture at byte {at} \
         (actual len {}, golden len {}); if the format change is \
         intentional, regenerate with \
         `cargo test --test golden_bmp -- --ignored regenerate`",
        actual.len(),
        golden.len(),
    );
}

#[test]
fn every_fixture_reencodes_byte_exactly() {
    for (name, msgs) in fixtures() {
        let golden = read_fixture(name);
        assert_bytes_eq(&encode_all(&msgs), &golden, name);

        // streaming-decode the fixture and compare message by message
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&golden);
        let mut decoded = Vec::new();
        while let Some(m) = BmpMessage::decode(&mut buf).unwrap_or_else(|e| {
            panic!("{name}: fixture failed to decode: {e}");
        }) {
            decoded.push(m);
        }
        assert!(buf.is_empty(), "{name}: trailing bytes in the fixture");
        assert_eq!(decoded, msgs, "{name}: decoded content drifted");
    }
}

#[test]
fn fixtures_decode_under_byte_by_byte_delivery() {
    // the streaming decoder must yield identical messages when the TCP
    // layer delivers one byte at a time
    for (name, msgs) in fixtures() {
        let golden = read_fixture(name);
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for &byte in &golden {
            buf.extend_from_slice(&[byte]);
            while let Some(m) = BmpMessage::decode(&mut buf).unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, msgs, "{name}: byte-by-byte decode drifted");
    }
}

#[test]
fn golden_semantics_survive() {
    // spot-check the load-bearing fields a consumer relies on
    let peer = golden_peer();
    assert_eq!(peer.addr_string(), "10.0.0.1");
    assert_eq!(peer.ts_ms(), 1_700_000_000_500);

    let down = golden_peer_down();
    let codes: Vec<u8> = down
        .iter()
        .map(|m| match m {
            BmpMessage::PeerDown { reason, .. } => reason.code(),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(codes, vec![1, 2, 4]);

    match &golden_route_monitoring()[0] {
        BmpMessage::RouteMonitoring { update, .. } => {
            assert_eq!(update.announced.len(), 1);
            assert!(update.withdrawn.is_empty());
        }
        _ => unreachable!(),
    }
}

/// Regenerates the fixtures. Run only after an intentional format change:
/// `cargo test --test golden_bmp -- --ignored regenerate`
#[test]
#[ignore = "writes fixtures; run explicitly after intentional format changes"]
fn regenerate() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    for (name, msgs) in fixtures() {
        std::fs::write(fixture_path(name), encode_all(&msgs)).unwrap();
    }
}
