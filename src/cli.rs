//! Shared plumbing for the `gill-*` command-line tools.
//!
//! Hand-rolled flag parsing (the tools only need `--key value` pairs) and
//! MRT stream helpers shared by `gill-simulate`, `gill-analyze`,
//! `gill-replay` and `gill-collectord`.

use crate::types::{Asn, BgpUpdate, Rib, Timestamp, VpId};
use crate::wire::{BgpMessage, MrtReader, MrtRecord, MrtWriter, UpdateMessage};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::path::Path;

/// Minimal `--key value` argument parser.
pub struct Args {
    map: HashMap<String, String>,
    program: String,
}

impl Args {
    /// Parses `std::env::args()`. Flags must come in `--key value` pairs.
    pub fn parse() -> Result<Args, String> {
        let mut it = std::env::args();
        let program = it.next().unwrap_or_else(|| "gill".into());
        let mut map = HashMap::new();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {k:?}"))?;
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), v);
        }
        Ok(Args { map, program })
    }

    /// The binary name.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<String, String> {
        self.map
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<String> {
        self.map.get(key).cloned()
    }

    /// A numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v:?}")),
        }
    }
}

/// Parses a family-list flag value (`v4`, `v6`, or `v4,v6`) as used by
/// `--addpath`-style options.
pub fn parse_families(s: &str) -> Result<Vec<crate::wire::AddressFamily>, String> {
    s.split(',')
        .map(|f| match f.trim() {
            "v4" | "ipv4" => Ok(crate::wire::AddressFamily::Ipv4Unicast),
            "v6" | "ipv6" => Ok(crate::wire::AddressFamily::Ipv6Unicast),
            other => Err(format!("unknown address family {other:?} (want v4/v6)")),
        })
        .collect()
}

/// Writes an update stream as MRT BGP4MP_MESSAGE_AS4 records.
pub fn write_updates_mrt(path: &Path, updates: &[BgpUpdate]) -> std::io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut w = MrtWriter::new(std::io::BufWriter::new(file));
    for u in updates {
        let msg = UpdateMessage::from_domain(u)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            .without_path_ids();
        // record addresses follow the route's family so v6 days archive
        // as AFI-2 BGP4MP records
        let (peer_ip, local_ip) = if u.prefix.is_ipv6() {
            (
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 1)),
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 0xfe)),
            )
        } else {
            (
                IpAddr::V4(Ipv4Addr::new(10, 255, 0, 1)),
                IpAddr::V4(Ipv4Addr::new(10, 255, 0, 254)),
            )
        };
        w.write_record(&MrtRecord {
            time: u.time,
            peer_as: u.vp.asn,
            local_as: Asn(65535),
            peer_ip,
            local_ip,
            message: BgpMessage::Update(msg),
        })?;
    }
    let n = w.records_written();
    w.into_inner()?;
    Ok(n)
}

/// Reads an update stream back from an MRT file (classic sessions — no
/// ADD-PATH).
pub fn read_updates_mrt(path: &Path) -> std::io::Result<Vec<BgpUpdate>> {
    read_updates_mrt_ctx(path, &crate::wire::DecodeCtx::default())
}

/// Reads an update stream whose embedded BGP messages decode under `ctx` —
/// required for archives written from ADD-PATH sessions, where NLRI carry a
/// leading path identifier that a classic decode would misparse.
pub fn read_updates_mrt_ctx(
    path: &Path,
    ctx: &crate::wire::DecodeCtx,
) -> std::io::Result<Vec<BgpUpdate>> {
    let file = std::fs::File::open(path)?;
    let mut r = MrtReader::with_ctx(std::io::BufReader::new(file), *ctx);
    let mut out = Vec::new();
    loop {
        match r.next_record() {
            Ok(Some(rec)) => {
                if let BgpMessage::Update(u) = rec.message {
                    out.extend(u.to_domain(VpId::from_asn(rec.peer_as), rec.time));
                }
            }
            Ok(None) => break,
            Err(e) => return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
        }
    }
    Ok(out)
}

/// Writes per-VP RIBs as a TABLE_DUMP_V2 snapshot.
pub fn write_ribs_mrt(
    path: &Path,
    ribs: &HashMap<VpId, Rib>,
    at: Timestamp,
) -> std::io::Result<usize> {
    let dump = crate::wire::TableDump::from_ribs(ribs.iter());
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    dump.write_mrt(&mut w, at)
}

/// Reads a TABLE_DUMP_V2 snapshot into per-VP RIBs.
pub fn read_ribs_mrt(path: &Path) -> std::io::Result<HashMap<VpId, Rib>> {
    let bytes = std::fs::read(path)?;
    let dump = crate::wire::TableDump::read_mrt(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(dump.to_ribs().into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn updates_mrt_file_roundtrip() {
        let topo = TopologyBuilder::artificial(80, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.2, 3);
        let s = sim.synthesize_stream(&vps, StreamConfig::default().events(15).seed(1));
        let dir = std::env::temp_dir().join("gill-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.mrt");
        let n = write_updates_mrt(&path, &s.updates).unwrap();
        assert_eq!(n, s.updates.len());
        let back = read_updates_mrt(&path).unwrap();
        assert_eq!(back.len(), s.updates.len());
        for (a, b) in back.iter().zip(&s.updates) {
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(a.path, b.path);
            assert_eq!(a.vp, b.vp);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ribs_mrt_file_roundtrip() {
        let topo = TopologyBuilder::artificial(60, 6).build();
        let sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.1, 3);
        let ribs = sim.rib_snapshot(&vps, Timestamp::from_secs(5));
        let dir = std::env::temp_dir().join("gill-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ribs.mrt");
        write_ribs_mrt(&path, &ribs, Timestamp::from_secs(5)).unwrap();
        let back = read_ribs_mrt(&path).unwrap();
        assert_eq!(back.len(), ribs.len());
        for (vp, rib) in &ribs {
            assert_eq!(back[vp].len(), rib.len());
        }
        std::fs::remove_file(&path).ok();
    }
}
