//! Full-pipeline soak harness: scenario → BGP sessions → FSM → compiled
//! filters (with live retraining) → arena store (+ sealing and a capped
//! shadow) → stream broker → HTTP query layer — all single-threaded,
//! deterministic, and continuously asserted.
//!
//! [`run_soak`] drives a seeded [`ScenarioEngine`] day through real
//! per-VP BGP sessions (wire codec and all), the orchestrator's mirror /
//! retrain loop, epoch-published compiled filters, the time-sharded route
//! store (with a mid-campaign crash-restart fork), and the broadcast
//! broker with one fast and one deliberately lazy subscriber. Along the
//! way it accumulates an FNV-1a transcript digest — two runs of the same
//! [`SoakConfig`] must produce bit-identical digests — and checks the
//! pipeline invariants:
//!
//! 1. **sessions-stable** — every session establishes and none closes or
//!    sends a NOTIFICATION before the orderly shutdown.
//! 2. **wire-delivery-complete** — every update sent by a client FSM is
//!    decoded by its server FSM (no session-layer loss).
//! 3. **compiled-matches-reference** — the epoch-published compiled
//!    filters agree with the reference [`FilterSet`] on every update.
//! 4. **epoch-convergence** — after each regime-shift retrain, the very
//!    next judged update already carries the new epoch (no stale reads).
//! 5. **mirror-accounting-exact** — observed = trained + resident +
//!    shed on the orchestrator mirror; shedding is counted, never silent.
//! 6. **primary-store-exact** — the uncapped store retains every kept
//!    update.
//! 7. **capped-store-shed-exact** — under `mem_cap_bytes`, retained +
//!    shed equals exactly the kept-update count.
//! 8. **broker-gap-exact** — fast subscriber sees every frame; the lazy
//!    subscriber's delivered + gap-marker `missed` sums to published.
//! 9. **crash-restart-equivalent** — a store reloaded from sealed
//!    segments mid-campaign answers the full query matrix byte-identically
//!    to the survivor, at the fork and again at end-of-day.
//! 10. **background-burstiness-in-band** — the generated background shows
//!     the configured overdispersion and autocorrelation.

use crate::bmp::{BmpCloseReason, BmpEvent, BmpFsm, BmpSessionConfig};
use crate::collector::transport::{
    sim_pair, Clock, FaultSchedule, SimTransport, Transport, VirtualClock,
};
use crate::collector::{
    Orchestrator, OrchestratorConfig, SessionConfig, SessionEvent, SessionFsm, SessionRole,
    SessionState, Storage, StoredUpdate,
};
use crate::core::{FilterHandle, FilterSet, FilterView};
use crate::query::server::route;
use crate::query::{QueryableStorage, Request, RouteStore, SharedStore, StoreConfig};
use crate::scenario::{
    update_line, BackgroundConfig, BmpFeed, BurstBand, CampaignConfig, CampaignKind, Fnv64,
    ScenarioConfig, ScenarioEngine, World,
};
use crate::stream::{
    BrokerConfig, Delivery, FramePayload, SlowPolicy, StreamBroker, StreamFilter, Subscription,
};
use crate::types::{BgpUpdate, Timestamp, VpId};
use crate::wire::UpdateMessage;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// Everything [`run_soak`] needs; the digest is a pure function of this.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Master seed; all generator seeds derive from it.
    pub seed: u64,
    /// Vantage points (one live BGP session pair each).
    pub n_vps: u32,
    /// Prefix universe size.
    pub n_prefixes: u32,
    /// Approximate background update volume; the scenario duration is
    /// derived so the background process emits about this many.
    pub background_updates: usize,
    /// Campaigns, launched in order at evenly spaced regime boundaries.
    pub campaigns: Vec<CampaignKind>,
    /// Orchestrator mirror cap (small values force counted shedding).
    pub mirror_cap: usize,
    /// `mem_cap_bytes` for the capped shadow store (0 disables).
    pub capped_store_bytes: u64,
    /// Broker ring size (small values force lazy-subscriber gaps).
    pub ring_capacity: usize,
    /// Segment directory for the crash-restart fork. `None` skips the
    /// restart invariant (it reports as skipped, not failed).
    pub data_dir: Option<PathBuf>,
    /// How many of the day's VPs enter through one BMP (RFC 7854) session
    /// instead of their own BGP sessions — the *last* `bmp_vps` of
    /// `n_vps`, demuxed from per-peer headers on the collector side. 0
    /// keeps the classic all-BGP day (and its digests) unchanged.
    pub bmp_vps: u32,
    /// Run a mixed-family day: odd world prefixes are IPv6 and flow
    /// through MP_REACH/MP_UNREACH on the live sessions. `false` keeps
    /// the classic v4-only day (and its digests) unchanged.
    pub dual_stack: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 1,
            n_vps: 6,
            n_prefixes: 96,
            background_updates: 20_000,
            campaigns: vec![
                CampaignKind::RouteLeak,
                CampaignKind::HijackWave,
                CampaignKind::WithdrawalAvalanche,
            ],
            mirror_cap: 4_096,
            capped_store_bytes: 1 << 20,
            ring_capacity: 512,
            data_dir: None,
            bmp_vps: 0,
            dual_stack: false,
        }
    }
}

impl SoakConfig {
    /// The derived scenario: campaign `i` of `n` opens its window at
    /// `(i+1)/(n+1)` of the day and runs for half a slot.
    pub fn scenario(&self) -> ScenarioConfig {
        let world = World {
            n_vps: self.n_vps,
            n_prefixes: self.n_prefixes,
            seed: self.seed ^ 0x5eed_0fda_0dd5,
            dual_stack: self.dual_stack,
        };
        let background = BackgroundConfig::default();
        let duration_ms = background.duration_for(self.background_updates);
        let slots = self.campaigns.len() as u64 + 1;
        let slot = duration_ms / slots;
        let campaigns = self
            .campaigns
            .iter()
            .enumerate()
            .map(|(i, &kind)| CampaignConfig {
                kind,
                start_ms: slot * (i as u64 + 1),
                duration_ms: (slot / 2).max(1),
                n_targets: (self.n_prefixes / 6).max(4),
                repeats: 3,
                actor: 64_000 + i as u32,
                seed: self.seed ^ (0xca40_0000 + i as u64),
            })
            .collect();
        ScenarioConfig {
            world,
            background,
            duration_ms,
            campaigns,
            seed: self.seed,
        }
    }
}

/// One checked pipeline property.
#[derive(Clone, Debug)]
pub struct Invariant {
    /// Stable machine-readable name.
    pub name: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence (counters on pass, diagnosis on fail).
    pub detail: String,
}

/// End-of-day counters, exposed for regression assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoakCounters {
    /// Updates handed to client FSMs.
    pub sent: u64,
    /// Updates decoded by server FSMs.
    pub received: u64,
    /// Updates the compiled filters kept.
    pub kept: u64,
    /// Updates the compiled filters dropped.
    pub dropped: u64,
    /// Frames published to the broker.
    pub published: u64,
    /// Regime-shift retrains executed.
    pub regimes: u64,
    /// Updates shed (counted) from the orchestrator mirror.
    pub mirror_shed: u64,
    /// Updates shed (counted) by the capped shadow store.
    pub capped_shed: u64,
    /// Frames the lazy subscriber lost to gap markers.
    pub lazy_missed: u64,
    /// Keepalives observed across all sessions.
    pub keepalives: u64,
}

/// The outcome of one soak run.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// FNV-1a transcript digest (hex). Bit-identical across reruns of the
    /// same [`SoakConfig`].
    pub digest: String,
    /// End-of-day counters.
    pub counters: SoakCounters,
    /// Every invariant, in the order listed in the module docs.
    pub invariants: Vec<Invariant>,
}

impl SoakReport {
    /// True iff every invariant held.
    pub fn all_pass(&self) -> bool {
        self.invariants.iter().all(|i| i.pass)
    }

    /// Renders the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"digest\": \"{}\",\n", self.digest));
        s.push_str(&format!("  \"all_pass\": {},\n", self.all_pass()));
        s.push_str(&format!(
            "  \"counters\": {{\"sent\": {}, \"received\": {}, \"kept\": {}, \"dropped\": {}, \
             \"published\": {}, \"regimes\": {}, \"mirror_shed\": {}, \"capped_shed\": {}, \
             \"lazy_missed\": {}, \"keepalives\": {}}},\n",
            c.sent,
            c.received,
            c.kept,
            c.dropped,
            c.published,
            c.regimes,
            c.mirror_shed,
            c.capped_shed,
            c.lazy_missed,
            c.keepalives
        ));
        s.push_str("  \"invariants\": [\n");
        for (i, inv) in self.invariants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}{}\n",
                inv.name,
                inv.pass,
                inv.detail.replace('\\', "\\\\").replace('"', "\\\""),
                if i + 1 < self.invariants.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// One side of a live session (the harness keeps its own private).
struct Endpoint {
    fsm: SessionFsm,
    transport: SimTransport,
    eof_seen: bool,
}

impl Endpoint {
    fn pump(&mut self, now: u64) {
        while self.fsm.has_output() {
            let out = self.fsm.take_output();
            if self.transport.write_all(&out).is_err() {
                if !self.eof_seen {
                    self.eof_seen = true;
                    self.fsm.handle_eof(now);
                }
                return;
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.transport.read(&mut buf) {
                Ok(0) => {
                    if !self.eof_seen {
                        self.eof_seen = true;
                        self.fsm.handle_eof(now);
                    }
                    return;
                }
                Ok(n) => self.fsm.handle_bytes(&buf[..n], now),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    if !self.eof_seen {
                        self.eof_seen = true;
                        self.fsm.handle_eof(now);
                    }
                    return;
                }
            }
        }
    }
}

/// A client/server FSM pair for one VP, plus the out-of-band schedule of
/// update timestamps (the wire carries no per-update time; the collector
/// stamps arrival, which here must be the scenario time for determinism).
struct SessionPair {
    vp: VpId,
    client: Endpoint,
    server: Endpoint,
    times: VecDeque<Timestamp>,
}

/// Everything the per-update pipeline stage mutates.
struct Pipeline {
    orch: Orchestrator,
    handle: std::sync::Arc<FilterHandle>,
    view: FilterView,
    reference: FilterSet,
    expected_epoch: u64,
    epoch_ledger: BTreeMap<u64, (u64, u64)>,
    primary: QueryableStorage,
    capped: RouteStore,
    restarted: Option<QueryableStorage>,
    broker: StreamBroker,
    fast: Subscription,
    lazy: Subscription,
    digest: Fnv64,
    counters: SoakCounters,
    mismatches: u64,
    stale_epochs: u64,
    trained: u64,
    mirror_residue: bool,
    fast_frames: u64,
    fast_missed: u64,
    lazy_frames: u64,
    restart_probes: usize,
    restart_diffs: Vec<String>,
}

impl Pipeline {
    fn drain_fast(&mut self) {
        drain_sub(&mut self.fast, &mut self.fast_frames, &mut self.fast_missed);
    }

    fn drain_lazy(&mut self) {
        drain_sub(
            &mut self.lazy,
            &mut self.lazy_frames,
            &mut self.counters.lazy_missed,
        );
    }

    /// Stage one decoded update through filters, stores, and broker.
    fn process(&mut self, u: BgpUpdate) {
        self.counters.received += 1;
        self.orch.observe(std::iter::once(u.clone()));
        let (keep, epoch) = self.view.judge(&u);
        if keep != self.reference.accepts(&u) {
            self.mismatches += 1;
        }
        if epoch != self.expected_epoch {
            self.stale_epochs += 1;
        }
        let slot = self.epoch_ledger.entry(epoch).or_insert((0, 0));
        if keep {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
        self.digest.write_line(&format!(
            "{} keep={} epoch={epoch}",
            update_line(&u),
            keep as u8
        ));
        if !keep {
            self.counters.dropped += 1;
            return;
        }
        self.counters.kept += 1;
        self.capped.ingest(u.clone());
        if let Some(r) = &self.restarted {
            r.handle().write().ingest(u.clone());
        }
        self.broker.publish_always(&u);
        self.counters.published += 1;
        self.primary.store(StoredUpdate { update: u });
        self.drain_fast();
    }

    /// Regime shift: drain the lazy subscriber, retrain on the mirror,
    /// publish a new filter epoch, and roll the reference forward.
    fn regime_shift(&mut self, at_ms: u64, first: bool) {
        self.drain_lazy();
        let mirror = self.orch.mirror_len() as u64;
        let refresh = self
            .orch
            .force_refresh(Timestamp::from_millis(at_ms), first);
        self.trained += mirror;
        if self.orch.mirror_len() != 0 {
            self.mirror_residue = true;
        }
        self.reference = self.orch.filters().clone();
        let compiled = self.handle.compile_next(&self.reference);
        self.expected_epoch = compiled.epoch();
        self.handle.publish(compiled);
        self.counters.regimes += 1;
        self.digest.write_line(&format!(
            "regime at={at_ms} refresh={refresh:?} epoch={} anchors={} rules={}",
            self.expected_epoch,
            self.orch.anchors().len(),
            self.reference.num_rules(),
        ));
    }

    /// Crash-restart fork: seal the primary's tail, reload a fresh store
    /// from the segment directory, and diff the full query matrix.
    fn fork_restart(&mut self, dir: &std::path::Path, world: &World, store_cfg: StoreConfig) {
        self.primary.flush();
        let fresh = QueryableStorage::new(store_cfg);
        let loaded = match fresh.handle().write().load_dir(dir) {
            Ok(n) => n,
            Err(e) => {
                self.restart_diffs.push(format!("load_dir failed: {e}"));
                return;
            }
        };
        self.digest.write_line(&format!("restart loaded={loaded}"));
        let (probes, diffs) = compare_stores(&self.primary.handle(), &fresh.handle(), world);
        self.restart_probes += probes;
        self.restart_diffs.extend(diffs);
        self.restarted = Some(fresh);
    }
}

/// The day's BMP entrance: one session carrying the last `bmp_vps` VPs
/// as monitored peers, over the same virtual clock as the BGP pairs.
struct BmpSide {
    feed: BmpFeed,
    client: SimTransport,
    server: SimTransport,
    fsm: BmpFsm,
    frames_sent: u64,
    close: Option<BmpCloseReason>,
}

impl BmpSide {
    /// Reads everything pending off the server half, ticks the FSM, and
    /// stages demuxed updates through the shared pipeline — timestamps
    /// come from the per-peer headers, not the harness clock.
    fn drain(&mut self, now: u64, pl: &mut Pipeline) {
        let mut buf = [0u8; 4096];
        loop {
            match self.server.read(&mut buf) {
                Ok(0) => {
                    self.fsm.handle_eof(now);
                    break;
                }
                Ok(n) => self.fsm.handle_bytes(&buf[..n], now),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        self.fsm.tick(now);
        while let Some(ev) = self.fsm.poll_event() {
            match ev {
                BmpEvent::Update { vp, update, ts_ms } => {
                    for u in update.to_domain(vp, Timestamp::from_millis(ts_ms)) {
                        pl.process(u);
                    }
                }
                BmpEvent::Closed(r) => self.close = Some(r),
                _ => {}
            }
        }
    }
}

fn drain_sub(sub: &mut Subscription, frames: &mut u64, missed: &mut u64) {
    loop {
        match sub.poll_next() {
            Delivery::Frame(f) => match &f.payload {
                FramePayload::Update(_) => *frames += 1,
                FramePayload::Gap { missed: m } => *missed += m,
                FramePayload::Eos { .. } => {}
            },
            Delivery::Gap(f) => {
                if let FramePayload::Gap { missed: m } = &f.payload {
                    *missed += m;
                }
            }
            Delivery::Overrun { missed: m } => *missed += m,
            Delivery::Pending | Delivery::Closed => return,
        }
    }
}

/// The query matrix a restarted store must answer identically. Mirrors
/// the store-equivalence suite: `/store/stats` is deliberately absent
/// (sealed/resident counters reflect process history, not route data).
fn request_matrix(world: &World, latest_ms: u64) -> Vec<String> {
    let mid = latest_ms / 2;
    let mut targets = vec![
        "/vps".to_string(),
        format!("/updates?from=0&to={latest_ms}&limit=10000000"),
        format!(
            "/updates?prefix={}&join=covered&to={latest_ms}",
            world.prefix(1)
        ),
        format!("/mrt/rib?at={mid}"),
        format!("/origin?asn={}", world.origin(0)),
    ];
    for q in [0, world.n_prefixes / 3, world.n_prefixes - 1] {
        let p = world.prefix(q);
        targets.push(format!("/routes?prefix={p}&match=lpm"));
        targets.push(format!("/routes?prefix={p}&match=exact&at={mid}"));
    }
    for vp in world.vps() {
        let asn = vp.asn.0;
        targets.push(format!("/rib?vp={asn}&at={mid}"));
        targets.push(format!("/rib?vp={asn}"));
        targets.push(format!("/mrt/updates?vp={asn}"));
    }
    targets
}

fn get(store: &SharedStore, target: &str) -> crate::query::Response {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let params = query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|p| {
            let (k, v) = p.split_once('=').unwrap_or((p, ""));
            (k.to_string(), v.to_string())
        })
        .collect();
    let req = Request {
        method: "GET".to_string(),
        path: path.to_string(),
        params,
        headers: Vec::new(),
    };
    route(&req, store)
}

/// Probes both stores with the full matrix; returns (probes, diffs).
fn compare_stores(a: &SharedStore, b: &SharedStore, world: &World) -> (usize, Vec<String>) {
    let latest = a.read().latest_time().as_millis();
    let targets = request_matrix(world, latest);
    let probes = targets.len();
    let mut diffs = Vec::new();
    for target in targets {
        let ra = get(a, &target);
        let rb = get(b, &target);
        if ra.status != 200 {
            diffs.push(format!("{target}: status {}", ra.status));
        } else if ra.status != rb.status || ra.body != rb.body {
            diffs.push(format!("{target}: responses diverge"));
        }
    }
    (probes, diffs)
}

fn store_cfg(mem_cap_bytes: u64) -> StoreConfig {
    StoreConfig {
        shard_width_ms: 60_000,
        snapshot_every_shards: 4,
        mem_cap_bytes,
    }
}

/// Ticks and pumps both sides of every pair until no output is pending,
/// then drains session events, counting failures and keepalives.
fn settle(
    pairs: &mut [SessionPair],
    now: u64,
    shutting_down: bool,
    failures: &mut u64,
    keepalives: &mut u64,
    decoded: &mut Vec<(usize, UpdateMessage)>,
) {
    for (i, pair) in pairs.iter_mut().enumerate() {
        pair.client.fsm.tick(now);
        pair.server.fsm.tick(now);
        loop {
            pair.client.pump(now);
            pair.server.pump(now);
            if !pair.client.fsm.has_output() && !pair.server.fsm.has_output() {
                break;
            }
        }
        for side in [&mut pair.client, &mut pair.server] {
            while let Some(ev) = side.fsm.poll_event() {
                match ev {
                    SessionEvent::Update(msg) => decoded.push((i, msg)),
                    SessionEvent::KeepaliveReceived => *keepalives += 1,
                    SessionEvent::KeepaliveSent | SessionEvent::Established { .. } => {}
                    SessionEvent::NotificationSent { .. } | SessionEvent::Closed(_) => {
                        if !shutting_down {
                            *failures += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Runs one deterministic soak day and reports digest + invariants.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let scenario = cfg.scenario();
    let world = scenario.world;
    let mut boundaries: Vec<u64> = scenario.campaigns.iter().map(|c| c.start_ms).collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    // fork the restarted store mid-window of the middle campaign
    let fork_ms = scenario
        .campaigns
        .get(scenario.campaigns.len() / 2)
        .map(|c| c.start_ms + c.duration_ms / 2);

    // the last `bmp_vps` VPs enter via one BMP session; the rest get
    // their own live BGP session pair
    let bmp_vps = cfg.bmp_vps.min(cfg.n_vps);
    let bgp_vps = cfg.n_vps - bmp_vps;

    // live sessions over the simulated transport
    let clock = VirtualClock::new();
    let mut pairs: Vec<SessionPair> = (0..bgp_vps)
        .map(|i| {
            let (a, b) = sim_pair(&clock, FaultSchedule::none(), FaultSchedule::none());
            let vp = world.vp(i);
            // dual-stack days need Multiprotocol negotiated on the live
            // sessions; classic days keep the legacy capability-free OPEN
            // so their session bytes (and digests) are unchanged
            let families = if cfg.dual_stack {
                crate::types::FamilySet::ALL
            } else {
                crate::types::FamilySet::EMPTY
            };
            let client_cfg = SessionConfig {
                local_asn: vp.asn.0,
                hold_time: 240,
                router_id: Ipv4Addr::new(10, 254, (i >> 8) as u8, (i & 0xff) as u8),
                families,
                add_paths: crate::types::FamilySet::EMPTY,
            };
            let server_cfg = SessionConfig {
                local_asn: 64_512,
                hold_time: 240,
                router_id: Ipv4Addr::new(10, 255, 0, 254),
                families,
                add_paths: crate::types::FamilySet::EMPTY,
            };
            SessionPair {
                vp,
                client: Endpoint {
                    fsm: SessionFsm::new(SessionRole::Active, client_cfg),
                    transport: a,
                    eof_seen: false,
                },
                server: Endpoint {
                    fsm: SessionFsm::new(SessionRole::Passive, server_cfg),
                    transport: b,
                    eof_seen: false,
                },
                times: VecDeque::new(),
            }
        })
        .collect();

    let mut failures = 0u64;
    let mut keepalives = 0u64;
    let mut decoded: Vec<(usize, UpdateMessage)> = Vec::new();

    let now = clock.now_ms();
    for pair in &mut pairs {
        pair.client.fsm.start(now);
        pair.server.fsm.start(now);
    }
    for _ in 0..64 {
        let now = clock.now_ms();
        settle(
            &mut pairs,
            now,
            false,
            &mut failures,
            &mut keepalives,
            &mut decoded,
        );
        if pairs
            .iter()
            .all(|p| p.client.fsm.state() == SessionState::Established)
        {
            break;
        }
        clock.advance_ms(10);
    }
    let established = pairs
        .iter()
        .filter(|p| {
            p.client.fsm.state() == SessionState::Established
                && p.server.fsm.state() == SessionState::Established
        })
        .count();

    // the pipeline behind the sessions
    let handle = FilterHandle::empty();
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: cfg.ring_capacity,
        max_subscribers: 8,
    });
    let fast = broker
        .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
        .expect("fast subscriber");
    let lazy = broker
        .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
        .expect("lazy subscriber");
    let mut primary = QueryableStorage::new(store_cfg(0));
    if let Some(dir) = &cfg.data_dir {
        primary = primary.persist_to(dir.clone());
    }
    let mut pl = Pipeline {
        orch: Orchestrator::new(
            OrchestratorConfig {
                mirror_cap: cfg.mirror_cap,
                ..OrchestratorConfig::default()
            },
            world.vps(),
            HashMap::new(),
        ),
        view: handle.view(),
        handle,
        reference: FilterSet::default(),
        expected_epoch: 0,
        epoch_ledger: BTreeMap::new(),
        primary,
        capped: RouteStore::new(store_cfg(cfg.capped_store_bytes)),
        restarted: None,
        broker,
        fast,
        lazy,
        digest: Fnv64::new(),
        counters: SoakCounters::default(),
        mismatches: 0,
        stale_epochs: 0,
        trained: 0,
        mirror_residue: false,
        fast_frames: 0,
        fast_missed: 0,
        lazy_frames: 0,
        restart_probes: 0,
        restart_diffs: Vec::new(),
    };
    pl.counters.keepalives = keepalives;
    pl.digest.write_line(&format!(
        "soak seed={} vps={} prefixes={} campaigns={}",
        cfg.seed,
        cfg.n_vps,
        cfg.n_prefixes,
        cfg.campaigns.len()
    ));

    // bring up the BMP session: Initiation, then one Peer Up per BMP VP
    // (registration order = demux order). All of this — including the
    // extra digest lines — only exists when bmp_vps > 0, so the classic
    // all-BGP digests are untouched.
    let mut bmp = (bmp_vps > 0).then(|| {
        let (client, server) = sim_pair(&clock, FaultSchedule::none(), FaultSchedule::none());
        let vps: Vec<VpId> = (bgp_vps..cfg.n_vps).map(|i| world.vp(i)).collect();
        BmpSide {
            feed: BmpFeed::new(&vps),
            client,
            server,
            fsm: BmpFsm::new(BmpSessionConfig::default(), clock.now_ms()),
            frames_sent: 0,
            close: None,
        }
    });
    if let Some(side) = &mut bmp {
        let now = clock.now_ms();
        let _ = side
            .client
            .write_all(&BmpFeed::initiation_frame("soak-bmp"));
        for f in side.feed.peer_up_frames(now) {
            let _ = side.client.write_all(&f);
        }
        side.drain(now, &mut pl);
        pl.digest.write_line(&format!(
            "bmp peers={} registered={}",
            bmp_vps,
            side.fsm.peer_count()
        ));
    }

    // the day itself
    let mut engine = ScenarioEngine::new(&scenario);
    let mut next_boundary = 0usize;
    let mut forked = false;
    for item in engine.by_ref() {
        let t = item.update.time.as_millis();
        while next_boundary < boundaries.len() && t >= boundaries[next_boundary] {
            pl.regime_shift(boundaries[next_boundary], next_boundary == 0);
            next_boundary += 1;
        }
        if !forked && fork_ms.is_some_and(|f| t >= f) {
            if let Some(dir) = cfg.data_dir.clone() {
                pl.fork_restart(&dir, &world, store_cfg(0));
            }
            forked = true;
        }
        let Some(i) = world.vp_index(item.update.vp) else {
            continue;
        };
        if i >= bgp_vps {
            // a BMP-fed VP: the update rides a Route Monitoring frame,
            // its timestamp in the per-peer header
            let side = bmp.as_mut().expect("BMP side exists for BMP-fed VPs");
            let Some(frame) = side.feed.route_monitoring_frame(&item) else {
                continue;
            };
            let _ = side.client.write_all(&frame);
            side.frames_sent += 1;
            pl.counters.sent += 1;
            clock.advance_ms(2);
            side.drain(clock.now_ms(), &mut pl);
            continue;
        }
        let msg = match UpdateMessage::from_domain(&item.update) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let pair = &mut pairs[i as usize];
        pair.times.push_back(item.update.time);
        pair.client.fsm.send_update(&msg);
        pl.counters.sent += 1;
        clock.advance_ms(2);
        let now = clock.now_ms();
        settle(
            &mut pairs,
            now,
            false,
            &mut failures,
            &mut keepalives,
            &mut decoded,
        );
        for (pi, msg) in decoded.drain(..) {
            let pair = &mut pairs[pi];
            let t = pair.times.pop_front().unwrap_or(Timestamp::ZERO);
            for u in msg.to_domain(pair.vp, t) {
                pl.process(u);
            }
        }
    }

    // orderly shutdown: Termination on the BMP session, graceful close on
    // every BGP session, then the broker
    if let Some(side) = &mut bmp {
        let _ = side.client.write_all(&BmpFeed::termination_frame());
        side.client.shutdown();
        for _ in 0..16 {
            clock.advance_ms(10);
            side.drain(clock.now_ms(), &mut pl);
            if side.close.is_some() {
                break;
            }
        }
        pl.digest.write_line(&format!(
            "bmp closed={:?} frames={} monitored={}",
            side.close,
            side.frames_sent,
            side.fsm.ledger().route_monitoring
        ));
    }
    for pair in &mut pairs {
        pair.client.fsm.close_gracefully();
    }
    for _ in 0..256 {
        clock.advance_ms(10);
        let now = clock.now_ms();
        settle(
            &mut pairs,
            now,
            true,
            &mut failures,
            &mut keepalives,
            &mut decoded,
        );
        if pairs
            .iter()
            .all(|p| p.client.fsm.is_closed() && p.server.fsm.is_closed())
        {
            break;
        }
    }
    let all_closed = pairs
        .iter()
        .all(|p| p.client.fsm.is_closed() && p.server.fsm.is_closed());
    pl.broker.close();
    pl.drain_fast();
    pl.drain_lazy();
    pl.primary.flush();
    pl.counters.keepalives = keepalives;
    pl.counters.mirror_shed = pl.orch.mirror_shed();
    pl.counters.capped_shed = pl.capped.mem_stats().shed_updates as u64;

    // end-of-day restart equivalence re-check
    if let (Some(r), true) = (&pl.restarted, forked) {
        let (probes, diffs) = compare_stores(&pl.primary.handle(), &r.handle(), &world);
        pl.restart_probes += probes;
        pl.restart_diffs.extend(diffs);
    }

    let ledger: Vec<String> = pl
        .epoch_ledger
        .iter()
        .map(|(e, (k, d))| format!("{e}:{k}/{d}"))
        .collect();
    pl.digest.write_line(&format!(
        "final sent={} received={} kept={} dropped={} published={} regimes={} \
         mirror_shed={} capped_shed={} lazy_missed={} ledger=[{}]",
        pl.counters.sent,
        pl.counters.received,
        pl.counters.kept,
        pl.counters.dropped,
        pl.counters.published,
        pl.counters.regimes,
        pl.counters.mirror_shed,
        pl.counters.capped_shed,
        pl.counters.lazy_missed,
        ledger.join(",")
    ));

    let c = pl.counters;
    let primary_stats = pl.primary.handle().read().stats().updates as u64;
    let primary_shed = pl.primary.handle().read().mem_stats().shed_updates;
    let capped_kept = pl.capped.stats().updates as u64;
    let mirror_left = pl.orch.mirror_len() as u64;
    let burst = engine.check_burstiness(1_000, &BurstBand::default());
    let mut invariants = vec![
        Invariant {
            name: "sessions-stable",
            pass: established as u32 == bgp_vps && failures == 0 && all_closed,
            detail: format!(
                "established={established}/{bgp_vps} failures={failures} all_closed={all_closed}"
            ),
        },
        Invariant {
            name: "wire-delivery-complete",
            pass: c.received == c.sent,
            detail: format!("sent={} received={}", c.sent, c.received),
        },
        Invariant {
            name: "compiled-matches-reference",
            pass: pl.mismatches == 0,
            detail: format!("judged={} mismatches={}", c.received, pl.mismatches),
        },
        Invariant {
            name: "epoch-convergence",
            pass: pl.stale_epochs == 0 && c.regimes == boundaries.len() as u64,
            detail: format!(
                "regimes={} stale_epoch_judgements={} final_epoch={}",
                c.regimes, pl.stale_epochs, pl.expected_epoch
            ),
        },
        Invariant {
            name: "mirror-accounting-exact",
            pass: !pl.mirror_residue && c.received == pl.trained + mirror_left + c.mirror_shed,
            detail: format!(
                "received={} trained={} resident={} shed={}",
                c.received, pl.trained, mirror_left, c.mirror_shed
            ),
        },
        Invariant {
            name: "primary-store-exact",
            pass: pl.primary.stored() as u64 == c.kept
                && primary_stats == c.kept
                && primary_shed == 0,
            detail: format!(
                "kept={} stored={} store_stats={} shed={}",
                c.kept,
                pl.primary.stored(),
                primary_stats,
                primary_shed
            ),
        },
        Invariant {
            name: "capped-store-shed-exact",
            pass: capped_kept + c.capped_shed == c.kept,
            detail: format!(
                "kept={} retained={} shed={}",
                c.kept, capped_kept, c.capped_shed
            ),
        },
        Invariant {
            name: "broker-gap-exact",
            pass: pl.fast_frames == c.published
                && pl.fast_missed == 0
                && pl.lazy_frames + c.lazy_missed == c.published,
            detail: format!(
                "published={} fast={} fast_missed={} lazy={} lazy_missed={}",
                c.published, pl.fast_frames, pl.fast_missed, pl.lazy_frames, c.lazy_missed
            ),
        },
        Invariant {
            name: "crash-restart-equivalent",
            pass: if cfg.data_dir.is_some() {
                forked && pl.restart_probes > 0 && pl.restart_diffs.is_empty()
            } else {
                true
            },
            detail: if cfg.data_dir.is_some() {
                format!(
                    "probes={} diffs={}{}",
                    pl.restart_probes,
                    pl.restart_diffs.len(),
                    pl.restart_diffs
                        .first()
                        .map(|d| format!(" first: {d}"))
                        .unwrap_or_default()
                )
            } else {
                "skipped (no data dir)".to_string()
            },
        },
        Invariant {
            name: "background-burstiness-in-band",
            pass: burst.is_ok(),
            detail: match &burst {
                Ok(()) => {
                    let r = engine.burst_report(1_000, 8);
                    format!("iod={:.2} acf1={:.3} in band", r.iod, r.acf1())
                }
                Err(e) => e.clone(),
            },
        },
    ];
    // BMP-side exactness: clean Termination, every frame demuxed to a
    // registered peer, nothing dropped as unknown or denied
    invariants.push(match &bmp {
        None => Invariant {
            name: "bmp-ingest-exact",
            pass: true,
            detail: "skipped (no bmp vps)".to_string(),
        },
        Some(side) => {
            let ledger = side.fsm.ledger();
            Invariant {
                name: "bmp-ingest-exact",
                pass: side.close == Some(BmpCloseReason::Terminated)
                    && ledger.route_monitoring == side.frames_sent
                    && ledger.unknown_peer == 0
                    && ledger.denied_peers == 0
                    && side.fsm.peer_count() == bmp_vps as usize,
                detail: format!(
                    "close={:?} frames_sent={} monitored={} peers={} unknown={} denied={}",
                    side.close,
                    side.frames_sent,
                    ledger.route_monitoring,
                    side.fsm.peer_count(),
                    ledger.unknown_peer,
                    ledger.denied_peers
                ),
            }
        }
    });
    // ground-truth sanity rides along: every campaign must have fired
    let truths = engine.truths();
    invariants.push(Invariant {
        name: "campaigns-fired",
        pass: truths.len() == scenario.campaigns.len() && truths.iter().all(|t| t.emitted > 0),
        detail: format!(
            "campaigns={} emitted=[{}]",
            truths.len(),
            truths
                .iter()
                .map(|t| t.emitted.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    });

    SoakReport {
        digest: format!("{:016x}", pl.digest.finish()),
        counters: c,
        invariants,
    }
}
