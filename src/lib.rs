//! # GILL — redundancy-aware BGP data collection
//!
//! A from-scratch Rust reproduction of *"The Next Generation of BGP Data
//! Collection Platforms"* (ACM SIGCOMM 2024). This facade crate re-exports
//! every subsystem of the workspace under one roof:
//!
//! * [`types`] — BGP value types (prefixes, AS paths, communities, updates,
//!   RIBs).
//! * [`wire`] — RFC 4271 message codec and MRT (RFC 6396) storage format.
//! * [`topology`] — AS-topology generation with Gao–Rexford relationships
//!   and the graph features used by anchor-VP selection.
//! * [`sim`] — a C-BGP-like route-propagation simulator and event engine
//!   that synthesizes realistic BGP update streams.
//! * [`core`] — the paper's contribution: redundancy definitions,
//!   correlation groups, reconstitution power, anchor-VP selection, and
//!   filter generation.
//! * [`sampling`] — GILL's sampling scheme plus every baseline of §10.
//! * [`use_cases`] — the canonical BGP analyses used for evaluation.
//! * [`collector`] — the collection platform: per-peer BGP daemons and the
//!   orchestrator.
//! * [`bmp`] — BMP (RFC 7854) ingestion: one session carries a router's
//!   view of many monitored BGP peers into the same pipeline.
//! * [`query`] — the serving half: time-indexed route store and the
//!   looking-glass HTTP query API (bgproutes.io's role in §9).
//! * [`runtime`] — the readiness-driven session runtime: an epoll/poll
//!   reactor, timer wheel, and evented pool multiplexing thousands of
//!   BGP/BMP sessions over a small fixed worker set.
//! * [`scenario`] — seeded adversarial-workload engine: bursty background
//!   traffic plus campaign generators with ground truth, driving the
//!   full-pipeline soak harness in [`soak`].
//! * [`soak`] — the end-to-end soak: scenario → sessions → FSM → filters →
//!   store → broker → query, with continuously asserted invariants.
//!
//! ## Quickstart
//!
//! ```
//! use gill::prelude::*;
//!
//! // 1. Generate a small Internet and simulate routing events.
//! let topo = TopologyBuilder::artificial(200, 42).build();
//! let mut sim = Simulator::new(&topo);
//! let vps = topo.pick_vps(0.25, 7);
//! let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(40).seed(7));
//!
//! // 2. Run GILL's redundancy analysis and generate filters.
//! let analysis = GillAnalysis::run(&stream, &GillConfig::default());
//! let filters = analysis.filter_set();
//!
//! // 3. Filter a fresh stream: redundant updates are discarded.
//! let fresh = sim.synthesize_stream(&vps, StreamConfig::default().events(40).seed(8));
//! let kept = fresh.updates.iter().filter(|u| filters.accepts(u)).count();
//! assert!(kept <= fresh.updates.len());
//! ```

pub mod cli;
pub mod soak;

pub use as_topology as topology;
pub use bgp_sim as sim;
pub use bgp_types as types;
pub use bgp_wire as wire;
pub use gill_bmp as bmp;
pub use gill_collector as collector;
pub use gill_core as core;
pub use gill_query as query;
pub use gill_runtime as runtime;
pub use gill_scenario as scenario;
pub use gill_stream as stream;
pub use sampling;
pub use use_cases;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::core::{
        AnchorConfig, AnchorSelection, FilterSet, GillAnalysis, GillConfig, RedundancyDef,
    };
    pub use crate::sim::{EventKind, Simulator, StreamConfig, UpdateStream};
    pub use crate::topology::{AsCategory, Relationship, Topology, TopologyBuilder};
    pub use crate::types::{
        AsPath, Asn, BgpUpdate, Community, Link, Prefix, Rib, Timestamp, UpdateBuilder, UpdateKind,
        VpId,
    };
}
