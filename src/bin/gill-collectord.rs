//! `gill-collectord` — run the collection platform: accept BGP peers over
//! TCP, apply filters, archive retained updates as MRT (§8–§9).
//!
//! ```sh
//! gill-collectord --listen 127.0.0.1:1790 --filters filters.txt \
//!                 --archive collected.mrt --duration 60
//! ```
//!
//! Runs for `--duration` seconds (0 = until killed is not supported in
//! this offline build; use a large value), then drains the queue, writes
//! the archive, and prints the session counters.
//!
//! With `--stream-addr HOST:PORT` the collector also serves the live
//! streaming API: every filter-accepted update is teed into a broadcast
//! ring and fanned out to `curl -N` subscribers on `/stream/updates`
//! (RIS-Live-style JSON frames), with `/stream/stats` reporting broker
//! counters. The looking-glass endpoints (`/vps`, `/routes`, …) on the
//! same socket answer from a store fed live by the collection drain.
//!
//! With `--bmp-addr HOST:PORT` (or a full `--bmp-config FILE`, see
//! `gill::bmp::BmpConfig`) the collector also accepts BMP (RFC 7854)
//! routers: one TCP session per router, each carrying many monitored
//! peers, demuxed into per-peer VPs and fed through the *same* filter /
//! archive / stream pipeline as the BGP sessions.
//!
//! `--runtime evented` swaps the thread-per-session runtime for the
//! readiness-driven one (`gill::runtime`): `--workers N` event-loop
//! threads multiplex every BGP and BMP session over epoll, feeding the
//! identical pipeline. `--runtime threaded` (the default) remains the
//! reference implementation. `--max-sessions N` caps concurrent BGP
//! sessions in both runtimes (over-capacity peers get NOTIFICATION
//! Cease at accept).

use gill::bmp::{BmpConfig, BmpPool, ListenerConfig};
use gill::collector::{
    DaemonConfig, DaemonPool, MrtStorage, Orchestrator, OrchestratorConfig, Storage, StoredUpdate,
};
use gill::core::FilterSet;
use gill::query::{QueryableStorage, RouteStore, ServerConfig};
use gill::runtime::{EventedPool, RuntimeConfig};
use gill::stream::{serve_streaming, BrokerConfig, StreamBroker};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Archives to MRT and (when serving) mirrors every retained update into
/// the looking-glass route store, so `/vps` and `/routes` answer live.
struct TeeStorage {
    archive: MrtStorage<std::io::BufWriter<std::fs::File>>,
    serving: Option<QueryableStorage>,
}

impl Storage for TeeStorage {
    fn store(&mut self, rec: StoredUpdate) {
        if let Some(s) = &mut self.serving {
            s.store(StoredUpdate {
                update: rec.update.clone(),
            });
        }
        self.archive.store(rec);
    }

    fn stored(&self) -> usize {
        self.archive.stored()
    }

    fn flush(&mut self) {
        self.archive.flush();
        if let Some(s) = &mut self.serving {
            s.flush();
        }
    }
}

fn run() -> Result<(), String> {
    let args = gill::cli::Args::parse()?;
    let listen = args
        .optional("listen")
        .unwrap_or_else(|| "127.0.0.1:1790".into());
    let duration: u64 = args.num("duration", 60)?;
    let queue: usize = args.num("queue", 65536)?;
    let local_asn: u32 = args.num("local-asn", 65535)?;
    let max_sessions: usize = args.num("max-sessions", 4096)?;
    let runtime = args
        .optional("runtime")
        .unwrap_or_else(|| "threaded".into());
    if runtime != "threaded" && runtime != "evented" {
        return Err(format!(
            "--runtime must be threaded or evented, not {runtime}"
        ));
    }
    let workers: usize = args.num("workers", 4)?;
    let archive = PathBuf::from(
        args.optional("archive")
            .unwrap_or_else(|| "collected.mrt".into()),
    );
    let filters = match args.optional("filters") {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|e| e.to_string())?;
            let f = FilterSet::from_text(&text)?;
            eprintln!("loaded {} drop rules from {p}", f.num_rules());
            f
        }
        None => FilterSet::default(),
    };

    // --bmp-addr / --bmp-config: accept BMP routers into the same pipeline.
    // A bare --bmp-addr is sugar for a single allow-all listener; with
    // --bmp-config the flag appends one more listener to the parsed set.
    let bmp_cfg = match (args.optional("bmp-config"), args.optional("bmp-addr")) {
        (None, None) => None,
        (file, addr) => {
            let mut cfg = match file {
                Some(p) => {
                    let text = std::fs::read_to_string(&p).map_err(|e| format!("{p}: {e}"))?;
                    BmpConfig::parse(&text)?
                }
                None => BmpConfig::default(),
            };
            if let Some(bind) = addr {
                cfg.listeners.push(ListenerConfig {
                    bind,
                    idle_timeout_ms: 0,
                });
            }
            Some(cfg)
        }
    };

    // --stream-addr HOST:PORT: tee filter-accepted updates into a broadcast
    // broker and serve /stream/updates + /stream/stats alongside collection.
    let stream = match args.optional("stream-addr") {
        Some(addr) => {
            let broker_defaults = BrokerConfig::default();
            let broker = StreamBroker::new(BrokerConfig {
                ring_capacity: args.num("ring-capacity", broker_defaults.ring_capacity)?,
                max_subscribers: args.num("max-subscribers", broker_defaults.max_subscribers)?,
            });
            let store = Arc::new(parking_lot::RwLock::new(RouteStore::default()));
            let server = serve_streaming(
                &addr,
                ServerConfig::default(),
                store.clone(),
                None,
                broker.clone(),
            )
            .map_err(|e| e.to_string())?;
            eprintln!("streaming on http://{}/stream/updates", server.local_addr());
            Some((broker, server, store))
        }
        None => None,
    };
    let sink = stream
        .as_ref()
        .map(|(b, _, _)| Arc::new(b.publisher()) as Arc<dyn gill::collector::UpdateSink>);

    let daemon_cfg = DaemonConfig {
        local_asn,
        queue_capacity: queue,
        max_sessions,
        ..DaemonConfig::default()
    };
    let retrain: u64 = args.num("retrain-interval", 0)?;

    // boot the chosen runtime; from here on both expose the same shared
    // pipeline (`DaemonPool`), so the drain/report tail is common
    let mut evented: Option<EventedPool> = None;
    let mut threaded: Option<DaemonPool> = None;
    let mut bmp: Option<BmpPool> = None;
    if runtime == "evented" {
        let ep = EventedPool::start(
            daemon_cfg,
            RuntimeConfig {
                workers,
                bgp_addr: Some(listen.clone()),
                bmp: bmp_cfg.clone(),
            },
            sink,
        )
        .map_err(|e| e.to_string())?;
        for a in ep.bmp_addrs() {
            eprintln!("bmp listening on {a}");
        }
        eprintln!(
            "collector AS{local_asn} (evented, {workers} workers) listening on {} for {duration}s",
            ep.bgp_addr().expect("bgp listener")
        );
        evented = Some(ep);
    } else {
        let pool =
            DaemonPool::start_with_sink(&listen, daemon_cfg, sink).map_err(|e| e.to_string())?;
        if let Some(cfg) = &bmp_cfg {
            let bp = BmpPool::start(cfg, pool.session_ctx()).map_err(|e| e.to_string())?;
            for a in bp.local_addrs() {
                eprintln!("bmp listening on {a}");
            }
            bmp = Some(bp);
        }
        eprintln!(
            "collector AS{local_asn} listening on {} for {duration}s",
            pool.local_addr()
        );
        threaded = Some(pool);
    }
    {
        let pool = evented
            .as_mut()
            .map(|e| e.pool_mut())
            .or(threaded.as_mut())
            .expect("a runtime is up");
        pool.install_filters(filters);
        // --retrain-interval SECS: attach a live orchestrator that mirrors
        // the unfiltered stream and publishes a fresh filter epoch
        // periodically (0 = no retraining; --filters stays in force)
        if retrain > 0 {
            let orch = Orchestrator::new(OrchestratorConfig::default(), Vec::new(), HashMap::new());
            pool.attach_orchestrator(orch, Duration::from_secs(retrain))
                .map_err(|e| e.to_string())?;
            eprintln!("orchestrator attached, retraining every {retrain}s");
        }
    }

    let file = std::fs::File::create(&archive).map_err(|e| e.to_string())?;
    let storage = TeeStorage {
        archive: MrtStorage::new(std::io::BufWriter::new(file), local_asn),
        serving: stream
            .as_ref()
            .map(|(_, _, store)| QueryableStorage::with_store(store.clone())),
    };
    // drain concurrently for the configured duration
    let storage = std::thread::scope(|s| {
        let pool_ref = evented
            .as_ref()
            .map(|e| e.pool())
            .or(threaded.as_ref())
            .expect("a runtime is up");
        let drain = s.spawn(move || {
            let mut st = storage;
            pool_ref.drain_into(&mut st);
            st
        });
        std::thread::sleep(Duration::from_secs(duration));
        if let Some(bp) = &bmp {
            bp.request_stop();
        }
        pool_ref.request_stop();
        drain.join().expect("storage thread")
    });

    let load = |c: &std::sync::atomic::AtomicUsize| c.load(std::sync::atomic::Ordering::Relaxed);
    // wind the runtime down (sessions close gracefully, threads join
    // with bounded deadlines) and report its counters
    if let Some(mut ep) = evented.take() {
        ep.stop();
        let t = ep.totals();
        println!(
            "evented runtime: {workers} workers | accepted {} | shed-at-accept {} | \
             ready-events {} | timer-fires {} | wakes {} | still-registered {}",
            t.accepted, t.accept_shed, t.ready_events, t.timer_fires, t.wakes, t.registered,
        );
        let b = ep.bmp_stats();
        if !ep.bmp_addrs().is_empty() {
            println!(
                "bmp sessions {} opened / {} closed | peers {} up / {} down | \
                 updates {} | unknown-peer {} | denied {} | accept-rejected {}",
                load(&b.sessions_opened),
                load(&b.sessions_closed),
                load(&b.peers_up),
                load(&b.peers_down),
                load(&b.updates),
                load(&b.unknown_peer),
                load(&b.peers_denied),
                load(&b.accept_rejected),
            );
        }
        let stats = ep.pool().stats();
        println!(
            "received {} | filtered {} | retained {} | lost {} | filter epoch {}",
            load(&stats.received),
            load(&stats.filtered),
            load(&stats.retained),
            load(&stats.lost),
            stats
                .filter_epoch
                .load(std::sync::atomic::Ordering::Relaxed),
        );
        if let Some((broker, mut server, _)) = stream {
            broker.close();
            println!(
                "streamed {} | shed {} | peak subscribers seen {}",
                load(&stats.stream_published),
                load(&stats.stream_shed),
                load(&stats.stream_subscribers),
            );
            server.stop();
        }
    } else if let Some(mut pool) = threaded.take() {
        pool.stop();
        let stats = pool.stats();
        println!(
            "received {} | filtered {} | retained {} | lost {} | filter epoch {}",
            load(&stats.received),
            load(&stats.filtered),
            load(&stats.retained),
            load(&stats.lost),
            stats
                .filter_epoch
                .load(std::sync::atomic::Ordering::Relaxed),
        );
        if let Some(mut bp) = bmp {
            let b = bp.stats();
            println!(
                "bmp sessions {} opened / {} closed | peers {} up / {} down | \
                 updates {} | unknown-peer {} | denied {}",
                load(&b.sessions_opened),
                load(&b.sessions_closed),
                load(&b.peers_up),
                load(&b.peers_down),
                load(&b.updates),
                load(&b.unknown_peer),
                load(&b.peers_denied),
            );
            bp.stop();
        }
        if let Some((broker, mut server, _)) = stream {
            broker.close();
            println!(
                "streamed {} | shed {} | peak subscribers seen {}",
                load(&stats.stream_published),
                load(&stats.stream_shed),
                load(&stats.stream_subscribers),
            );
            server.stop();
        }
    }
    let written = storage.stored();
    storage.archive.into_inner().map_err(|e| e.to_string())?;
    println!("archived {written} records to {}", archive.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-collectord [--listen ADDR] [--filters filters.txt] \
                 [--runtime threaded|evented] [--workers N] [--max-sessions N] \
                 [--retrain-interval SECS] [--archive out.mrt] [--duration SECS] \
                 [--queue N] [--local-asn N] [--stream-addr HOST:PORT] \
                 [--ring-capacity FRAMES] [--max-subscribers N] \
                 [--bmp-addr HOST:PORT] [--bmp-config FILE]"
            );
            ExitCode::FAILURE
        }
    }
}
