//! `gill-collectord` — run the collection platform: accept BGP peers over
//! TCP, apply filters, archive retained updates as MRT (§8–§9).
//!
//! ```sh
//! gill-collectord --listen 127.0.0.1:1790 --filters filters.txt \
//!                 --archive collected.mrt --duration 60
//! ```
//!
//! Runs for `--duration` seconds (0 = until killed is not supported in
//! this offline build; use a large value), then drains the queue, writes
//! the archive, and prints the session counters.

use gill::collector::{
    DaemonConfig, DaemonPool, MrtStorage, Orchestrator, OrchestratorConfig, Storage,
};
use gill::core::FilterSet;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn run() -> Result<(), String> {
    let args = gill::cli::Args::parse()?;
    let listen = args
        .optional("listen")
        .unwrap_or_else(|| "127.0.0.1:1790".into());
    let duration: u64 = args.num("duration", 60)?;
    let queue: usize = args.num("queue", 65536)?;
    let local_asn: u32 = args.num("local-asn", 65535)?;
    let archive = PathBuf::from(
        args.optional("archive")
            .unwrap_or_else(|| "collected.mrt".into()),
    );
    let filters = match args.optional("filters") {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|e| e.to_string())?;
            let f = FilterSet::from_text(&text)?;
            eprintln!("loaded {} drop rules from {p}", f.num_rules());
            f
        }
        None => FilterSet::default(),
    };

    let mut pool = DaemonPool::start(
        &listen,
        DaemonConfig {
            local_asn,
            queue_capacity: queue,
            ..DaemonConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    pool.install_filters(filters);
    // --retrain-interval SECS: attach a live orchestrator that mirrors the
    // unfiltered stream and publishes a fresh filter epoch periodically
    // (0 = no retraining; --filters then stays in force unchanged)
    let retrain: u64 = args.num("retrain-interval", 0)?;
    if retrain > 0 {
        let orch = Orchestrator::new(OrchestratorConfig::default(), Vec::new(), HashMap::new());
        pool.attach_orchestrator(orch, Duration::from_secs(retrain))
            .map_err(|e| e.to_string())?;
        eprintln!("orchestrator attached, retraining every {retrain}s");
    }
    eprintln!(
        "collector AS{local_asn} listening on {} for {duration}s",
        pool.local_addr()
    );

    let file = std::fs::File::create(&archive).map_err(|e| e.to_string())?;
    let storage = MrtStorage::new(std::io::BufWriter::new(file), local_asn);
    // drain concurrently for the configured duration
    let storage = std::thread::scope(|s| {
        let pool_ref = &pool;
        let drain = s.spawn(move || {
            let mut st = storage;
            pool_ref.drain_into(&mut st);
            st
        });
        std::thread::sleep(Duration::from_secs(duration));
        pool_ref.request_stop();
        drain.join().expect("storage thread")
    });
    pool.stop();

    let stats = pool.stats();
    let load = |c: &std::sync::atomic::AtomicUsize| c.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "received {} | filtered {} | retained {} | lost {} | filter epoch {}",
        load(&stats.received),
        load(&stats.filtered),
        load(&stats.retained),
        load(&stats.lost),
        stats
            .filter_epoch
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    let written = storage.stored();
    storage.into_inner().map_err(|e| e.to_string())?;
    println!("archived {written} records to {}", archive.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-collectord [--listen ADDR] [--filters filters.txt] \
                 [--retrain-interval SECS] [--archive out.mrt] [--duration SECS] \
                 [--queue N] [--local-asn N]"
            );
            ExitCode::FAILURE
        }
    }
}
