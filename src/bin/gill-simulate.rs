//! `gill-simulate` — generate a mini Internet and a BGP collection window,
//! archived as MRT files.
//!
//! ```sh
//! gill-simulate --ases 500 --coverage 0.3 --events 100 --seed 1 \
//!               --out updates.mrt --ribs ribs.mrt
//! ```

use gill::cli::{write_ribs_mrt, write_updates_mrt, Args};
use gill::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let ases: usize = args.num("ases", 500)?;
    let coverage: f64 = args.num("coverage", 0.3)?;
    let events: usize = args.num("events", 100)?;
    let seed: u64 = args.num("seed", 0)?;
    let duration: u64 = args.num("duration", 3600)?;
    let out = PathBuf::from(args.required("out")?);
    let ribs_out = args.optional("ribs").map(PathBuf::from);

    eprintln!("generating {ases}-AS topology (seed {seed})...");
    let topo = TopologyBuilder::artificial(ases, seed).build();
    let vps = topo.pick_vps(coverage, seed.wrapping_add(1));
    eprintln!(
        "topology: {} links, avg degree {:.1}; {} VPs",
        topo.num_links(),
        topo.avg_degree(),
        vps.len()
    );
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(
        &vps,
        StreamConfig::default()
            .events(events)
            .duration_secs(duration)
            .seed(seed),
    );
    eprintln!(
        "synthesized {} events → {} updates over {duration}s",
        stream.events.len(),
        stream.updates.len()
    );
    let n = write_updates_mrt(&out, &stream.updates).map_err(|e| e.to_string())?;
    println!("wrote {n} MRT update records to {}", out.display());
    if let Some(p) = ribs_out {
        let recs =
            write_ribs_mrt(&p, &stream.initial_ribs, Timestamp::ZERO).map_err(|e| e.to_string())?;
        println!("wrote {recs} TABLE_DUMP_V2 records to {}", p.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-simulate --out updates.mrt [--ribs ribs.mrt] [--ases N] \
                 [--coverage F] [--events N] [--duration SECS] [--seed N]"
            );
            ExitCode::FAILURE
        }
    }
}
