//! `gill-analyze` — run GILL's sampling algorithms (components #1 and #2)
//! over an archived collection window and emit the artifacts the platform
//! publishes (§9): the filter file and the anchor list.
//!
//! ```sh
//! gill-analyze --updates updates.mrt --ribs ribs.mrt --filters filters.txt
//! ```

use gill::cli::{read_ribs_mrt, read_updates_mrt, Args};
use gill::core::{GillAnalysis, GillConfig};
use gill::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let updates_path = PathBuf::from(args.required("updates")?);
    let ribs_path = args.optional("ribs").map(PathBuf::from);
    let filters_path = args.optional("filters").map(PathBuf::from);
    let target: f64 = args.num("rp-target", gill::core::DEFAULT_RECONSTITUTION_TARGET)?;

    let mut updates = read_updates_mrt(&updates_path).map_err(|e| e.to_string())?;
    updates.sort_by_key(|u| (u.time, u.vp, u.prefix));
    let initial_ribs = match &ribs_path {
        Some(p) => read_ribs_mrt(p).map_err(|e| e.to_string())?,
        None => HashMap::new(),
    };
    let mut vps: Vec<VpId> = updates.iter().map(|u| u.vp).collect();
    vps.sort_unstable();
    vps.dedup();
    eprintln!(
        "loaded {} updates from {} VPs ({} RIBs)",
        updates.len(),
        vps.len(),
        initial_ribs.len()
    );

    let cfg = GillConfig {
        reconstitution_target: target,
        ..GillConfig::default()
    };
    let analysis = GillAnalysis::run_on(&updates, &initial_ribs, &vps, &HashMap::new(), &cfg);

    println!(
        "component #1: {:.1}% of updates redundant (RP target {target})",
        analysis.component1.redundant_fraction() * 100.0
    );
    println!(
        "component #2: {} anchor VPs (from {} events)",
        analysis.component2.anchors.len(),
        analysis.component2.events_used
    );
    println!(
        "overall retention: {:.1}% of the window",
        analysis.retained_fraction() * 100.0
    );
    let filters = analysis.filter_set();
    println!(
        "filters: {} drop rules + {} anchors",
        filters.num_rules(),
        analysis.component2.anchors.len()
    );
    if let Some(p) = filters_path {
        let text = filters.to_text().map_err(|e| e.to_string())?;
        std::fs::write(&p, text).map_err(|e| e.to_string())?;
        println!("wrote filter file to {}", p.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-analyze --updates updates.mrt [--ribs ribs.mrt] \
                 [--filters filters.txt] [--rp-target F]"
            );
            ExitCode::FAILURE
        }
    }
}
