//! `gill-queryd` — the looking-glass query daemon (the serving half of
//! GILL: §9's bgproutes.io interface over a local store).
//!
//! Loads an MRT update archive into the time-indexed route store and
//! serves the JSON + raw-MRT query API over HTTP, plus the live streaming
//! endpoints (`/stream/updates`, `/stream/stats`):
//!
//! ```sh
//! gill-queryd --updates updates.mrt --addr 127.0.0.1:8480
//! curl 'http://127.0.0.1:8480/routes?prefix=10.0.0.0/8&match=lpm'
//! curl -N 'http://127.0.0.1:8480/stream/updates?prefix=10.0.0.0/8'
//! ```
//!
//! `--replay-stream` re-publishes the loaded archive into the broker (at
//! `--stream-interval-ms` per update) so the streaming endpoints carry
//! data without a live collector attached; without it the broker is idle
//! and subscribers simply wait.

use gill::cli::{read_updates_mrt, Args};
use gill::core::{FilterHandle, FilterSet};
use gill::query::{RouteStore, ServerConfig, StoreConfig};
use gill::stream::{serve_streaming, BrokerConfig, StreamBroker};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let updates_path = args.optional("updates").map(PathBuf::from);
    let data_dir = args.optional("data-dir").map(PathBuf::from);
    if updates_path.is_none() && data_dir.is_none() {
        return Err("need --updates and/or --data-dir".to_string());
    }
    let addr = args
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:8480".to_string());

    let cfg = StoreConfig {
        shard_width_ms: args.num("shard-ms", StoreConfig::default().shard_width_ms)?,
        snapshot_every_shards: args.num(
            "snapshot-shards",
            StoreConfig::default().snapshot_every_shards,
        )?,
        mem_cap_bytes: args.num("store-mem-cap", 0)?,
    };
    let mut store = RouteStore::new(cfg);

    // Cold start: replay sealed segments first, then ingest any fresh MRT
    // on top, then seal the new tail so the whole store is durable again.
    if let Some(dir) = &data_dir {
        if dir.exists() {
            let replayed = store.load_dir(dir).map_err(|e| e.to_string())?;
            if replayed > 0 {
                println!("replayed {replayed} updates from {}", dir.display());
            }
        }
    }
    let updates = match &updates_path {
        Some(p) => read_updates_mrt(p).map_err(|e| e.to_string())?,
        None => Vec::new(),
    };
    let n = updates.len();
    for u in &updates {
        store.ingest(u.clone());
    }
    if let Some(dir) = &data_dir {
        if let Some(path) = store.seal_all_into(dir).map_err(|e| e.to_string())? {
            println!("sealed new updates to {}", path.display());
        }
    }
    let stats = store.stats();
    println!(
        "loaded {n} updates: {} VPs, {} shards, {} snapshots, {} live prefixes",
        stats.vps, stats.shards, stats.snapshots, stats.live_prefixes
    );
    let m = store.mem_stats();
    println!(
        "store: ~{:.1} MiB resident, dedup {:.1}x over {} attr entries, \
         {} sealed segments ({} updates), {} shed",
        m.bytes_resident as f64 / (1024.0 * 1024.0),
        m.dedup_ratio,
        m.arena_paths + m.arena_comm_sets + m.arena_link_sets,
        m.sealed_segments,
        m.sealed_updates,
        m.shed_updates
    );

    // --filters FILE: publish a §9 rule file over /filters (JSON + text)
    let filters = match args.optional("filters") {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|e| e.to_string())?;
            let fs = FilterSet::from_text(&text)?;
            println!("publishing {} drop rules from {p}", fs.num_rules());
            Some(FilterHandle::new(&fs))
        }
        None => None,
    };

    let server_cfg = ServerConfig {
        workers: args.num("workers", ServerConfig::default().workers)?,
        ..ServerConfig::default()
    };
    let broker_defaults = BrokerConfig::default();
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: args.num("ring-capacity", broker_defaults.ring_capacity)?,
        max_subscribers: args.num("max-subscribers", broker_defaults.max_subscribers)?,
    });
    let replay_stream = matches!(
        args.optional("replay-stream").as_deref(),
        Some("true") | Some("1") | Some("yes")
    );
    let interval_ms: u64 = args.num("stream-interval-ms", 1)?;

    let store = Arc::new(parking_lot::RwLock::new(store));
    let server = serve_streaming(&addr, server_cfg, store, filters, broker.clone())
        .map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.local_addr());

    if replay_stream {
        println!("replaying {n} updates into /stream/updates");
        std::thread::spawn(move || {
            for u in &updates {
                broker.publish_always(u);
                if interval_ms > 0 {
                    std::thread::sleep(Duration::from_millis(interval_ms));
                }
            }
            broker.close();
        });
    }
    // The server owns its threads; park the main thread until killed.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-queryd [--updates updates.mrt] [--data-dir dir] \
                 [--addr host:port] [--filters filters.txt] [--workers n] \
                 [--shard-ms ms] [--snapshot-shards n] [--store-mem-cap bytes] \
                 [--ring-capacity frames] [--max-subscribers n] \
                 [--replay-stream true] [--stream-interval-ms ms]"
            );
            ExitCode::FAILURE
        }
    }
}
