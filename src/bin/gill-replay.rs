//! `gill-replay` — apply a published filter file to an archived MRT stream
//! offline: what users with limited resources do with GILL's artifacts
//! (§9 — "help users find which bits of data they should process").
//!
//! ```sh
//! gill-replay --updates updates.mrt --filters filters.txt --out kept.mrt
//! ```

use gill::cli::{read_updates_mrt, write_updates_mrt, Args};
use gill::core::FilterSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let updates_path = PathBuf::from(args.required("updates")?);
    let filters_path = PathBuf::from(args.required("filters")?);
    let out = args.optional("out").map(PathBuf::from);

    let updates = read_updates_mrt(&updates_path).map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(&filters_path).map_err(|e| e.to_string())?;
    let filters = FilterSet::from_text(&text)?;
    let kept: Vec<_> = updates
        .iter()
        .filter(|u| filters.accepts(u))
        .cloned()
        .collect();
    println!(
        "{} of {} updates pass the filters ({:.1}% discarded)",
        kept.len(),
        updates.len(),
        (1.0 - kept.len() as f64 / updates.len().max(1) as f64) * 100.0
    );
    if let Some(p) = out {
        let n = write_updates_mrt(&p, &kept).map_err(|e| e.to_string())?;
        println!("wrote {n} records to {}", p.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-replay --updates updates.mrt --filters filters.txt [--out kept.mrt]"
            );
            ExitCode::FAILURE
        }
    }
}
