//! `gill-replay` — apply a published filter file to an archived MRT stream
//! offline: what users with limited resources do with GILL's artifacts
//! (§9 — "help users find which bits of data they should process").
//!
//! ```sh
//! gill-replay --updates updates.mrt --filters filters.txt --out kept.mrt
//! ```
//!
//! With `--serve`, the (optionally filtered) stream is loaded into the
//! time-indexed route store and served over the looking-glass HTTP API —
//! including the live `/stream/updates` endpoint, which replays the archive
//! through the broadcast ring so `curl -N` clients see a RIS-Live-style
//! feed:
//!
//! ```sh
//! gill-replay --updates updates.mrt --serve 127.0.0.1:8480 \
//!     --stream-repeat 100 --stream-interval-ms 1
//! curl -N 'http://127.0.0.1:8480/stream/updates'
//! ```
//!
//! The replay publisher closes the broker when the archive is exhausted, so
//! streaming clients terminate cleanly (end-of-stream frame + final chunk).
//! `--stream-wait-subs N` holds the replay until N subscribers are attached
//! — the lever CI uses to race a fast and a deliberately stalled client
//! against the same deterministic publish sequence.

use gill::cli::{parse_families, read_updates_mrt_ctx, write_updates_mrt, Args};
use gill::core::FilterSet;
use gill::query::{RouteStore, ServerConfig, StoreConfig};
use gill::stream::{serve_streaming, BrokerConfig, StreamBroker};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let updates_path = PathBuf::from(args.required("updates")?);
    let filters_path = args.optional("filters").map(PathBuf::from);
    let out = args.optional("out").map(PathBuf::from);
    let serve_addr = args.optional("serve");
    if filters_path.is_none()
        && serve_addr.is_none()
        && args.optional("bmp-to").is_none()
        && args.optional("bgp-to").is_none()
    {
        return Err("need --filters (replay), --bgp-to / --bmp-to (live feed) \
             and/or --serve (looking glass)"
            .into());
    }

    // --addpath v6 (or v4, or v4,v6): the archive was written from an
    // ADD-PATH session, so its NLRI carry leading path identifiers for the
    // named families and must decode under the matching context.
    let ctx = match args.optional("addpath") {
        Some(fams) => gill::wire::DecodeCtx::from_families(parse_families(&fams)?),
        None => gill::wire::DecodeCtx::default(),
    };
    let updates = read_updates_mrt_ctx(&updates_path, &ctx).map_err(|e| e.to_string())?;
    let kept: Vec<_> = match &filters_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| e.to_string())?;
            let filters = FilterSet::from_text(&text)?;
            let kept: Vec<_> = updates
                .iter()
                .filter(|u| filters.accepts(u))
                .cloned()
                .collect();
            println!(
                "{} of {} updates pass the filters ({:.1}% discarded)",
                kept.len(),
                updates.len(),
                (1.0 - kept.len() as f64 / updates.len().max(1) as f64) * 100.0
            );
            kept
        }
        None => updates,
    };
    if let Some(p) = out {
        let n = write_updates_mrt(&p, &kept).map_err(|e| e.to_string())?;
        println!("wrote {n} records to {}", p.display());
    }
    // --bgp-to HOST:PORT: replay the (filtered) stream as live BGP peers —
    // one loopback session per distinct VP ASN, handshake, the VP's
    // updates in archive order, then NOTIFICATION Cease and a wait for
    // the collector's close so its counters have settled when we exit.
    // This is how CI feeds a fixture day into a collector's BGP listener.
    if let Some(addr) = args.optional("bgp-to") {
        use gill::collector::daemon::{handshake_client, MessageStream};
        use gill::wire::{BgpMessage, Notification, UpdateMessage};
        use std::io::Read;
        let asns: Vec<u32> = {
            let mut seen = std::collections::BTreeSet::new();
            kept.iter()
                .map(|u| u.vp.asn.value())
                .filter(|a| seen.insert(*a))
                .collect()
        };
        let mut sent = 0usize;
        for &asn in &asns {
            let stream = std::net::TcpStream::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
            let mut ms = MessageStream::new(stream);
            handshake_client(&mut ms, asn).map_err(|e| format!("AS{asn} handshake: {e}"))?;
            for u in kept.iter().filter(|u| u.vp.asn.value() == asn) {
                let wire = UpdateMessage::from_domain(u).map_err(|e| format!("AS{asn}: {e:?}"))?;
                ms.write_message(&BgpMessage::Update(wire))
                    .map_err(|e| format!("AS{asn}: {e}"))?;
                sent += 1;
            }
            ms.write_message(&BgpMessage::Notification(Notification::cease()))
                .map_err(|e| format!("AS{asn}: {e}"))?;
            let sock = ms.transport_mut();
            let _ = sock.set_read_timeout(Some(Duration::from_secs(10)));
            let mut buf = [0u8; 4096];
            loop {
                match sock.read(&mut buf) {
                    Ok(0) | Err(_) => break, // collector processed our Cease
                    Ok(_) => {}
                }
            }
        }
        println!(
            "bgp: replayed {sent} updates over {} sessions to {addr}",
            asns.len()
        );
    }
    // --bmp-to HOST:PORT: replay the (filtered) stream as one BMP router
    // session — Initiation, a Peer Up per distinct VP, a Route Monitoring
    // frame per update, Termination. This is how CI feeds a fixture day
    // into a live collector's --bmp-addr listener over loopback.
    if let Some(addr) = args.optional("bmp-to") {
        use gill::scenario::{BmpFeed, ScenarioItem, Source};
        use std::io::Write;
        let mut vps: Vec<_> = {
            let mut seen = std::collections::BTreeSet::new();
            kept.iter()
                .map(|u| u.vp)
                .filter(|vp| seen.insert(*vp))
                .collect()
        };
        // BmpFeed allocates router discriminators in Peer Up arrival
        // order, so register each AS's routers in rank order
        vps.sort_by_key(|vp| (vp.asn.value(), vp.router));
        let feed = BmpFeed::new(&vps);
        let mut sock = std::net::TcpStream::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
        let send = |sock: &mut std::net::TcpStream, frame: &[u8]| {
            sock.write_all(frame).map_err(|e| format!("{addr}: {e}"))
        };
        send(&mut sock, &BmpFeed::initiation_frame("gill-replay"))?;
        let t0 = kept.first().map(|u| u.time.as_millis()).unwrap_or(0);
        for frame in feed.peer_up_frames(t0) {
            send(&mut sock, &frame)?;
        }
        let mut frames = 0usize;
        for u in &kept {
            let item = ScenarioItem {
                update: u.clone(),
                source: Source::Extra,
            };
            if let Some(frame) = feed.route_monitoring_frame(&item) {
                send(&mut sock, &frame)?;
                frames += 1;
            }
        }
        send(&mut sock, &BmpFeed::termination_frame())?;
        sock.flush().map_err(|e| e.to_string())?;
        println!(
            "bmp: sent {} peers + {frames} route-monitoring frames to {addr}",
            vps.len()
        );
    }
    if let Some(addr) = serve_addr {
        // Replay pacing / determinism knobs for the streaming endpoint.
        let repeat: usize = args.num("stream-repeat", 1)?;
        let wait_subs: usize = args.num("stream-wait-subs", 0)?;
        let interval_ms: u64 = args.num("stream-interval-ms", 0)?;
        let broker_defaults = BrokerConfig::default();
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: args.num("ring-capacity", broker_defaults.ring_capacity)?,
            max_subscribers: args.num("max-subscribers", broker_defaults.max_subscribers)?,
        });

        let data_dir = args.optional("data-dir").map(PathBuf::from);
        let mut store = RouteStore::new(StoreConfig {
            mem_cap_bytes: args.num("store-mem-cap", 0)?,
            ..StoreConfig::default()
        });
        if let Some(dir) = &data_dir {
            if dir.exists() {
                let replayed = store.load_dir(dir).map_err(|e| e.to_string())?;
                if replayed > 0 {
                    println!("replayed {replayed} updates from {}", dir.display());
                }
            }
        }
        let n = kept.len();
        for u in &kept {
            store.ingest(u.clone());
        }
        if let Some(dir) = &data_dir {
            if let Some(path) = store.seal_all_into(dir).map_err(|e| e.to_string())? {
                println!("sealed new updates to {}", path.display());
            }
        }
        let store = Arc::new(parking_lot::RwLock::new(store));
        let server = serve_streaming(&addr, ServerConfig::default(), store, None, broker.clone())
            .map_err(|e| e.to_string())?;
        println!("serving {n} updates on http://{}", server.local_addr());

        if wait_subs > 0 {
            println!("waiting for {wait_subs} stream subscriber(s) before replaying");
            while broker.stats().subscribers < wait_subs {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        println!("replaying {n} updates x{repeat} into /stream/updates");
        for _ in 0..repeat {
            for u in &kept {
                broker.publish_always(u);
                if interval_ms > 0 {
                    std::thread::sleep(Duration::from_millis(interval_ms));
                }
            }
        }
        // Signals end-of-stream so `curl -N` clients exit cleanly; the query
        // endpoints stay up until the process is killed.
        broker.close();
        loop {
            std::thread::park();
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-replay --updates updates.mrt [--addpath v4,v6] \
                 [--filters filters.txt] \
                 [--out kept.mrt] [--bgp-to host:port] [--bmp-to host:port] \
                 [--serve host:port] [--data-dir dir] \
                 [--store-mem-cap bytes] [--stream-repeat n] \
                 [--stream-wait-subs n] [--stream-interval-ms ms] \
                 [--ring-capacity frames] [--max-subscribers n]"
            );
            ExitCode::FAILURE
        }
    }
}
