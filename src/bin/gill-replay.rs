//! `gill-replay` — apply a published filter file to an archived MRT stream
//! offline: what users with limited resources do with GILL's artifacts
//! (§9 — "help users find which bits of data they should process").
//!
//! ```sh
//! gill-replay --updates updates.mrt --filters filters.txt --out kept.mrt
//! ```
//!
//! With `--serve`, the (optionally filtered) stream is loaded into the
//! time-indexed route store and served over the looking-glass HTTP API
//! instead of (or in addition to) being written back out:
//!
//! ```sh
//! gill-replay --updates updates.mrt --serve 127.0.0.1:8480
//! ```

use gill::cli::{read_updates_mrt, write_updates_mrt, Args};
use gill::core::FilterSet;
use gill::query::{serve, RouteStore, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let updates_path = PathBuf::from(args.required("updates")?);
    let filters_path = args.optional("filters").map(PathBuf::from);
    let out = args.optional("out").map(PathBuf::from);
    let serve_addr = args.optional("serve");
    if filters_path.is_none() && serve_addr.is_none() {
        return Err("need --filters (replay) and/or --serve (looking glass)".into());
    }

    let updates = read_updates_mrt(&updates_path).map_err(|e| e.to_string())?;
    let kept: Vec<_> = match &filters_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| e.to_string())?;
            let filters = FilterSet::from_text(&text)?;
            let kept: Vec<_> = updates
                .iter()
                .filter(|u| filters.accepts(u))
                .cloned()
                .collect();
            println!(
                "{} of {} updates pass the filters ({:.1}% discarded)",
                kept.len(),
                updates.len(),
                (1.0 - kept.len() as f64 / updates.len().max(1) as f64) * 100.0
            );
            kept
        }
        None => updates,
    };
    if let Some(p) = out {
        let n = write_updates_mrt(&p, &kept).map_err(|e| e.to_string())?;
        println!("wrote {n} records to {}", p.display());
    }
    if let Some(addr) = serve_addr {
        let mut store = RouteStore::default();
        let n = kept.len();
        for u in kept {
            store.ingest(u);
        }
        let store = Arc::new(parking_lot::RwLock::new(store));
        let server = serve(&addr, ServerConfig::default(), store).map_err(|e| e.to_string())?;
        println!("serving {n} updates on http://{}", server.local_addr());
        loop {
            std::thread::park();
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-replay --updates updates.mrt [--filters filters.txt] \
                 [--out kept.mrt] [--serve host:port]"
            );
            ExitCode::FAILURE
        }
    }
}
