//! `gill-soak` — drive the full collection pipeline through a seeded
//! adversarial day and assert every invariant.
//!
//! ```sh
//! gill-soak --seed 7 --updates 500000 --campaign leak,hijack,withdraw \
//!           --runs 2 --report SOAK.json
//! ```
//!
//! `--runs 2` executes the identical soak twice and fails unless the two
//! FNV-1a transcript digests are bit-identical — the determinism contract.
//! Exit code is non-zero if any invariant fails.

use gill::cli::Args;
use gill::scenario::CampaignKind;
use gill::soak::{run_soak, SoakConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args = Args::parse()?;
    let seed: u64 = args.num("seed", 1)?;
    let updates: usize = args.num("updates", 50_000)?;
    let vps: u32 = args.num("vps", 6)?;
    let prefixes: u32 = args.num("prefixes", 96)?;
    let mirror_cap: usize = args.num("mirror-cap", 4_096)?;
    let store_mem_cap: u64 = args.num("store-mem-cap", 1 << 20)?;
    let ring: usize = args.num("ring", 512)?;
    let bmp_vps: u32 = args.num("bmp-vps", 0)?;
    let dual_stack: u32 = args.num("dual-stack", 0)?;
    let runs: u32 = args.num("runs", 1)?;
    let report_path = args.optional("report").map(PathBuf::from);

    let campaigns = match args.optional("campaign") {
        None => vec![
            CampaignKind::RouteLeak,
            CampaignKind::HijackWave,
            CampaignKind::WithdrawalAvalanche,
        ],
        Some(spec) => spec
            .split(',')
            .map(|tag| {
                CampaignKind::parse(tag.trim()).ok_or_else(|| {
                    format!(
                        "unknown campaign {tag:?} (try leak, flap, hijack, community, withdraw)"
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };

    // scratch segment dir for the crash-restart invariant; "none" skips it
    let data_dir = match args.optional("data-dir") {
        Some(s) if s == "none" => None,
        Some(s) => Some(PathBuf::from(s)),
        None => Some(std::env::temp_dir().join(format!("gill-soak-{seed}-{}", std::process::id()))),
    };
    if let Some(dir) = &data_dir {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }

    let cfg = SoakConfig {
        seed,
        n_vps: vps,
        n_prefixes: prefixes,
        background_updates: updates,
        campaigns,
        mirror_cap,
        capped_store_bytes: store_mem_cap,
        ring_capacity: ring,
        data_dir: data_dir.clone(),
        bmp_vps,
        dual_stack: dual_stack != 0,
    };

    let mut ok = true;
    let mut first_digest: Option<String> = None;
    let mut last_json = String::new();
    for run in 1..=runs.max(1) {
        // each run replays the day from scratch; clear the segment dir so
        // the restart fork reloads only this run's segments
        if let Some(dir) = &data_dir {
            let _ = std::fs::remove_dir_all(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        let report = run_soak(&cfg);
        eprintln!(
            "run {run}: digest {} — {} sent, {} kept, {} regimes",
            report.digest, report.counters.sent, report.counters.kept, report.counters.regimes
        );
        for inv in &report.invariants {
            let mark = if inv.pass { "ok  " } else { "FAIL" };
            eprintln!("  [{mark}] {:<28} {}", inv.name, inv.detail);
        }
        ok &= report.all_pass();
        match &first_digest {
            None => first_digest = Some(report.digest.clone()),
            Some(d) if *d != report.digest => {
                eprintln!("DETERMINISM VIOLATION: digest {} != {}", report.digest, d);
                ok = false;
            }
            Some(_) => eprintln!("  [ok  ] digest-reproducible          {}", report.digest),
        }
        last_json = report.to_json();
    }
    if let Some(path) = report_path {
        std::fs::write(&path, &last_json).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("report written to {}", path.display());
    }
    println!("{last_json}");
    if let Some(dir) = &data_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("soak FAILED: at least one invariant did not hold");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gill-soak [--seed N] [--updates N] [--vps N] [--prefixes N] \
                 [--campaign leak,hijack,...] [--mirror-cap N] [--store-mem-cap BYTES] \
                 [--ring N] [--bmp-vps N] [--runs N] [--data-dir DIR|none] [--report FILE]"
            );
            ExitCode::FAILURE
        }
    }
}
