//! BMP ingestion throughput: many concurrent `SimTransport` BMP sessions,
//! each carrying several monitored peers, demuxed and fed through the
//! compiled filter path into the route store and the stream broker.
//! Writes `BENCH_bmp.json`.
//!
//! The whole run is deterministic: one OS thread services every open
//! session in a fixed round-robin order over a virtual clock, so the
//! FNV-1a transcript digest must replay bit-identically across the two
//! seeded runs (asserted). The per-update accounting is exact —
//! `decoded == retained + filtered + shed` — with the bounded storage
//! queue sized so shedding actually happens under line rate.
//!
//! Usage: `bench_bmp [n_sessions] [n_updates]` (defaults 512, 120000).

use crossbeam::channel::bounded;
use gill::bmp::{BmpCloseReason, BmpEvent, BmpFsm, BmpSessionConfig};
use gill::collector::daemon::{DaemonStats, SessionCtx};
use gill::collector::transport::{
    sim_pair, Clock, FaultSchedule, SimTransport, Transport, VirtualClock,
};
use gill::collector::StoredUpdate;
use gill::core::{FilterGranularity, FilterHandle, FilterSet};
use gill::query::RouteStore;
use gill::scenario::{
    update_line, BackgroundConfig, BmpFeed, Fnv64, ScenarioConfig, ScenarioEngine, ScenarioItem,
    World,
};
use gill::stream::{
    BrokerConfig, Delivery, FramePayload, SlowPolicy, StreamBroker, StreamFilter, Subscription,
};
use gill::types::Timestamp;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Monitored peers multiplexed onto each BMP session.
const PEERS_PER_SESSION: u32 = 4;

/// Route Monitoring frames written per session per service turn.
const FRAMES_PER_TURN: usize = 8;

/// Bounded storage-queue capacity; smaller than one round-robin pass of
/// kept updates at full width (512 sessions x 8 frames x ~60% filter
/// acceptance), so the shed path is exercised for real.
const QUEUE_CAP: usize = 2_048;

struct Sess {
    fsm: BmpFsm,
    client: SimTransport,
    server: SimTransport,
    script: VecDeque<Vec<u8>>,
    close: Option<BmpCloseReason>,
}

struct RunResult {
    decoded: usize,
    retained: usize,
    filtered: usize,
    shed: usize,
    published: usize,
    stream_shed: usize,
    sub_frames: u64,
    sub_missed: u64,
    stored_routes: usize,
    secs: f64,
    digest: String,
}

fn drain_sub(sub: &mut Subscription, frames: &mut u64, missed: &mut u64) {
    loop {
        match sub.poll_next() {
            Delivery::Frame(f) => match &f.payload {
                FramePayload::Update(_) => *frames += 1,
                FramePayload::Gap { missed: m } => *missed += m,
                FramePayload::Eos { .. } => {}
            },
            Delivery::Gap(f) => {
                if let FramePayload::Gap { missed: m } = &f.payload {
                    *missed += m;
                }
            }
            Delivery::Overrun { missed: m } => *missed += m,
            Delivery::Pending | Delivery::Closed => return,
        }
    }
}

/// One full ingest run over pre-encoded per-session frame scripts.
fn drive(scripts: &[VecDeque<Vec<u8>>], filters: &FilterSet, monitored: &[u64]) -> RunResult {
    let clock = VirtualClock::new();
    let handle = FilterHandle::empty();
    handle.publish(handle.compile_next(filters));
    let (tx, rx) = bounded::<StoredUpdate>(QUEUE_CAP);
    let stats = Arc::new(DaemonStats::default());
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: 4_096,
        max_subscribers: 8,
    });
    let mut sub = broker
        .subscribe(StreamFilter::default(), SlowPolicy::SkipWithGapMarker)
        .expect("subscribe");
    let mut ctx = SessionCtx::new(handle.view(), tx, stats.clone());
    ctx.sink = Some(Arc::new(broker.publisher()));

    let mut sessions: Vec<Sess> = scripts
        .iter()
        .map(|q| {
            let (client, server) = sim_pair(&clock, FaultSchedule::none(), FaultSchedule::none());
            Sess {
                fsm: BmpFsm::new(BmpSessionConfig::default(), clock.now_ms()),
                client,
                server,
                script: q.clone(),
                close: None,
            }
        })
        .collect();

    let mut store = RouteStore::default();
    let mut digest = Fnv64::new();
    let mut stored_routes = 0usize;
    let (mut sub_frames, mut sub_missed) = (0u64, 0u64);
    let mut open = sessions.len();
    let mut buf = vec![0u8; 16 * 1024];

    let t0 = Instant::now();
    while open > 0 {
        for sess in &mut sessions {
            if sess.close.is_some() {
                continue;
            }
            for _ in 0..FRAMES_PER_TURN {
                match sess.script.pop_front() {
                    Some(f) => {
                        let _ = sess.client.write_all(&f);
                    }
                    None => break,
                }
            }
            let now = clock.now_ms();
            loop {
                match sess.server.read(&mut buf) {
                    Ok(0) => {
                        sess.fsm.handle_eof(now);
                        break;
                    }
                    Ok(n) => sess.fsm.handle_bytes(&buf[..n], now),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
            sess.fsm.tick(now);
            while let Some(ev) = sess.fsm.poll_event() {
                match ev {
                    BmpEvent::Update { vp, update, ts_ms } => {
                        ctx.offer(vp, update, Timestamp::from_millis(ts_ms));
                    }
                    BmpEvent::Closed(r) => {
                        sess.close = Some(r);
                        open -= 1;
                    }
                    _ => {}
                }
            }
        }
        // end-of-pass drains, in the same fixed order every pass
        while let Ok(rec) = rx.try_recv() {
            digest.write_line(&update_line(&rec.update));
            store.ingest(rec.update);
            stored_routes += 1;
        }
        drain_sub(&mut sub, &mut sub_frames, &mut sub_missed);
        clock.advance_ms(1);
    }
    let secs = t0.elapsed().as_secs_f64();

    // every session must have ended on its script's Termination frame,
    // with its full demux table intact and exact per-session ledgers
    for (s, sess) in sessions.iter().enumerate() {
        assert_eq!(
            sess.close,
            Some(BmpCloseReason::Terminated),
            "session {s} close reason"
        );
        assert_eq!(
            sess.fsm.peer_count(),
            PEERS_PER_SESSION as usize,
            "session {s} demux table"
        );
        let ledger = sess.fsm.ledger();
        assert_eq!(ledger.route_monitoring, monitored[s], "session {s} frames");
        assert_eq!(ledger.unknown_peer, 0, "session {s} unknown peers");
        assert_eq!(ledger.denied_peers, 0, "session {s} denied peers");
    }

    let load = |c: &std::sync::atomic::AtomicUsize| c.load(Ordering::Relaxed);
    let decoded = load(&stats.received);
    let retained = load(&stats.retained);
    let filtered = load(&stats.filtered);
    let shed = load(&stats.lost);
    let published = load(&stats.stream_published);
    let stream_shed = load(&stats.stream_shed);

    // the exactness contracts: nothing uncounted anywhere in the path
    assert_eq!(decoded, retained + filtered + shed, "ingest accounting");
    assert_eq!(retained, stored_routes, "queue drained to the store");
    assert_eq!(
        published + stream_shed,
        retained + shed,
        "sink sees exactly the filter-accepted stream"
    );
    assert_eq!(
        sub_frames + sub_missed,
        published as u64,
        "subscriber gaps counted exactly"
    );

    digest.write_line(&format!(
        "decoded={decoded} retained={retained} filtered={filtered} shed={shed} \
         published={published} stream_shed={stream_shed} sub={sub_frames}+{sub_missed}"
    ));
    RunResult {
        decoded,
        retained,
        filtered,
        shed,
        published,
        stream_shed,
        sub_frames,
        sub_missed,
        stored_routes,
        secs,
        digest: format!("{:016x}", digest.finish()),
    }
}

fn main() {
    let n_sessions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);

    // one VP per monitored peer; the scenario engine supplies the day
    let world = World {
        n_vps: n_sessions * PEERS_PER_SESSION,
        n_prefixes: 512,
        seed: 0xb17,
    };
    let background = BackgroundConfig::default();
    let duration_ms = background.duration_for(n);
    let cfg = ScenarioConfig {
        world,
        background,
        duration_ms,
        campaigns: Vec::new(),
        seed: 17,
    };
    let items: Vec<ScenarioItem> = ScenarioEngine::new(&cfg).collect();

    // train drop rules on every 9th update so the compiled path does
    // real work (and `filtered` is provably nonzero)
    let filters = FilterSet::generate(
        [],
        items.iter().step_by(9).map(|i| &i.update),
        FilterGranularity::VpPrefix,
    );

    // pre-encode every session's frame script (generation cost excluded
    // from the timed region): Initiation, one Peer Up per peer, the
    // session's share of the day as Route Monitoring, Termination
    let feeds: Vec<BmpFeed> = (0..n_sessions)
        .map(|s| {
            let vps: Vec<_> = (0..PEERS_PER_SESSION)
                .map(|k| world.vp(s * PEERS_PER_SESSION + k))
                .collect();
            BmpFeed::new(&vps)
        })
        .collect();
    let mut scripts: Vec<VecDeque<Vec<u8>>> = feeds
        .iter()
        .map(|feed| {
            let mut q = VecDeque::new();
            q.push_back(BmpFeed::initiation_frame("bench-bmp"));
            q.extend(feed.peer_up_frames(0));
            q
        })
        .collect();
    let mut monitored = vec![0u64; n_sessions as usize];
    for item in &items {
        let i = world.vp_index(item.update.vp).expect("world VP");
        let s = (i / PEERS_PER_SESSION) as usize;
        if let Some(frame) = feeds[s].route_monitoring_frame(item) {
            scripts[s].push_back(frame);
            monitored[s] += 1;
        }
    }
    for q in &mut scripts {
        q.push_back(BmpFeed::termination_frame());
    }
    let total_frames: usize = scripts.iter().map(|q| q.len()).sum();

    // two identical runs: the determinism contract, checked end to end
    let a = drive(&scripts, &filters, &monitored);
    let b = drive(&scripts, &filters, &monitored);
    assert_eq!(a.digest, b.digest, "BMP ingest must replay bit-identically");
    assert_eq!(a.decoded, b.decoded);
    assert!(a.filtered > 0, "compiled filters never dropped anything");
    assert!(
        a.shed > 0,
        "bounded queue never shed under line rate (decoded {} retained {} filtered {})",
        a.decoded,
        a.retained,
        a.filtered
    );

    let per_sec = a.decoded as f64 / a.secs.max(1e-9);
    let json = format!(
        "{{\n  \"sessions\": {n_sessions}, \"peers\": {}, \"frames\": {total_frames}, \
         \"decoded\": {},\n  \"secs\": {:.2}, \"per_sec\": {per_sec:.0},\n  \
         \"accounting\": {{ \"retained\": {}, \"filtered\": {}, \"shed\": {}, \
         \"published\": {}, \"stream_shed\": {}, \"sub_frames\": {}, \"sub_missed\": {}, \
         \"stored_routes\": {} }},\n  \"digest\": \"{}\"\n}}\n",
        n_sessions * PEERS_PER_SESSION,
        a.decoded,
        a.secs,
        a.retained,
        a.filtered,
        a.shed,
        a.published,
        a.stream_shed,
        a.sub_frames,
        a.sub_missed,
        a.stored_routes,
        a.digest,
    );
    std::fs::write("BENCH_bmp.json", &json).expect("write BENCH_bmp.json");
    eprintln!(
        "wrote BENCH_bmp.json ({n_sessions} sessions x {PEERS_PER_SESSION} peers, \
         {per_sec:.0} updates/s, digest {})",
        a.digest
    );
    println!("{json}");
}
