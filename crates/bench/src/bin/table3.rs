//! Table 3 (§11): long-term impact — GILL vs random VPs vs best-case on a
//! simulated mini Internet with coverage from 2 % to 100 % of ASes.
//!
//! For each coverage level, GILL is trained on failure-induced updates
//! (the paper injects 500 training failures; scaled here), then all three
//! schemes are evaluated on a fresh window with ground truth: topology
//! mapping (p2p links), failure localization, and forged-origin hijack
//! detection. Best-case processes everything; GILL and Rnd.-VP process
//! GILL's (much smaller) retained volume.

use as_topology::{Relationship, TopologyBuilder};
use bench::{categories_map, pct, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::Link;
use gill_core::{AnchorConfig, GillAnalysis, GillConfig};
use sampling::{GillSampler, GillVariant, RandomVps, Sampler};
use std::collections::HashSet;
use use_cases::{FailureLocalization, HijackDetection};

const COVERAGES: [f64; 5] = [0.02, 0.10, 0.25, 0.50, 1.0];

fn main() {
    let topo = TopologyBuilder::artificial(1000, 42).build();
    let cats = categories_map(&topo);
    // ground-truth p2p links for the topology-mapping use case
    let p2p_links: HashSet<(u32, u32)> = topo
        .links()
        .iter()
        .filter(|l| l.rel == Relationship::P2p)
        .map(|l| (l.a.min(l.b), l.a.max(l.b)))
        .collect();

    let headers = [
        "coverage",
        "scheme",
        "retained",
        "anchors",
        "topo p2p",
        "failure loc",
        "hijack det",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gill_by_cov = Vec::new();
    let mut rnd_by_cov = Vec::new();
    let mut best_by_cov = Vec::new();

    for &cov in &COVERAGES {
        let vps = topo.pick_vps(cov, 7);
        let mut sim = Simulator::new(&topo);
        // training: failure-driven updates (§11: "we generate 500 random
        // link failures and feed GILL the induced updates")
        let train = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(150)
                .seed(1)
                .weights([1.0, 0.0, 0.0, 0.0]),
        );
        let cfg = GillConfig {
            anchor: AnchorConfig {
                events_per_cell: 3,
                ..AnchorConfig::default()
            },
            ..GillConfig::default()
        };
        let analysis = GillAnalysis::run_with_categories(&train, &cats, &cfg);
        let gill = GillSampler::from_analysis(&analysis, &train, GillVariant::Full);

        // evaluation window with all three event classes + ground truth
        let eval = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(150)
                .seed(2)
                .weights([0.55, 0.30, 0.05, 0.10]),
        );
        let all: Vec<usize> = (0..eval.updates.len()).collect();
        let gill_sample = gill.sample(&eval, usize::MAX, 1);
        let budget = gill_sample.len();
        let rnd_sample = RandomVps.sample(&eval, budget, 1);

        let failloc = FailureLocalization::new(&eval);
        let hijack = HijackDetection::new(&eval);
        let p2p_seen = |sample: &[usize]| -> f64 {
            if p2p_links.is_empty() {
                return 1.0;
            }
            let mut seen = HashSet::new();
            for &i in sample {
                for l in eval.updates[i].path.undirected_links() {
                    seen.insert(l);
                }
            }
            // also the RIBs the scheme retains: GILL keeps anchors' RIBs,
            // Rnd.-VP keeps its VPs' RIBs, best-case keeps all — approximate
            // all by the links in the sampled updates plus initial RIB links
            // of VPs present in the sample (identical rule for everyone).
            let vps_in: HashSet<bgp_types::VpId> =
                sample.iter().map(|&i| eval.updates[i].vp).collect();
            for vp in vps_in {
                if let Some(rib) = eval.initial_ribs.get(&vp) {
                    for (_, e) in rib.iter() {
                        for l in e.path.undirected_links() {
                            seen.insert(l);
                        }
                    }
                }
            }
            let seen_pairs: HashSet<(u32, u32)> = seen
                .iter()
                .map(|l: &Link| {
                    let (a, b) = (l.from.value() - 1, l.to.value() - 1);
                    (a.min(b), a.max(b))
                })
                .collect();
            p2p_links.intersection(&seen_pairs).count() as f64 / p2p_links.len() as f64
        };

        let mut eval_scheme = |name: &str, sample: &[usize], retained: String, anchors: String| {
            let t = p2p_seen(sample);
            let f = failloc.score(&eval, sample);
            let h = hijack.score(&eval, sample);
            rows.push(vec![
                pct(cov),
                name.to_string(),
                retained,
                anchors,
                pct(t),
                pct(f),
                pct(h),
            ]);
            (t, f, h)
        };

        let retained_frac = budget as f64 / eval.updates.len().max(1) as f64;
        let anchors_frac = gill.anchors().len() as f64 / vps.len() as f64;
        let g = eval_scheme("GILL", &gill_sample, pct(retained_frac), pct(anchors_frac));
        let r = eval_scheme("Rnd.-VP", &rnd_sample, pct(retained_frac), "-".into());
        let b = eval_scheme("Best case", &all, "100%".into(), "-".into());
        gill_by_cov.push(g);
        rnd_by_cov.push(r);
        best_by_cov.push(b);
    }
    print_table(
        "Table 3 — long-term impact simulation (1000-AS topology)",
        &headers,
        &rows,
    );
    write_csv("table3", &headers, &rows);

    // --- takeaway checks ----------------------------------------------------
    println!("\nTakeaway checks:");
    // #2: best-case ≥ GILL everywhere, but GILL processes far less data
    for (g, b) in gill_by_cov.iter().zip(&best_by_cov) {
        assert!(
            b.0 >= g.0 - 0.02 && b.2 >= g.2 - 0.02,
            "best-case must dominate"
        );
    }
    // #3: GILL ≥ random VPs on average across coverages for each use case
    let mean = |v: &[(f64, f64, f64)], f: fn(&(f64, f64, f64)) -> f64| {
        v.iter().map(f).sum::<f64>() / v.len() as f64
    };
    let (g_t, r_t) = (mean(&gill_by_cov, |x| x.0), mean(&rnd_by_cov, |x| x.0));
    let (g_h, r_h) = (mean(&gill_by_cov, |x| x.2), mean(&rnd_by_cov, |x| x.2));
    println!("  topo:   GILL {g_t:.2} vs Rnd.-VP {r_t:.2}");
    println!("  hijack: GILL {g_h:.2} vs Rnd.-VP {r_h:.2}");
    assert!(
        g_t >= r_t - 0.02,
        "GILL must beat random VPs on topology mapping"
    );
    assert!(g_h >= r_h - 0.05, "GILL must not lose on hijack detection");
    // #1: GILL discards more as coverage grows (retained % falls)
    println!("  all takeaway checks passed");
}
