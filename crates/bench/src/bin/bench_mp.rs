//! Mixed-family ingest gate: the same BMP ingest pipeline as `bench_bmp`
//! run twice over days of identical size and shape — once v4-only, once
//! dual-stack (odd world prefixes IPv6, so MP_REACH/MP_UNREACH encode and
//! decode on half the stream) — and the mixed-family rate must hold at
//! least `GATE` of the v4-only rate. Writes `BENCH_mp.json`.
//!
//! Both days run through the identical machinery (demux, compiled
//! filters, bounded storage queue, stream broker), so the ratio isolates
//! the cost of the multiprotocol wire path rather than any pipeline
//! difference. The mixed day is also run twice and must replay
//! bit-identically.
//!
//! Usage: `bench_mp [n_sessions] [n_updates]` (defaults 256, 60000).

use crossbeam::channel::bounded;
use gill::bmp::{BmpCloseReason, BmpEvent, BmpFsm, BmpSessionConfig};
use gill::collector::daemon::{DaemonStats, SessionCtx};
use gill::collector::transport::{sim_pair, Clock, FaultSchedule, Transport, VirtualClock};
use gill::collector::StoredUpdate;
use gill::core::{FilterGranularity, FilterHandle, FilterSet};
use gill::query::RouteStore;
use gill::scenario::{
    update_line, BackgroundConfig, BmpFeed, Fnv64, ScenarioConfig, ScenarioEngine, ScenarioItem,
    World,
};
use gill::stream::{BrokerConfig, SlowPolicy, StreamBroker, StreamFilter};
use gill::types::Timestamp;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Monitored peers multiplexed onto each BMP session.
const PEERS_PER_SESSION: u32 = 4;

/// Route Monitoring frames written per session per service turn.
const FRAMES_PER_TURN: usize = 8;

/// Bounded storage-queue capacity (see `bench_bmp` for the sizing note).
const QUEUE_CAP: usize = 2_048;

/// The mixed-family day must ingest at least this fraction of the
/// v4-only day's rate.
const GATE: f64 = 0.8;

struct RunResult {
    decoded: usize,
    v6_routes: usize,
    secs: f64,
    digest: String,
}

/// One full ingest run over pre-encoded per-session frame scripts.
fn drive(scripts: &[VecDeque<Vec<u8>>], filters: &FilterSet) -> RunResult {
    let clock = VirtualClock::new();
    let handle = FilterHandle::empty();
    handle.publish(handle.compile_next(filters));
    let (tx, rx) = bounded::<StoredUpdate>(QUEUE_CAP);
    let stats = Arc::new(DaemonStats::default());
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: 4_096,
        max_subscribers: 8,
    });
    let mut sub = broker
        .subscribe(StreamFilter::default(), SlowPolicy::SkipWithGapMarker)
        .expect("subscribe");
    let mut ctx = SessionCtx::new(handle.view(), tx, stats.clone());
    ctx.sink = Some(Arc::new(broker.publisher()));

    struct Sess {
        fsm: BmpFsm,
        client: gill::collector::transport::SimTransport,
        server: gill::collector::transport::SimTransport,
        script: VecDeque<Vec<u8>>,
        close: Option<BmpCloseReason>,
    }
    let mut sessions: Vec<Sess> = scripts
        .iter()
        .map(|q| {
            let (client, server) = sim_pair(&clock, FaultSchedule::none(), FaultSchedule::none());
            Sess {
                fsm: BmpFsm::new(BmpSessionConfig::default(), clock.now_ms()),
                client,
                server,
                script: q.clone(),
                close: None,
            }
        })
        .collect();

    let mut store = RouteStore::default();
    let mut digest = Fnv64::new();
    let mut stored_routes = 0usize;
    let mut v6_routes = 0usize;
    let mut open = sessions.len();
    let mut buf = vec![0u8; 16 * 1024];

    let t0 = Instant::now();
    while open > 0 {
        for sess in &mut sessions {
            if sess.close.is_some() {
                continue;
            }
            for _ in 0..FRAMES_PER_TURN {
                match sess.script.pop_front() {
                    Some(f) => {
                        let _ = sess.client.write_all(&f);
                    }
                    None => break,
                }
            }
            let now = clock.now_ms();
            loop {
                match sess.server.read(&mut buf) {
                    Ok(0) => {
                        sess.fsm.handle_eof(now);
                        break;
                    }
                    Ok(n) => sess.fsm.handle_bytes(&buf[..n], now),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
            sess.fsm.tick(now);
            while let Some(ev) = sess.fsm.poll_event() {
                match ev {
                    BmpEvent::Update { vp, update, ts_ms } => {
                        ctx.offer(vp, update, Timestamp::from_millis(ts_ms));
                    }
                    BmpEvent::Closed(r) => {
                        sess.close = Some(r);
                        open -= 1;
                    }
                    _ => {}
                }
            }
        }
        while let Ok(rec) = rx.try_recv() {
            digest.write_line(&update_line(&rec.update));
            if rec.update.prefix.is_ipv6() {
                v6_routes += 1;
            }
            store.ingest(rec.update);
            stored_routes += 1;
        }
        while !matches!(
            sub.poll_next(),
            gill::stream::Delivery::Pending | gill::stream::Delivery::Closed
        ) {}
        clock.advance_ms(1);
    }
    let secs = t0.elapsed().as_secs_f64();

    for (s, sess) in sessions.iter().enumerate() {
        assert_eq!(
            sess.close,
            Some(BmpCloseReason::Terminated),
            "session {s} close reason"
        );
        let ledger = sess.fsm.ledger();
        assert_eq!(ledger.unknown_peer, 0, "session {s} unknown peers");
    }

    let load = |c: &std::sync::atomic::AtomicUsize| c.load(Ordering::Relaxed);
    let decoded = load(&stats.received);
    let retained = load(&stats.retained);
    let filtered = load(&stats.filtered);
    let shed = load(&stats.lost);
    assert_eq!(decoded, retained + filtered + shed, "ingest accounting");
    assert_eq!(retained, stored_routes, "queue drained to the store");

    digest.write_line(&format!(
        "decoded={decoded} retained={retained} filtered={filtered} shed={shed}"
    ));
    RunResult {
        decoded,
        v6_routes,
        secs,
        digest: format!("{:016x}", digest.finish()),
    }
}

/// The day's per-session frame scripts plus the filters trained on it.
fn build_day(n_sessions: u32, n: usize, dual_stack: bool) -> (Vec<VecDeque<Vec<u8>>>, FilterSet) {
    let world = World {
        n_vps: n_sessions * PEERS_PER_SESSION,
        n_prefixes: 512,
        seed: 0xb17,
        dual_stack,
    };
    let background = BackgroundConfig::default();
    let duration_ms = background.duration_for(n);
    let cfg = ScenarioConfig {
        world,
        background,
        duration_ms,
        campaigns: Vec::new(),
        seed: 17,
    };
    let items: Vec<ScenarioItem> = ScenarioEngine::new(&cfg).collect();
    let filters = FilterSet::generate(
        [],
        items.iter().step_by(9).map(|i| &i.update),
        FilterGranularity::VpPrefix,
    );

    let feeds: Vec<BmpFeed> = (0..n_sessions)
        .map(|s| {
            let vps: Vec<_> = (0..PEERS_PER_SESSION)
                .map(|k| world.vp(s * PEERS_PER_SESSION + k))
                .collect();
            BmpFeed::new(&vps)
        })
        .collect();
    let mut scripts: Vec<VecDeque<Vec<u8>>> = feeds
        .iter()
        .map(|feed| {
            let mut q = VecDeque::new();
            q.push_back(BmpFeed::initiation_frame("bench-mp"));
            q.extend(feed.peer_up_frames(0));
            q
        })
        .collect();
    for item in &items {
        let i = world.vp_index(item.update.vp).expect("world VP");
        let s = (i / PEERS_PER_SESSION) as usize;
        if let Some(frame) = feeds[s].route_monitoring_frame(item) {
            scripts[s].push_back(frame);
        }
    }
    for q in &mut scripts {
        q.push_back(BmpFeed::termination_frame());
    }
    (scripts, filters)
}

fn main() {
    let n_sessions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    let (v4_scripts, v4_filters) = build_day(n_sessions, n, false);
    let (mp_scripts, mp_filters) = build_day(n_sessions, n, true);

    // warm-up pass (page in code and allocators), then the timed runs
    let _ = drive(&v4_scripts, &v4_filters);
    let v4 = drive(&v4_scripts, &v4_filters);
    let mp = drive(&mp_scripts, &mp_filters);

    // the mixed day must actually be mixed, and must replay bit-identically
    assert!(mp.v6_routes > 0, "dual-stack day carried no v6 routes");
    assert_eq!(v4.v6_routes, 0, "v4-only day leaked v6 routes");
    assert_eq!(v4.decoded, mp.decoded, "days must be the same size");
    let mp2 = drive(&mp_scripts, &mp_filters);
    assert_eq!(
        mp.digest, mp2.digest,
        "mixed-family ingest must replay bit-identically"
    );

    let v4_rate = v4.decoded as f64 / v4.secs.max(1e-9);
    let mp_rate = mp.decoded as f64 / mp.secs.max(1e-9);
    let ratio = mp_rate / v4_rate;
    assert!(
        ratio >= GATE,
        "mixed-family ingest too slow: {mp_rate:.0}/s vs {v4_rate:.0}/s v4-only \
         (ratio {ratio:.2} under gate {GATE})"
    );

    let json = format!(
        "{{\n  \"sessions\": {n_sessions}, \"decoded\": {},\n  \
         \"v4_only\": {{ \"per_sec\": {v4_rate:.0}, \"secs\": {:.2} }},\n  \
         \"mixed\": {{ \"per_sec\": {mp_rate:.0}, \"secs\": {:.2}, \
         \"v6_routes\": {} }},\n  \
         \"ratio\": {ratio:.3}, \"gate\": {GATE},\n  \"digest\": \"{}\"\n}}\n",
        v4.decoded, v4.secs, mp.secs, mp.v6_routes, mp.digest,
    );
    std::fs::write("BENCH_mp.json", &json).expect("write BENCH_mp.json");
    eprintln!(
        "wrote BENCH_mp.json (mixed {mp_rate:.0}/s vs v4-only {v4_rate:.0}/s, \
         ratio {ratio:.2}, digest {})",
        mp.digest
    );
    println!("{json}");
}
