//! Redundancy-engine throughput benchmark.
//!
//! Times three engines on the same synthetic ≥50 k-update stream and writes
//! `BENCH_redundancy.json` into the working directory:
//!
//! 1. **seed sequential** — the original per-comparison engine
//!    ([`gill_core::redundant_flags_seq`]): every condition-2/3 check
//!    materializes fresh `BTreeSet`s for both sides.
//! 2. **prepared sequential** — intern once ([`PreparedUpdates::prepare`]),
//!    then the single-threaded bucket scan over sorted slices.
//! 3. **prepared parallel** — intern once, then the rayon fan-out over
//!    per-prefix buckets (`RAYON_NUM_THREADS` controls the pool).
//!
//! All three must produce byte-identical flag vectors (asserted), and the
//! VP-pair maps of the sequential reference and the parallel engine must be
//! equal. Peak RSS is read from `/proc/self/status` (`VmHWM`) on Linux.
//!
//! Usage: `bench_redundancy [n_updates] [runs]` (defaults: 50000, 3).

use gill_core::prepared::PreparedUpdates;
use gill_core::redundancy::{redundant_flags_seq, vp_pair_redundancy_seq, RedundancyDef};
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Best-of-`runs` wall time of `f`, plus the value of the last run.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        value = Some(v);
    }
    (value.unwrap(), best)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let def = RedundancyDef::Def3;

    eprintln!("synthesizing {n}-update stream ...");
    let updates = bench::synth_redundancy_stream(n, 7);
    let threads = rayon::current_num_threads();

    eprintln!("flags: seed sequential engine ({runs} runs) ...");
    let (flags_seed, t_seed) = best_of(runs, || redundant_flags_seq(&updates, def));
    eprintln!("flags: prepared sequential engine ...");
    let (flags_pseq, t_pseq) = best_of(runs, || {
        PreparedUpdates::prepare(&updates).redundant_flags_seq(def)
    });
    eprintln!("flags: prepared parallel engine ({threads} threads) ...");
    let (flags_par, t_par) = best_of(runs, || gill_core::redundant_flags(&updates, def));

    assert_eq!(
        flags_seed, flags_pseq,
        "prepared-seq flags diverge from seed"
    );
    assert_eq!(flags_seed, flags_par, "parallel flags diverge from seed");
    let redundant = flags_seed.iter().filter(|&&f| f).count();

    eprintln!("vp pairs: seed sequential engine ...");
    let (pairs_seed, tv_seed) = best_of(runs, || vp_pair_redundancy_seq(&updates, def));
    eprintln!("vp pairs: prepared parallel engine ...");
    let (pairs_par, tv_par) = best_of(runs, || gill_core::vp_pair_redundancy(&updates, def));
    assert_eq!(
        pairs_seed, pairs_par,
        "parallel VP-pair map diverges from seed"
    );

    let ups = |secs: f64| n as f64 / secs;
    let json = format!(
        "{{\n  \"n_updates\": {n},\n  \"def\": \"Def3\",\n  \"runs\": {runs},\n  \"threads\": {threads},\n  \"redundant_updates\": {redundant},\n  \"flags\": {{\n    \"seed_sequential\": {{ \"secs\": {t_seed:.6}, \"updates_per_sec\": {:.1} }},\n    \"prepared_sequential\": {{ \"secs\": {t_pseq:.6}, \"updates_per_sec\": {:.1}, \"speedup_vs_seed\": {:.2} }},\n    \"prepared_parallel\": {{ \"secs\": {t_par:.6}, \"updates_per_sec\": {:.1}, \"speedup_vs_seed\": {:.2} }}\n  }},\n  \"vp_pairs\": {{\n    \"nonzero_pairs\": {},\n    \"seed_sequential\": {{ \"secs\": {tv_seed:.6}, \"updates_per_sec\": {:.1} }},\n    \"prepared_parallel\": {{ \"secs\": {tv_par:.6}, \"updates_per_sec\": {:.1}, \"speedup_vs_seed\": {:.2} }}\n  }},\n  \"identical_outputs\": true,\n  \"peak_rss_kb\": {}\n}}\n",
        ups(t_seed),
        ups(t_pseq),
        t_seed / t_pseq,
        ups(t_par),
        t_seed / t_par,
        pairs_par.len(),
        ups(tv_seed),
        ups(tv_par),
        tv_seed / tv_par,
        peak_rss_kb()
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    std::fs::write("BENCH_redundancy.json", &json).expect("write BENCH_redundancy.json");
    print!("{json}");
    eprintln!("wrote BENCH_redundancy.json");
}
