//! §3.1 "confirmation with real (but private) data": the paper compared
//! RIS+RV against bgp.tools' private feeds and found each side saw
//! hundreds of thousands of links the other missed. We reproduce the
//! *structure* of that comparison: two disjoint VP deployments on the same
//! Internet each observe a large set of links the other cannot see.

use as_topology::TopologyBuilder;
use bench::{print_table, write_csv};
use bgp_sim::routing::{compute_routes, SourceAnnouncement};
use std::collections::HashSet;

fn links_seen(topo: &as_topology::Topology, vp_nodes: &[u32]) -> HashSet<(u32, u32)> {
    let mut seen = HashSet::new();
    let no_fail = HashSet::new();
    for origin in 0..topo.num_ases() as u32 {
        let t = compute_routes(topo, &[SourceAnnouncement::origin(origin)], &no_fail);
        for &v in vp_nodes {
            if let Some(p) = t.path(v) {
                for w in p.windows(2) {
                    seen.insert((w[0].min(w[1]), w[0].max(w[1])));
                }
            }
        }
    }
    seen
}

fn main() {
    let topo = TopologyBuilder::artificial(1200, 42).build();
    // two disjoint deployments of equal size (~1.5% coverage each)
    let all = topo.pick_vps(0.03, 9);
    let mid = all.len() / 2;
    let public: Vec<u32> = all[..mid]
        .iter()
        .filter_map(|v| topo.index_of(v.asn))
        .collect();
    let private: Vec<u32> = all[mid..]
        .iter()
        .filter_map(|v| topo.index_of(v.asn))
        .collect();

    let pub_links = links_seen(&topo, &public);
    let priv_links = links_seen(&topo, &private);
    let only_public = pub_links.difference(&priv_links).count();
    let only_private = priv_links.difference(&pub_links).count();
    let both = pub_links.intersection(&priv_links).count();

    let rows = vec![
        vec!["seen by both".into(), both.to_string()],
        vec!["only public platform".into(), only_public.to_string()],
        vec!["only private platform".into(), only_private.to_string()],
        vec![
            "total links in topology".into(),
            topo.num_links().to_string(),
        ],
    ];
    print_table(
        "§3.1 — link visibility of two disjoint VP deployments (bgp.tools comparison)",
        &["link set", "count"],
        &rows,
    );
    write_csv("private_overlap", &["set", "count"], &rows);

    assert!(
        only_public > 0 && only_private > 0,
        "each side must see unique links"
    );
    println!(
        "\nEach deployment sees links the other misses ({only_public} vs {only_private}) —\n\
         the §3.1 argument that more (and more diverse) VPs buy real visibility."
    );
}
