//! Fig. 6 (§4.2): redundancy among randomly selected VPs under the three
//! gradually stricter redundancy definitions, plus the §4.2 update-level
//! redundancy shares (97 % / 77 % / 70 % in the paper).
//!
//! Method mirrors the paper: one collection hour, 100 random VPs, 30
//! random selections, report the selection with the median number of
//! redundant VP pairs.

use as_topology::TopologyBuilder;
use bench::{median, pct, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::VpId;
use gill_core::{redundant_fraction, redundant_vp_fraction, RedundancyDef};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let topo = TopologyBuilder::artificial(800, 42).build();
    let all_vps = topo.pick_vps(0.5, 7); // a large feeder population
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(&all_vps, StreamConfig::default().events(150).seed(1));
    println!(
        "one-hour window: {} VPs, {} updates",
        all_vps.len(),
        stream.updates.len()
    );

    // --- update-level redundancy over the full stream ---------------------
    let mut rows = Vec::new();
    for def in RedundancyDef::ALL {
        let f = redundant_fraction(&stream.updates, def);
        rows.push(vec![format!("{def:?}"), pct(f)]);
    }
    print_table(
        "§4.2 — share of updates redundant with ≥1 other update (paper: 97/77/70%)",
        &["definition", "redundant updates"],
        &rows,
    );
    write_csv("fig6_updates", &["definition", "redundant"], &rows);

    // --- VP-level redundancy: 100 random VPs × 30 selections --------------
    let sample_size = 100.min(all_vps.len());
    let mut rows = Vec::new();
    for def in RedundancyDef::ALL {
        let mut fractions: Vec<f64> = Vec::new();
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut chosen: Vec<VpId> = all_vps.clone();
            chosen.shuffle(&mut rng);
            chosen.truncate(sample_size);
            let subset: Vec<_> = stream
                .updates
                .iter()
                .filter(|u| chosen.contains(&u.vp))
                .cloned()
                .collect();
            fractions.push(redundant_vp_fraction(&subset, def));
        }
        let m = median(&mut fractions);
        rows.push(vec![format!("{def:?}"), pct(m)]);
    }
    print_table(
        "Fig. 6 — share of VPs redundant with ≥1 other VP (median of 30 selections; paper: 70/26/22%)",
        &["definition", "redundant VPs"],
        &rows,
    );
    write_csv("fig6_vps", &["definition", "redundant_vps"], &rows);

    // structural check: strictly decreasing with stricter definitions
    let vals: Vec<f64> = rows
        .iter()
        .map(|r| r[1].trim_end_matches('%').parse::<f64>().unwrap())
        .collect();
    assert!(
        vals[0] >= vals[1] && vals[1] >= vals[2],
        "redundancy must not increase with stricter definitions: {vals:?}"
    );
    println!("\nShape check passed: Def1 ≥ Def2 ≥ Def3, as in the paper.");
}
