//! §7 filter-granularity ablation: coarse `(VP, prefix)` filters vs
//! GILL-asp (adds the AS path) vs GILL-asp-comm (adds communities).
//!
//! Protocol follows §7: the redundant updates `R` inferred by GILL are
//! split into two time-consecutive halves `R1`, `R2`; filters generated
//! from `R1` are measured on how much of `R2` they match. The paper finds
//! 87 % / 43 % / 0 %.

use as_topology::TopologyBuilder;
use bench::{categories_map, pct, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::BgpUpdate;
use gill_core::{AnchorConfig, FilterGranularity, FilterSet, GillAnalysis, GillConfig};

fn main() {
    let topo = TopologyBuilder::artificial(600, 42).build();
    let cats = categories_map(&topo);
    let vps = topo.pick_vps(0.3, 7);
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(250).seed(0));
    let cfg = GillConfig {
        anchor: AnchorConfig {
            events_per_cell: 4,
            ..AnchorConfig::default()
        },
        ..GillConfig::default()
    };
    let analysis = GillAnalysis::run_with_categories(&stream, &cats, &cfg);

    // R = redundant updates, split in time
    let redundant: Vec<&BgpUpdate> = stream
        .updates
        .iter()
        .zip(&analysis.component1.redundant)
        .filter_map(|(u, &r)| r.then_some(u))
        .collect();
    let mid = redundant.len() / 2;
    let (r1, r2) = redundant.split_at(mid);
    println!(
        "|R| = {} → |R1| = {}, |R2| = {}",
        redundant.len(),
        r1.len(),
        r2.len()
    );

    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for (name, g) in [
        ("GILL (vp, prefix)", FilterGranularity::VpPrefix),
        ("GILL-asp (+ AS path)", FilterGranularity::VpPrefixPath),
        (
            "GILL-asp-comm (+ communities)",
            FilterGranularity::VpPrefixPathComms,
        ),
    ] {
        let f = FilterSet::generate([], r1.iter().copied(), g);
        let matched = r2.iter().filter(|u| !f.accepts(u)).count();
        let rate = matched as f64 / r2.len().max(1) as f64;
        rates.push(rate);
        rows.push(vec![name.to_string(), f.num_rules().to_string(), pct(rate)]);
    }
    print_table(
        "§7 ablation — share of future redundant updates matched (paper: 87% / 43% / 0%)",
        &["filter granularity", "rules", "R2 matched"],
        &rows,
    );
    write_csv(
        "ablation_filters",
        &["granularity", "rules", "matched"],
        &rows,
    );

    assert!(
        rates[0] > rates[1] && rates[1] >= rates[2],
        "coarser filters must generalize better: {rates:?}"
    );
    assert!(
        rates[0] > 0.5,
        "coarse filters should match most of R2: {}",
        rates[0]
    );
    println!("\nShape check passed: coarse > asp > asp-comm, as in the paper.");
}
