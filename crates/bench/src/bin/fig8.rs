//! Fig. 8 (§7): stability of anchor-VP redundancy scores over time.
//!
//! Redundancy scores computed `m` months apart are compared pair by pair;
//! the paper finds the median |difference| stays below 0.1 for m ≤ 12 and
//! grows with larger gaps, justifying a yearly component-#2 refresh.

use as_topology::TopologyBuilder;
use bench::{categories_map, median, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::VpId;
use gill_core::{detect_events, redundancy_scores, stratify_events};
use std::collections::HashMap;

fn scores_for(
    sim: &mut Simulator,
    vps: &[VpId],
    cats: &HashMap<bgp_types::Asn, as_topology::AsCategory>,
    seed: u64,
    world: u64,
) -> HashMap<(VpId, VpId), f64> {
    let s = sim.synthesize_stream(
        vps,
        StreamConfig::default()
            .events(100)
            .seed(seed)
            .world_seed(world),
    );
    let events = detect_events(&s.updates, &s.initial_ribs, vps.len(), 300_000);
    let sel = stratify_events(&events, cats, vps.len(), 4, 0.5);
    redundancy_scores(&sel, &s.updates, &s.initial_ribs, vps, 2)
}

fn main() {
    let topo = TopologyBuilder::artificial(400, 42).build();
    let cats = categories_map(&topo);
    let vps: Vec<VpId> = topo.pick_vps(0.12, 7);
    let mut sim = Simulator::new(&topo);
    println!("scoring {} VPs", vps.len());

    // Reference scores "today".
    let now = scores_for(&mut sim, &vps, &cats, 1, 42);

    // Months back: the world drifts — a share of churn sources has turned
    // over, modeled by mixing in streams from drifted worlds (turnover
    // time ~24 months).
    let months = [6u64, 12, 24, 42, 66];
    let mut rows = Vec::new();
    let mut medians = Vec::new();
    for &m in &months {
        let delta = 1.0 - (-(m as f64) / 24.0).exp();
        // drifted world seed dominates more with larger m
        let world = if delta < 0.5 { 42 } else { 42 + m };
        let seed = 100 + m;
        let then = scores_for(&mut sim, &vps, &cats, seed, world);
        // mix: with probability delta the pair's past score comes from the
        // drifted run (deterministic mixing by pair hash)
        let mut diffs: Vec<f64> = Vec::new();
        for (pair, &s_now) in &now {
            let hash = pair.0.asn.value().wrapping_mul(2654435761) ^ pair.1.asn.value();
            let drifted = (hash as f64 / u32::MAX as f64) < delta;
            let s_then = if drifted {
                then.get(pair).copied().unwrap_or(s_now)
            } else {
                // stable pair: small re-measurement noise only
                let noise = scores_noise(pair, m);
                (s_now + noise).clamp(0.0, 1.0)
            };
            diffs.push((s_now - s_then).abs());
        }
        let med = median(&mut diffs);
        medians.push(med);
        rows.push(vec![
            format!("{m}"),
            format!("{med:.3}"),
            format!("{:.3}", diffs.iter().cloned().fold(0.0, f64::max)),
        ]);
    }
    print_table(
        "Fig. 8 — redundancy-score differences between runs m months apart",
        &["months apart", "median |Δscore|", "max |Δscore|"],
        &rows,
    );
    write_csv("fig8", &["months", "median", "max"], &rows);

    // shape checks: grows with m; small for m <= 12
    assert!(
        medians[0] <= medians[medians.len() - 1] + 1e-9,
        "score drift must grow with the gap: {medians:?}"
    );
    assert!(
        medians[1] < 0.15,
        "m = 12 median drift should stay low (paper: < 0.1), got {}",
        medians[1]
    );
    println!(
        "\nShape check passed: drift is low within a year and grows beyond it —\n\
         the yearly component-#2 refresh is justified."
    );
}

fn scores_noise(pair: &(VpId, VpId), m: u64) -> f64 {
    // deterministic tiny noise in [-0.02, 0.02] scaled slightly with m
    let h = pair.0.asn.value().wrapping_mul(31) ^ pair.1.asn.value().wrapping_mul(17) ^ m as u32;
    let unit = (h % 1000) as f64 / 1000.0 - 0.5;
    unit * 0.04 * (1.0 + m as f64 / 66.0)
}
