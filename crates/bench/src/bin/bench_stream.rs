//! Streaming-broker benchmark: fan-out scaling of the publish path and
//! end-to-end delivery latency. Writes `BENCH_stream.json`.
//!
//! The tentpole claim measured here: because frames are encoded once at
//! publish and the wake path is gated on a waiter count, the *publish
//! path* does O(1) work in the number of subscribers — its cost moves by
//! at most 10% going from 1 to 256 attached subscribers.
//!
//! Two phases per subscriber count, so the measurement survives
//! single-core CI boxes where concurrent drain would bill subscriber CPU
//! to the publisher through the scheduler:
//!
//! 1. **publish**: N subscriptions attached (the broker sees them and
//!    pays its per-publish accounting) but held at a barrier; the
//!    publisher replays the whole 50k-update stream flat-out into a ring
//!    sized to hold it. This times exactly the publish path.
//! 2. **drain**: the barrier drops and every subscriber consumes every
//!    frame; aggregate frames/sec is the fan-out throughput.
//!
//! Delivery latency is measured separately with a *paced* publisher
//! (1 ms/frame) racing live subscribers, reporting publish→deliver
//! p50/p99 as seen by one designated subscriber.
//!
//! Usage: `bench_stream [n_updates] [runs]` (defaults: 50000, 3).

use gill_stream::{BrokerConfig, Delivery, SlowPolicy, StreamBroker, StreamFilter};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

struct Row {
    subscribers: usize,
    publish_secs: f64,
    publish_frames_per_sec: f64,
    drain_secs: f64,
    fanout_frames_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Phase 1 + 2: timed flat-out publish with `n_subs` attached-but-gated
/// subscriptions, then a timed full drain. Best publish time over `runs`.
fn run_fanout(updates: &[bgp_types::BgpUpdate], n_subs: usize, runs: usize) -> (f64, f64) {
    let n = updates.len();
    let mut best_publish = f64::INFINITY;
    let mut best_drain = f64::INFINITY;
    for _ in 0..runs.max(1) {
        // capacity > stream length: the drain phase replays everything
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: (n + 2).next_power_of_two(),
            max_subscribers: n_subs,
        });
        let gate = Arc::new(Barrier::new(n_subs + 1));
        let handles: Vec<_> = (0..n_subs)
            .map(|_| {
                let mut sub = broker
                    .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
                    .expect("under cap");
                let gate = gate.clone();
                std::thread::spawn(move || {
                    gate.wait();
                    let mut count = 0u64;
                    loop {
                        match sub.poll_next() {
                            Delivery::Frame(_) => count += 1,
                            Delivery::Gap(_) => panic!("ring sized to never gap"),
                            Delivery::Overrun { .. } => panic!("skip policy"),
                            Delivery::Pending => std::thread::yield_now(),
                            Delivery::Closed => break,
                        }
                    }
                    count
                })
            })
            .collect();

        let t0 = Instant::now();
        for u in updates {
            broker.publish(u).expect("subscribers attached");
        }
        let publish_secs = t0.elapsed().as_secs_f64();
        broker.close();

        gate.wait();
        let t1 = Instant::now();
        let delivered: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let drain_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            delivered,
            ((n + 1) * n_subs) as u64,
            "every subscriber sees every frame + eos"
        );
        best_publish = best_publish.min(publish_secs);
        best_drain = best_drain.min(drain_secs);
    }
    (best_publish, best_drain)
}

/// Paced concurrent run: publish→deliver latency under live fan-out.
fn run_latency(updates: &[bgp_types::BgpUpdate], n_subs: usize) -> (f64, f64) {
    let n = updates.len();
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: (n + 2).next_power_of_two(),
        max_subscribers: n_subs,
    });
    let handles: Vec<_> = (0..n_subs)
        .map(|si| {
            let mut sub = broker
                .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
                .expect("under cap");
            std::thread::spawn(move || {
                // subscriber 0 stamps receives; the rest only count
                let mut stamps: Vec<(u64, Instant)> = Vec::new();
                loop {
                    match sub.next_timeout(Duration::from_millis(50)) {
                        Delivery::Frame(f) => {
                            if si == 0 {
                                stamps.push((f.seq, Instant::now()));
                            }
                        }
                        Delivery::Gap(_) => panic!("ring sized to never gap"),
                        Delivery::Overrun { .. } => panic!("skip policy"),
                        Delivery::Pending => continue,
                        Delivery::Closed => break,
                    }
                }
                stamps
            })
        })
        .collect();
    let mut sent = Vec::with_capacity(n);
    for u in updates {
        // stamp *before* publish: the woken subscribers may run (and stamp
        // their receive time) before the publisher is scheduled again
        sent.push(Instant::now());
        broker.publish(u).expect("subscribers attached");
        std::thread::sleep(Duration::from_millis(1));
    }
    broker.close();
    let mut lat: Vec<Duration> = Vec::new();
    for h in handles {
        for (seq, recv) in h.join().expect("subscriber thread") {
            // the final eos frame has no send stamp
            if let Some(&s) = sent.get(seq as usize) {
                lat.push(recv.duration_since(s));
            }
        }
    }
    lat.sort();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * p) as usize;
        lat[idx].as_secs_f64() * 1e6
    };
    (pct(0.50), pct(0.99))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    eprintln!("synthesizing {n}-update replay stream ...");
    let updates = bench::synth_query_stream(n, 8, 400, 4 * 3_600_000, 7);
    let lat_updates = &updates[..updates.len().min(500)];

    let mut rows = Vec::new();
    for &subs in &[1usize, 16, 256] {
        eprintln!("fan-out to {subs} subscriber(s), {runs} runs ...");
        let (publish_secs, drain_secs) = run_fanout(&updates, subs, runs);
        eprintln!("paced latency run, {subs} subscriber(s) ...");
        let (p50_us, p99_us) = run_latency(lat_updates, subs);
        rows.push(Row {
            subscribers: subs,
            publish_secs,
            publish_frames_per_sec: n as f64 / publish_secs,
            drain_secs,
            fanout_frames_per_sec: ((n + 1) * subs) as f64 / drain_secs,
            p50_us,
            p99_us,
        });
    }

    let base = rows[0].publish_secs;
    let worst = rows
        .iter()
        .map(|r| r.publish_secs)
        .fold(f64::NEG_INFINITY, f64::max);
    let slowdown_pct = (worst / base - 1.0) * 100.0;
    assert!(
        slowdown_pct <= 10.0,
        "publish path slowed {slowdown_pct:.1}% from 1 to 256 subscribers (bar: 10%)"
    );

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"subscribers\": {}, \"publish_secs\": {:.4}, \"publish_frames_per_sec\": {:.1}, \"drain_secs\": {:.4}, \"fanout_frames_per_sec\": {:.1}, \"latency_us\": {{ \"p50\": {:.1}, \"p99\": {:.1} }} }}",
                r.subscribers,
                r.publish_secs,
                r.publish_frames_per_sec,
                r.drain_secs,
                r.fanout_frames_per_sec,
                r.p50_us,
                r.p99_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"n_updates\": {n},\n  \"runs\": {runs},\n  \"latency_run_updates\": {},\n  \"fanout\": [\n{}\n  ],\n  \"publish_slowdown_1_to_256_pct\": {slowdown_pct:.2},\n  \"peak_rss_kb\": {}\n}}\n",
        lat_updates.len(),
        row_json.join(",\n"),
        peak_rss_kb()
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    print!("{json}");
    eprintln!("wrote BENCH_stream.json");
}
