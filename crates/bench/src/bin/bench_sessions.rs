//! Evented-runtime session scale: thousands of concurrent loopback BGP
//! sessions multiplexed by [`EventedPool`] on a small fixed worker set,
//! sustaining ingest through the compiled filter path into the route
//! store and the stream broker. Writes `BENCH_sessions.json`.
//!
//! The accounting contract is the same one `bench_bmp` enforces —
//! `decoded == retained + filtered + shed`, the queue drains exactly to
//! the store, the sink sees exactly the filter-accepted stream, and the
//! subscriber's gaps are counted — plus the accept-cap shed path: with
//! every session slot held, `REJECT_DIALS` extra dials each get a
//! NOTIFICATION Cease and are counted, never threaded.
//!
//! Determinism over real sockets: arrival *order* across workers is
//! scheduler-dependent, so the digest folds per-update FNV-1a line
//! hashes with a commutative sum (after zeroing the arrival timestamp)
//! — the retained *multiset* is deterministic even though the interleave
//! is not. For the same reason the storage queue is sized above the run
//! total: a shed would be real nondeterminism, so here `shed == 0` is
//! part of the contract (bench_bmp covers the shed-under-line-rate
//! path deterministically on a virtual clock).
//!
//! Usage: `bench_sessions [n_sessions]` (default 2048; ≥2,000 is the
//! tentpole target, served by 4 event-loop workers).

use gill::collector::daemon::{handshake_client, DaemonConfig, MessageStream};
use gill::collector::{Storage, StoredUpdate};
use gill::core::{FilterGranularity, FilterSet};
use gill::query::RouteStore;
use gill::runtime::{EventedPool, RuntimeConfig};
use gill::scenario::{update_line, Fnv64};
use gill::stream::{
    BrokerConfig, Delivery, FramePayload, SlowPolicy, StreamBroker, StreamFilter, Subscription,
};
use gill::types::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use gill::wire::{BgpMessage, Notification, UpdateMessage};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Event-loop workers multiplexing every session (the tentpole bound
/// is ≤8; four is the deployment default).
const WORKERS: usize = 4;

/// Client-side driver threads (each owns a contiguous slice of
/// sessions; not part of the worker budget under test).
const CLIENT_THREADS: usize = 8;

/// Updates each session announces.
const UPDATES_PER_SESSION: usize = 64;

/// Extra dials made while every session slot is held; each must be
/// rejected with NOTIFICATION Cease and counted.
const REJECT_DIALS: usize = 64;

/// Every `FILTER_STRIDE`-th update trains a drop rule, so the compiled
/// path does real work and `filtered` is exactly predictable.
const FILTER_STRIDE: usize = 9;

/// Bytes written per session per round-robin pass, so all of a driver
/// thread's sessions stay concurrently in flight.
const WRITE_CHUNK: usize = 1024;

/// Drains retained updates into the route store while folding an
/// order-independent digest: each update's canonical line is hashed
/// alone and the 64-bit hashes are summed (wrapping), so two runs that
/// retain the same multiset digest identically regardless of which
/// worker delivered what first. The arrival timestamp is zeroed first —
/// it is wall-clock, the only host-dependent field in the line.
#[derive(Default)]
struct DigestStore {
    store: RouteStore,
    fold: u64,
    count: usize,
}

impl Storage for DigestStore {
    fn store(&mut self, mut rec: StoredUpdate) {
        rec.update.time = Timestamp::from_millis(0);
        let mut h = Fnv64::new();
        h.write_line(&update_line(&rec.update));
        self.fold = self.fold.wrapping_add(h.finish());
        self.count += 1;
        self.store.ingest(rec.update);
    }

    fn stored(&self) -> usize {
        self.count
    }
}

struct RunResult {
    concurrent: usize,
    decoded: usize,
    retained: usize,
    filtered: usize,
    shed: usize,
    published: usize,
    stream_shed: usize,
    sub_frames: u64,
    sub_missed: u64,
    stored_routes: usize,
    rejected: usize,
    secs: f64,
    digest: String,
}

fn drain_sub(sub: &mut Subscription, frames: &mut u64, missed: &mut u64) {
    loop {
        match sub.poll_next() {
            Delivery::Frame(f) => match &f.payload {
                FramePayload::Update(_) => *frames += 1,
                FramePayload::Gap { missed: m } => *missed += m,
                FramePayload::Eos { .. } => {}
            },
            Delivery::Gap(f) => {
                if let FramePayload::Gap { missed: m } = &f.payload {
                    *missed += m;
                }
            }
            Delivery::Overrun { missed: m } => *missed += m,
            Delivery::Pending | Delivery::Closed => return,
        }
    }
}

/// Polls `cond` every 5 ms for up to `secs` seconds.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn session_asn(i: usize) -> u32 {
    60_000 + i as u32
}

/// One driver thread's life: handshake its slice, rendezvous, stream
/// the pre-encoded scripts in interleaved chunks, close gracefully.
fn run_clients(
    addr: SocketAddr,
    first: usize,
    scripts: &[Vec<u8>],
    cease: &[u8],
    barrier: &Barrier,
) {
    let mut conns = Vec::with_capacity(scripts.len());
    for (k, _) in scripts.iter().enumerate() {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, session_asn(first + k)).expect("handshake");
        conns.push(ms);
    }
    barrier.wait(); // all sessions up everywhere
    barrier.wait(); // main has verified concurrency + the reject path
    let mut off = vec![0usize; conns.len()];
    loop {
        let mut progressed = false;
        for (k, ms) in conns.iter_mut().enumerate() {
            let script = &scripts[k];
            if off[k] < script.len() {
                let end = (off[k] + WRITE_CHUNK).min(script.len());
                ms.transport_mut()
                    .write_all(&script[off[k]..end])
                    .expect("session write");
                off[k] = end;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for ms in &mut conns {
        ms.transport_mut().write_all(cease).expect("cease write");
    }
    let mut buf = [0u8; 4096];
    for ms in &mut conns {
        let t = ms.transport_mut();
        let _ = t.set_read_timeout(Some(Duration::from_secs(30)));
        loop {
            match t.read(&mut buf) {
                Ok(0) | Err(_) => break, // server processed our Cease
                Ok(_) => {}
            }
        }
    }
}

/// One full run: boot the evented pool, establish every session, hold
/// them all live while the cap sheds extra dials, then stream updates
/// and account for every one of them.
fn drive(n_sessions: usize, scripts: &[Vec<u8>], cease: &[u8], filters: &FilterSet) -> RunResult {
    let total = n_sessions * UPDATES_PER_SESSION;
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: 4_096,
        max_subscribers: 8,
    });
    let sub = broker
        .subscribe(StreamFilter::default(), SlowPolicy::SkipWithGapMarker)
        .expect("subscribe");
    let cfg = DaemonConfig {
        local_asn: 65_535,
        // larger than the whole run: a shed here would be scheduler
        // nondeterminism, not a measured property (see module docs)
        queue_capacity: total + 1_024,
        max_sessions: n_sessions,
        ..DaemonConfig::default()
    };
    let mut pool = EventedPool::start(
        cfg,
        RuntimeConfig {
            workers: WORKERS,
            bgp_addr: Some("127.0.0.1:0".into()),
            bmp: None,
        },
        Some(std::sync::Arc::new(broker.publisher())),
    )
    .expect("evented pool");
    pool.pool().install_filters(filters.clone());
    let addr = pool.bgp_addr().expect("bgp listener");
    let stats = pool.stats();

    let barrier = Barrier::new(CLIENT_THREADS + 1);
    let sub_stop = AtomicBool::new(false);
    let per_thread = n_sessions.div_ceil(CLIENT_THREADS);

    let (store, sub_counts, concurrent, secs) = std::thread::scope(|s| {
        let drain = s.spawn(|| {
            let mut st = DigestStore::default();
            pool.pool().drain_into(&mut st);
            st
        });
        let subscriber = s.spawn(|| {
            let mut sub = sub;
            let (mut frames, mut missed) = (0u64, 0u64);
            loop {
                drain_sub(&mut sub, &mut frames, &mut missed);
                if sub_stop.load(Ordering::Relaxed) {
                    drain_sub(&mut sub, &mut frames, &mut missed);
                    return (frames, missed);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let mut clients = Vec::new();
        for t in 0..CLIENT_THREADS {
            let first = t * per_thread;
            let last = ((t + 1) * per_thread).min(n_sessions);
            let slice = &scripts[first..last];
            let barrier = &barrier;
            clients.push(s.spawn(move || run_clients(addr, first, slice, cease, barrier)));
        }

        barrier.wait(); // every handshake done
        let concurrent = pool.active_sessions();
        assert_eq!(concurrent, n_sessions, "all sessions live at once");
        assert!(
            wait_for(30, || {
                stats.sessions_opened.load(Ordering::Relaxed) == n_sessions
            }),
            "sessions established: {} of {n_sessions}",
            stats.sessions_opened.load(Ordering::Relaxed)
        );
        // with every slot held, each extra dial is told to go away
        for d in 0..REJECT_DIALS {
            let stream = TcpStream::connect(addr).expect("reject dial");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut ms = MessageStream::new(stream);
            match ms.read_message() {
                Ok(Some(BgpMessage::Notification(n))) => {
                    assert_eq!(n.code, 6, "dial {d}: NOTIFICATION must be Cease");
                }
                other => panic!("dial {d}: expected NOTIFICATION Cease, got {other:?}"),
            }
        }
        assert!(
            wait_for(10, || {
                stats.accept_rejected.load(Ordering::Relaxed) == REJECT_DIALS
            }),
            "accept-cap sheds counted: {} of {REJECT_DIALS}",
            stats.accept_rejected.load(Ordering::Relaxed)
        );

        let t0 = Instant::now();
        barrier.wait(); // release the update phase
        assert!(
            wait_for(120, || {
                stats.received.load(Ordering::Relaxed) == total
                    && stats.sessions_closed.load(Ordering::Relaxed) == n_sessions
            }),
            "ingest complete: received {} of {total}, closed {} of {n_sessions}",
            stats.received.load(Ordering::Relaxed),
            stats.sessions_closed.load(Ordering::Relaxed),
        );
        let secs = t0.elapsed().as_secs_f64();

        for c in clients {
            c.join().expect("client thread");
        }
        pool.pool().request_stop(); // drain exits once the queue is dry
        let store = drain.join().expect("storage thread");
        sub_stop.store(true, Ordering::Relaxed);
        let sub_counts = subscriber.join().expect("subscriber thread");
        (store, sub_counts, concurrent, secs)
    });
    let load = |c: &std::sync::atomic::AtomicUsize| c.load(Ordering::Relaxed);
    let decoded = load(&stats.received);
    let retained = load(&stats.retained);
    let filtered = load(&stats.filtered);
    let shed = load(&stats.lost);
    let published = load(&stats.stream_published);
    let stream_shed = load(&stats.stream_shed);
    let rejected = load(&stats.accept_rejected);
    let (sub_frames, sub_missed) = sub_counts;
    pool.stop();
    let totals = pool.totals();

    // the exactness contracts: nothing uncounted anywhere in the path
    assert_eq!(decoded, total, "every sent update decoded");
    assert_eq!(decoded, retained + filtered + shed, "ingest accounting");
    assert_eq!(
        shed, 0,
        "queue sized above the run: shed means lost determinism"
    );
    assert_eq!(retained, store.count, "queue drained to the store");
    assert_eq!(
        published + stream_shed,
        retained + shed,
        "sink sees exactly the filter-accepted stream"
    );
    assert_eq!(
        sub_frames + sub_missed,
        published as u64,
        "subscriber gaps counted exactly"
    );
    assert_eq!(rejected, REJECT_DIALS, "every over-cap dial counted");
    assert_eq!(totals.accept_shed, REJECT_DIALS, "loop-side shed counter");
    assert_eq!(
        totals.accepted, n_sessions,
        "every session admitted to a loop"
    );
    assert_eq!(totals.sessions, 0, "all sessions drained on stop");

    let mut digest = Fnv64::new();
    digest.write_line(&format!("fold={:016x} n={}", store.fold, store.count));
    digest.write_line(&format!(
        "decoded={decoded} retained={retained} filtered={filtered} shed={shed} \
         rejected={rejected}"
    ));
    RunResult {
        concurrent,
        decoded,
        retained,
        filtered,
        shed,
        published,
        stream_shed,
        sub_frames,
        sub_missed,
        stored_routes: store.count,
        rejected,
        secs,
        digest: format!("{:016x}", digest.finish()),
    }
}

fn main() {
    let n_sessions: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_048);

    // one VP per session; (vp, prefix) pairs are globally unique so the
    // trained drop rules each match exactly one update
    let updates: Vec<Vec<BgpUpdate>> = (0..n_sessions)
        .map(|i| {
            let asn = session_asn(i);
            let vp = VpId::from_asn(Asn(asn));
            (0..UPDATES_PER_SESSION)
                .map(|u| {
                    UpdateBuilder::announce(vp, Prefix::synthetic(u as u32))
                        .path([asn, 2, 3])
                        .build()
                })
                .collect()
        })
        .collect();
    let filters = FilterSet::generate(
        [],
        updates.iter().flatten().step_by(FILTER_STRIDE),
        FilterGranularity::VpPrefix,
    );
    let n_trained = (n_sessions * UPDATES_PER_SESSION).div_ceil(FILTER_STRIDE);

    // pre-encode every session's wire script (generation cost excluded
    // from the timed region)
    let scripts: Vec<Vec<u8>> = updates
        .iter()
        .map(|us| {
            let mut bytes = Vec::new();
            for u in us {
                let wire = UpdateMessage::from_domain(u).expect("domain update");
                bytes.extend_from_slice(&BgpMessage::Update(wire).encode_to_vec().expect("wire"));
            }
            bytes
        })
        .collect();
    let cease = BgpMessage::Notification(Notification::cease())
        .encode_to_vec()
        .expect("cease wire");

    // two identical runs: the determinism contract, checked end to end
    let a = drive(n_sessions, &scripts, &cease, &filters);
    let b = drive(n_sessions, &scripts, &cease, &filters);
    assert_eq!(
        a.digest, b.digest,
        "evented ingest must digest bit-identically across seeded runs"
    );
    assert_eq!(a.decoded, b.decoded);
    assert_eq!(a.filtered, n_trained, "each drop rule matched exactly once");
    assert!(a.filtered > 0, "compiled filters never dropped anything");

    let per_sec = a.decoded as f64 / a.secs.max(1e-9);
    let json = format!(
        "{{\n  \"sessions\": {n_sessions}, \"workers\": {WORKERS}, \"concurrent\": {}, \
         \"decoded\": {},\n  \"secs\": {:.2}, \"per_sec\": {per_sec:.0},\n  \
         \"accounting\": {{ \"retained\": {}, \"filtered\": {}, \"shed\": {}, \
         \"published\": {}, \"stream_shed\": {}, \"sub_frames\": {}, \"sub_missed\": {}, \
         \"stored_routes\": {}, \"accept_rejected\": {} }},\n  \"digest\": \"{}\"\n}}\n",
        a.concurrent,
        a.decoded,
        a.secs,
        a.retained,
        a.filtered,
        a.shed,
        a.published,
        a.stream_shed,
        a.sub_frames,
        a.sub_missed,
        a.stored_routes,
        a.rejected,
        a.digest,
    );
    std::fs::write("BENCH_sessions.json", &json).expect("write BENCH_sessions.json");
    eprintln!(
        "wrote BENCH_sessions.json ({n_sessions} sessions on {WORKERS} workers, \
         {per_sec:.0} updates/s, digest {})",
        a.digest
    );
    println!("{json}");
}
