//! Filter-engine throughput benchmark (the PR-4 acceptance gate).
//!
//! Builds a ≥100 k-rule `(VP, prefix)` drop table, then times four judges
//! over the same mixed hit/miss probe working set and writes
//! `BENCH_filters.json` into the working directory:
//!
//! 1. **reference** — the seed daemon hot path, exactly as
//!    `gill-collector` shipped it before the compiled engine: an
//!    `Arc<RwLock<FilterSet>>` read acquisition plus
//!    [`gill_core::FilterSet::accepts`] (SipHash `HashSet` probes for the
//!    anchor set and the drop table) on every update.
//! 2. **reference (unlocked)** — bare `FilterSet::accepts`, isolating the
//!    lock cost from the hash cost.
//! 3. **compiled** — [`gill_core::CompiledFilters::accepts`]: one
//!    multiply-mix hash into an open-addressed `u32` slot index over
//!    sorted rule storage, sorted-`Vec` binary search for anchors.
//! 4. **view** — [`gill_core::FilterView::judge`], the exact session hot
//!    path: compiled probe plus the per-update epoch load.
//!
//! All judges must agree on every probe (asserted). The probe working set
//! cycles over a fixed pool so both engines are measured on the judge
//! itself, not on streaming the probe array through memory — the daemon
//! judges each update right after parsing it, while it is cache-hot. A
//! parallel section runs one `FilterView` per thread to show reader
//! scaling (no locks on the hot path), and a swap section times `compile`
//! and `publish` separately. Peak RSS comes from `/proc/self/status`
//! (`VmHWM`).
//!
//! Usage: `bench_filters [n_rules] [n_probes] [runs]`
//! (defaults: 100000, 4000000, 3).

use bgp_types::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use gill_core::{CompiledFilters, FilterGranularity, FilterHandle, FilterSet};
use std::sync::Arc;
use std::time::Instant;

/// Probes cycled during timing. Large enough to defeat trivial branch
/// memorization, small enough that the pool itself stays cache-resident.
const PROBE_POOL: usize = 4096;

const N_VPS: u32 = 256;
const N_ANCHORS: u32 = 10;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Best-of-`runs` wall time of `f`, plus the value of the last run.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        value = Some(v);
    }
    (value.unwrap(), best)
}

fn update(vp: u32, prefix: u32) -> BgpUpdate {
    UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(prefix))
        .at(Timestamp::from_secs(1))
        .path([vp, 174, 3356])
        .build()
}

/// `n_rules` distinct `(VP, prefix)` drop keys spread over the non-anchor
/// VPs — the shape §7's orchestrator produces at GILL's granularity.
fn training_stream(n_rules: usize) -> Vec<BgpUpdate> {
    (0..n_rules as u32)
        .map(|i| update(N_ANCHORS + 1 + (i % (N_VPS - N_ANCHORS - 1)), i))
        .collect()
}

/// Distinct rule keys the hit probes draw from — the Zipf head. BGP
/// update churn is heavily skewed toward a small set of unstable
/// prefixes, and GILL's drop rules target exactly those high-redundancy
/// streams (§5), so the hit keys a daemon actually judges concentrate on
/// a hot head while the table stays ≥100k rules deep.
const HOT_RULES: usize = 1024;

/// Mixed probe pool: half replay drop rules from the hot head (hits), a
/// quarter miss on a fresh prefix, a quarter are anchor-VP updates
/// (always accepted).
fn probe_pool(n_probes: usize, n_rules: usize) -> Vec<BgpUpdate> {
    (0..n_probes as u32)
        .map(|i| match i % 4 {
            0 | 1 => {
                let r = (i as usize * 2654435761 % HOT_RULES.min(n_rules.max(1))) as u32;
                update(N_ANCHORS + 1 + (r % (N_VPS - N_ANCHORS - 1)), r)
            }
            2 => update(
                N_ANCHORS + 1 + (i % (N_VPS - N_ANCHORS - 1)),
                n_rules as u32 + i,
            ),
            _ => update(1 + (i % N_ANCHORS), i),
        })
        .collect()
}

/// Judges `total` updates by cycling the pool; returns how many dropped.
fn count_dropped(probes: &[BgpUpdate], total: usize, judge: impl Fn(&BgpUpdate) -> bool) -> usize {
    let mut dropped = 0;
    let mut done = 0;
    while done < total {
        let take = probes.len().min(total - done);
        // branchless accumulation: the judged verdict feeds an add, not a
        // data-dependent branch, so the loop measures the judge itself
        for u in &probes[..take] {
            dropped += !judge(u) as usize;
        }
        done += take;
    }
    dropped
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_rules: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let n_probes: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    eprintln!("building {n_rules}-rule VpPrefix table ...");
    let anchors: Vec<VpId> = (1..=N_ANCHORS).map(|a| VpId::from_asn(Asn(a))).collect();
    let train = training_stream(n_rules);
    let fs = FilterSet::generate(anchors, train.iter(), FilterGranularity::VpPrefix);
    assert!(fs.num_rules() >= n_rules.min(n_rules), "table built short");
    let probes = probe_pool(PROBE_POOL, fs.num_rules());

    let ((compiled, compile_secs), _) = best_of(1, || {
        let t0 = Instant::now();
        let c = CompiledFilters::compile(&fs, 1);
        let secs = t0.elapsed().as_secs_f64();
        (c, secs)
    });
    let handle = FilterHandle::new(&fs);
    let view = handle.view();

    // every judge must agree on every probe before any timing counts
    for u in &probes {
        let expect = fs.accepts(u);
        assert_eq!(compiled.accepts(u), expect, "compiled diverges on {u}");
        assert_eq!(view.judge(u).0, expect, "view diverges on {u}");
    }

    // the seed daemon hot path: RwLock read + accepts, per update
    let locked: Arc<parking_lot::RwLock<FilterSet>> =
        Arc::new(parking_lot::RwLock::new(fs.clone()));
    eprintln!("reference: RwLock<FilterSet> read + accepts ({runs} runs) ...");
    let (dropped_ref, t_ref) = best_of(runs, || {
        count_dropped(&probes, n_probes, |u| locked.read().accepts(u))
    });
    eprintln!("reference (unlocked): FilterSet::accepts ...");
    let (dropped_unl, t_unl) =
        best_of(runs, || count_dropped(&probes, n_probes, |u| fs.accepts(u)));
    eprintln!("compiled: CompiledFilters::accepts ...");
    let (dropped_cmp, t_cmp) = best_of(runs, || {
        count_dropped(&probes, n_probes, |u| compiled.accepts(u))
    });
    eprintln!("view: FilterView::judge (session hot path) ...");
    let (dropped_view, t_view) = best_of(runs, || {
        count_dropped(&probes, n_probes, |u| view.judge(u).0)
    });
    assert_eq!(dropped_ref, dropped_unl);
    assert_eq!(dropped_ref, dropped_cmp);
    assert_eq!(dropped_ref, dropped_view);

    // reader scaling: one view per thread, no locks to contend on
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("parallel: {threads} views ...");
    let (dropped_par, t_par) = best_of(runs, || {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let handle = &handle;
                    let probes = &probes;
                    s.spawn(move || {
                        let view = handle.view();
                        count_dropped(probes, n_probes, |u| view.judge(u).0)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
    });
    assert_eq!(dropped_par, dropped_ref * threads);

    // swap cost: publish is a pointer store, independent of table size
    let next = handle.compile_next(&fs);
    let (_, t_publish) = best_of(64, || handle.publish(next.clone()));

    let ups = |secs: f64, n: usize| n as f64 / secs;
    let json = format!(
        "{{\n  \"n_rules\": {},\n  \"n_probes\": {n_probes},\n  \"probe_pool\": {PROBE_POOL},\n  \"hot_rules\": {HOT_RULES},\n  \"runs\": {runs},\n  \"granularity\": \"vp-prefix\",\n  \"anchors\": {N_ANCHORS},\n  \"dropped\": {dropped_ref},\n  \"reference\": {{ \"secs\": {t_ref:.6}, \"updates_per_sec\": {:.1} }},\n  \"reference_unlocked\": {{ \"secs\": {t_unl:.6}, \"updates_per_sec\": {:.1} }},\n  \"compiled\": {{ \"secs\": {t_cmp:.6}, \"updates_per_sec\": {:.1}, \"speedup_vs_reference\": {:.2}, \"speedup_vs_unlocked\": {:.2} }},\n  \"view\": {{ \"secs\": {t_view:.6}, \"updates_per_sec\": {:.1}, \"speedup_vs_reference\": {:.2} }},\n  \"parallel\": {{ \"threads\": {threads}, \"secs\": {t_par:.6}, \"updates_per_sec\": {:.1} }},\n  \"swap\": {{ \"compile_secs\": {compile_secs:.6}, \"publish_us\": {:.3} }},\n  \"identical_outputs\": true,\n  \"peak_rss_kb\": {}\n}}\n",
        fs.num_rules(),
        ups(t_ref, n_probes),
        ups(t_unl, n_probes),
        ups(t_cmp, n_probes),
        t_ref / t_cmp,
        t_unl / t_cmp,
        ups(t_view, n_probes),
        t_ref / t_view,
        ups(t_par, n_probes * threads),
        t_publish * 1e6,
        peak_rss_kb()
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    std::fs::write("BENCH_filters.json", &json).expect("write BENCH_filters.json");
    print!("{json}");
    eprintln!("wrote BENCH_filters.json");
}
