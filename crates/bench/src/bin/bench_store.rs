//! Store-compression benchmark: the arena-interned, copy-on-write store vs
//! the uncompressed [`ReferenceStore`], plus sealed-segment cold start.
//! Writes `BENCH_store.json`.
//!
//! The tentpole claim measured here: at the same update stream, the
//! interned store holds at least 4× more updates per GB of resident memory
//! than the reference store (whose read paths it reproduces bit-for-bit —
//! see `tests/store_equivalence.rs`).
//!
//! Each store mode runs in its own child process (`--child <mode> <n>`)
//! so resident-memory deltas are measured in a clean heap, unpolluted by
//! the other mode's allocations. The parent collects the per-mode JSON
//! lines, computes the compression ratio, and enforces the gate.
//!
//! Usage: `bench_store [n_updates] [gate_ratio]` (defaults: 1000000, 4.0;
//! a gate of 0 disables the assertion).

use bgp_types::Timestamp;
use gill_query::{ReferenceStore, RouteStore, StoreConfig};
use std::time::Instant;

const N_VPS: u32 = 8;
const N_PREFIXES: u32 = 2_000;
const SPAN_MS: u64 = 4 * 3_600_000;
const SEED: u64 = 7;

fn vm_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .unwrap_or(0)
        * 1024
}

/// Median `rib_at` latency in µs over one probe per VP at 16 times inside
/// `(from_ms, to_ms]` — probing earlier history exercises older snapshots
/// and different replay depths.
fn rib_at_us(
    probe: impl Fn(bgp_types::VpId, Timestamp) -> Option<usize>,
    from_ms: u64,
    to_ms: u64,
) -> f64 {
    let mut samples = Vec::new();
    for vp_asn in 65_000..65_000 + N_VPS {
        let vp = bgp_types::VpId::from_asn(bgp_types::Asn(vp_asn));
        for i in 1..=16u64 {
            let t = Timestamp::from_millis(from_ms + (to_ms - from_ms) * i / 16);
            let t0 = Instant::now();
            let len = probe(vp, t);
            let dt = t0.elapsed().as_secs_f64() * 1e6;
            if len.is_some() {
                samples.push(dt);
            }
        }
    }
    bench::median(&mut samples)
}

fn updates_per_gb(n: usize, rss_delta: u64) -> f64 {
    n as f64 / (rss_delta.max(1) as f64 / 1e9)
}

/// `--child reference|interned <n>`: build one store, print one JSON line.
/// The RSS delta brackets the ingest loop alone; latency probes run after
/// the measurement so their transient `Rib` materializations (which glibc
/// keeps in its arenas) cannot inflate the store's resident footprint.
fn run_child(mode: &str, n: usize) {
    enum AnyStore {
        Reference(Box<ReferenceStore>),
        Interned(Box<RouteStore>),
    }
    let rss0 = vm_rss_bytes();
    let t0 = Instant::now();
    let store = match mode {
        "reference" => {
            let mut store = ReferenceStore::new(StoreConfig::default());
            bench::for_each_churn_update(n, N_VPS, N_PREFIXES, SPAN_MS, SEED, |u| store.ingest(u));
            AnyStore::Reference(Box::new(store))
        }
        "interned" => {
            let mut store = RouteStore::new(StoreConfig::default());
            bench::for_each_churn_update(n, N_VPS, N_PREFIXES, SPAN_MS, SEED, |u| store.ingest(u));
            AnyStore::Interned(Box::new(store))
        }
        other => panic!("unknown child mode {other:?}"),
    };
    let ingest_secs = t0.elapsed().as_secs_f64();
    let rss_delta = vm_rss_bytes() - rss0;

    // `rib_at` latency vs how far back the probe reaches: quarter-span
    // buckets from oldest history to the live edge.
    let (latest_ms, extra) = match &store {
        AnyStore::Reference(s) => (s.latest_time().as_millis(), String::new()),
        AnyStore::Interned(s) => {
            let m = s.mem_stats();
            (
                s.latest_time().as_millis(),
                format!(
                    ", \"bytes_resident\": {}, \"dedup_ratio\": {:.2}, \"arena_entries\": {}",
                    m.bytes_resident,
                    m.dedup_ratio,
                    m.arena_paths + m.arena_comm_sets + m.arena_link_sets
                ),
            )
        }
    };
    let probe = |vp, t| match &store {
        AnyStore::Reference(s) => s.rib_at(vp, t).map(|r| r.len()),
        AnyStore::Interned(s) => s.rib_at(vp, t).map(|r| r.len()),
    };
    let mut by_age = Vec::new();
    for q in 0..4u64 {
        let (from, to) = (latest_ms * q / 4, latest_ms * (q + 1) / 4);
        by_age.push(format!(
            "{{ \"until_ms\": {to}, \"us\": {:.1} }}",
            rib_at_us(probe, from, to)
        ));
    }
    let overall = rib_at_us(probe, 0, latest_ms);
    println!(
        "{{ \"mode\": \"{mode}\", \"n\": {n}, \"rss_bytes\": {rss_delta}, \
         \"updates_per_gb\": {:.0}, \"ingest_per_sec\": {:.0}, \"rib_at_us\": {overall:.1}, \
         \"rib_at_us_by_age\": [{}], \"latest_ms\": {latest_ms}{extra} }}",
        updates_per_gb(n, rss_delta),
        n as f64 / ingest_secs,
        by_age.join(", "),
    );
}

/// `--child sealed <n>`: seal the stream to disk, reload it cold, report
/// segment size and replay time.
fn run_child_sealed(n: usize) {
    let dir = std::env::temp_dir().join(format!("gill-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut store = RouteStore::new(StoreConfig::default());
    bench::for_each_churn_update(n, N_VPS, N_PREFIXES, SPAN_MS, SEED, |u| store.ingest(u));
    let t0 = Instant::now();
    store.seal_all_into(&dir).unwrap().expect("segment written");
    let seal_ms = t0.elapsed().as_secs_f64() * 1e3;
    let segment_bytes: u64 = gill_query::segment::list_segments(&dir)
        .unwrap()
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    drop(store);

    let t0 = Instant::now();
    let mut cold = RouteStore::new(StoreConfig::default());
    let replayed = cold.load_dir(&dir).unwrap();
    let cold_start_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(replayed, n, "cold start must replay the full stream");
    let us = rib_at_us(
        |vp, t| cold.rib_at(vp, t).map(|r| r.len()),
        0,
        cold.latest_time().as_millis(),
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "{{ \"mode\": \"sealed\", \"n\": {n}, \"seal_ms\": {seal_ms:.1}, \
         \"segment_bytes\": {segment_bytes}, \"bytes_per_update\": {:.1}, \
         \"cold_start_ms\": {cold_start_ms:.1}, \"replay_per_sec\": {:.0}, \
         \"rib_at_us\": {us:.1} }}",
        segment_bytes as f64 / n as f64,
        n as f64 / (cold_start_ms / 1e3),
    );
}

/// Extracts a numeric field from one of our own child JSON lines.
fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = json.find(&pat).map(|i| i + pat.len()).unwrap_or_else(|| {
        panic!("field {key:?} missing from child output: {json}");
    });
    json[start..]
        .split([',', '}'])
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("field {key:?} not numeric in: {json}"))
}

fn spawn_child(mode: &str, n: usize) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    eprintln!("running {mode} child ({n} updates) ...");
    let out = std::process::Command::new(exe)
        .args(["--child", mode, &n.to_string()])
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "{mode} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let line = String::from_utf8(out.stdout).expect("child output utf8");
    line.trim().to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        let mode = args.get(1).expect("child mode");
        let n: usize = args.get(2).and_then(|s| s.parse().ok()).expect("child n");
        if mode == "sealed" {
            run_child_sealed(n);
        } else {
            run_child(mode, n);
        }
        return;
    }

    let n: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let gate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4.0);

    let reference = spawn_child("reference", n);
    let interned = spawn_child("interned", n);
    let sealed = spawn_child("sealed", n);

    let ref_upg = field(&reference, "updates_per_gb");
    let int_upg = field(&interned, "updates_per_gb");
    let ratio = int_upg / ref_upg;

    let json = format!(
        "{{\n  \"n_updates\": {n},\n  \"gate_ratio\": {gate},\n  \
         \"updates_per_gb_ratio\": {ratio:.2},\n  \"reference\": {reference},\n  \
         \"interned\": {interned},\n  \"sealed\": {sealed}\n}}\n"
    );
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    print!("{json}");
    eprintln!("wrote BENCH_store.json (interned holds {ratio:.2}x more updates per GB)");
    assert!(
        gate <= 0.0 || ratio >= gate,
        "updates/GB ratio {ratio:.2}x below the {gate}x gate"
    );
}
