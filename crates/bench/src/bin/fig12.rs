//! Fig. 12 (§18.1): balanced vs random event selection across the five AS
//! categories. The balanced scheme fills each category-pair cell equally;
//! random selection over-represents the categories that generate the most
//! churn.

use as_topology::TopologyBuilder;
use bench::{categories_map, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use gill_core::{category_matrix, detect_events, stratify_events};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const CATS: [&str; 5] = ["Stub", "Transit-1", "Transit-2", "Hypergiant", "Tier-1"];

fn matrix_rows(m: &[[f64; 5]; 5]) -> Vec<Vec<String>> {
    (0..5)
        .map(|i| {
            let mut row = vec![CATS[i].to_string()];
            row.extend((0..5).map(|j| format!("{:.2}", m[i][j])));
            row
        })
        .collect()
}

fn main() {
    let topo = TopologyBuilder::artificial(1000, 42).build();
    let cats = categories_map(&topo);
    let vps = topo.pick_vps(0.4, 7);
    let mut sim = Simulator::new(&topo);
    // several windows to accumulate plenty of events
    let mut all_events = Vec::new();
    let mut updates = Vec::new();
    for seed in 0..4u64 {
        let s = sim.synthesize_stream(&vps, StreamConfig::default().events(120).seed(seed));
        let ev = detect_events(&s.updates, &s.initial_ribs, s.vps.len(), 300_000);
        all_events.extend(ev);
        updates.extend(s.updates);
    }
    println!("detected {} candidate events", all_events.len());

    // --- balanced (GILL) ---------------------------------------------------
    let balanced = stratify_events(&all_events, &cats, vps.len(), 10, 0.5);
    let mb = category_matrix(&balanced, &cats);
    print_table(
        &format!("Fig. 12a — balanced selection ({} events)", balanced.len()),
        &["", "Stub", "Tr-1", "Tr-2", "Hyper", "T1"],
        &matrix_rows(&mb),
    );

    // --- random --------------------------------------------------------------
    let mut rng = SmallRng::seed_from_u64(99);
    let mut shuffled = all_events.clone();
    shuffled.shuffle(&mut rng);
    shuffled.truncate(balanced.len().max(1));
    let mr = category_matrix(&shuffled, &cats);
    print_table(
        &format!("Fig. 12b — random selection ({} events)", shuffled.len()),
        &["", "Stub", "Tr-1", "Tr-2", "Hyper", "T1"],
        &matrix_rows(&mr),
    );
    write_csv(
        "fig12_balanced",
        &["row", "c1", "c2", "c3", "c4", "c5"],
        &matrix_rows(&mb),
    );
    write_csv(
        "fig12_random",
        &["row", "c1", "c2", "c3", "c4", "c5"],
        &matrix_rows(&mr),
    );

    // --- bias metric: max cell share (paper: random concentrates mass) -----
    let max_cell = |m: &[[f64; 5]; 5]| {
        m.iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().skip(i))
            .fold(0.0f64, |mx, &v| mx.max(v))
    };
    let bal_max = max_cell(&mb);
    let rnd_max = max_cell(&mr);
    println!(
        "\nlargest cell share: balanced {bal_max:.2} vs random {rnd_max:.2} \
         (balanced must spread mass more evenly)"
    );
    assert!(
        bal_max <= rnd_max + 1e-9,
        "balanced selection more concentrated than random?"
    );
}
