//! Table 2 (§10): GILL's sampling vs every baseline on the five use
//! cases, at equal update budget.
//!
//! Protocol mirrors the paper: GILL trains on a past window; each scheme
//! then samples several one-hour evaluation windows (paper: 30; scaled to
//! 6 here) with the budget set to the volume GILL naturally retains; each
//! use case scores the fraction of full-stream events still detectable
//! from the sample. Scores are averaged over windows.

use as_topology::TopologyBuilder;
use bench::{categories_map, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig, UpdateStream};
use gill_core::{AnchorConfig, GillAnalysis, GillConfig, RedundancyDef};
use sampling::{
    AsDistance, DefSpecific, GillSampler, GillVariant, ObjectiveSpecific, RandomUpdates, RandomVps,
    Sampler, Unbiased,
};
use use_cases::{ActionCommunities, MoasDetection, TopologyMapping, TransientPaths, UnchangedPath};

const WINDOWS: u64 = 6;

/// Workload with a realistic repetitive-churn floor: most events hit a
/// small flappy subset (as in real feeds), with rarer interesting events
/// (hijacks, origin changes) on top.
fn churny(events: usize, duration: u64) -> StreamConfig {
    let mut c = StreamConfig::default()
        .events(events)
        .duration_secs(duration);
    // interesting events (hijacks, origin changes) are a small minority of
    // real-world churn; most updates are repetitive failure/restore and
    // community noise from a small flappy subset
    c.weights = [0.55, 0.03, 0.04, 0.38];
    c.flappy_fraction = 0.04;
    c.flappy_weight = 0.93;
    c
}

struct UseCases {
    transient: TransientPaths,
    moas: MoasDetection,
    topo: TopologyMapping,
    action: ActionCommunities,
    unchanged: UnchangedPath,
}

impl UseCases {
    fn new(stream: &UpdateStream) -> Self {
        UseCases {
            transient: TransientPaths::new(stream),
            moas: MoasDetection::new(stream),
            topo: TopologyMapping::new(stream),
            action: ActionCommunities::new(stream),
            unchanged: UnchangedPath::new(stream),
        }
    }

    fn score_all(&self, stream: &UpdateStream, sample: &[usize]) -> [f64; 5] {
        [
            self.transient.score(stream, sample),
            self.moas.score(stream, sample),
            self.topo.score(stream, sample),
            self.action.score(stream, sample),
            self.unchanged.score(stream, sample),
        ]
    }
}

fn main() {
    let topo = TopologyBuilder::artificial(500, 42).build();
    let cats = categories_map(&topo);
    let vps = topo.pick_vps(0.3, 7);
    let mut sim = Simulator::new(&topo);

    // --- train GILL on a past window --------------------------------------
    let cfg = GillConfig {
        anchor: AnchorConfig {
            events_per_cell: 4,
            ..AnchorConfig::default()
        },
        ..GillConfig::default()
    };
    // the training window must cover the recurring churn space the way two
    // days of RIS/RV data do: long window, churn concentrated on flappy
    // sources
    let train = sim.synthesize_stream(&vps, churny(500, 18_000).seed(0));
    let analysis = GillAnalysis::run_with_categories(&train, &cats, &cfg);
    let gill = GillSampler::from_analysis(&analysis, &train, GillVariant::Full);
    let gill_upd = GillSampler::from_analysis(&analysis, &train, GillVariant::UpdOnly);
    let gill_vp = GillSampler::from_analysis(&analysis, &train, GillVariant::VpOnly);
    println!(
        "trained: {:.0}% redundant, {} anchors",
        analysis.component1.redundant_fraction() * 100.0,
        analysis.component2.anchors.len()
    );

    // use-case-based specific samplers (overfit by construction)
    let spec_transient = ObjectiveSpecific::new("I", |s: &UpdateStream, idx: &[usize]| {
        use_cases::transient::detect(s, idx).len() as f64
    });
    let spec_moas = ObjectiveSpecific::new("II", |s: &UpdateStream, idx: &[usize]| {
        use_cases::moas::detect(s, idx).len() as f64
    });
    let spec_topo = ObjectiveSpecific::new("III", |s: &UpdateStream, idx: &[usize]| {
        use_cases::topomap::observed_links(s, idx).len() as f64
    });
    let spec_action = ObjectiveSpecific::new("IV", |s: &UpdateStream, idx: &[usize]| {
        use_cases::action_comms::detect(s, idx).len() as f64
    });
    let spec_unchanged = ObjectiveSpecific::new("V", |s: &UpdateStream, idx: &[usize]| {
        use_cases::unchanged::detect(s, idx).len() as f64
    });

    let samplers: Vec<&dyn Sampler> = vec![
        &gill,
        &gill_upd,
        &gill_vp,
        &RandomUpdates,
        &RandomVps,
        &AsDistance,
        // Unbiased constructed below (needs owned categories)
    ];
    let unbiased = Unbiased::new(cats.clone());
    let d1 = DefSpecific::new(RedundancyDef::Def1);
    let d2 = DefSpecific::new(RedundancyDef::Def2);
    let d3 = DefSpecific::new(RedundancyDef::Def3);
    let mut all: Vec<&dyn Sampler> = samplers;
    all.push(&unbiased);
    all.push(&d1);
    all.push(&d2);
    all.push(&d3);
    all.push(&spec_transient);
    all.push(&spec_moas);
    all.push(&spec_topo);
    all.push(&spec_action);
    all.push(&spec_unchanged);

    // --- evaluate over windows ---------------------------------------------
    let mut totals: Vec<[f64; 5]> = vec![[0.0; 5]; all.len()];
    let mut budget_share = 0.0;
    for w in 0..WINDOWS {
        let eval = sim.synthesize_stream(&vps, churny(160, 5_400).seed(100 + w));
        let ucs = UseCases::new(&eval);
        let budget = gill.sample(&eval, usize::MAX, w).len();
        budget_share += budget as f64 / eval.updates.len() as f64;
        for (si, s) in all.iter().enumerate() {
            let sample = s.sample(&eval, budget, w);
            let scores = ucs.score_all(&eval, &sample);
            for (t, v) in totals[si].iter_mut().zip(scores) {
                *t += v;
            }
        }
    }
    println!(
        "budget = GILL's natural volume ≈ {:.1}% of each window",
        budget_share / WINDOWS as f64 * 100.0
    );

    let headers = [
        "scheme",
        "I transient",
        "II MOAS",
        "III topo",
        "IV action-comm",
        "V unchanged",
    ];
    let rows: Vec<Vec<String>> = all
        .iter()
        .zip(&totals)
        .map(|(s, t)| {
            let mut row = vec![s.name()];
            row.extend(
                t.iter()
                    .map(|v| format!("{:.0}%", v / WINDOWS as f64 * 100.0)),
            );
            row
        })
        .collect();
    print_table(
        "Table 2 — detection scores at equal budget",
        &headers,
        &rows,
    );
    write_csv("table2", &headers, &rows);

    // --- the paper's takeaways as assertions --------------------------------
    let avg = |i: usize| totals[i].iter().sum::<f64>() / (5.0 * WINDOWS as f64);
    let gill_avg = avg(0);
    println!("\nTakeaway checks:");
    // #2: GILL beats each naive baseline on average
    for (i, name) in [
        (3, "Rnd.-Upd"),
        (4, "Rnd.-VP"),
        (5, "AS-Dist."),
        (6, "Unbiased"),
    ] {
        let b = avg(i);
        println!("  GILL {gill_avg:.2} vs {name} {b:.2}");
        assert!(
            gill_avg > b - 0.02,
            "GILL must not lose to {name} on average"
        );
    }
    // #3: definition-based specifics underperform GILL on average
    for i in [7, 8, 9] {
        assert!(
            gill_avg > avg(i) - 0.05,
            "GILL must match/beat Def specifics"
        );
    }
    // #1: full GILL beats both simplified variants on average
    assert!(gill_avg >= avg(1) - 0.02 && gill_avg >= avg(2) - 0.02);
    println!("  all takeaway checks passed");
}
