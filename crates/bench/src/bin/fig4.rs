//! Fig. 4 (§3.1): what a given VP coverage lets you see — observed AS
//! links (bottom), localized link failures (middle), detected forged-origin
//! hijacks (top) — as a function of the percentage of ASes hosting a VP.
//!
//! Topologies follow §3: a pruned CAIDA-like graph (6k ASes for
//! links/hijacks, 1k for the costlier failure localization — scaled to
//! 2000/600 here so the sweep runs in minutes on a laptop) and artificial
//! topologies (3 seeds, median reported; the paper uses 10).

use as_topology::{Topology, TopologyBuilder};
use bench::{median, pct, print_table, write_csv};
use use_cases::failloc::static_campaign;
use use_cases::hijack::static_detection;
use use_cases::topomap::static_link_coverage;

const COVERAGES: [f64; 10] = [0.005, 0.01, 0.02, 0.05, 0.10, 0.15, 0.25, 0.50, 0.75, 1.0];

fn nodes_at(topo: &Topology, coverage: f64, seed: u64) -> Vec<u32> {
    topo.pick_vps(coverage, seed)
        .iter()
        .filter_map(|v| topo.index_of(v.asn))
        .collect()
}

fn main() {
    let art_seeds = [1u64, 2, 3];
    let arts: Vec<Topology> = art_seeds
        .iter()
        .map(|&s| TopologyBuilder::artificial(1500, s).build())
        .collect();
    let pruned_big = TopologyBuilder::caida_like(4000, 42).prune_to(2000).build();
    let pruned_small = TopologyBuilder::caida_like(1500, 42).prune_to(600).build();
    println!(
        "topologies: pruned CAIDA-like {} / {} ASes, {} artificial x {} ASes",
        pruned_big.num_ases(),
        pruned_small.num_ases(),
        arts.len(),
        arts[0].num_ases()
    );

    let mut rows = Vec::new();
    for &cov in &COVERAGES {
        // --- topology mapping (artificial median + pruned) -----------------
        let mut p2ps = Vec::new();
        let mut c2ps = Vec::new();
        for (i, t) in arts.iter().enumerate() {
            let nodes = nodes_at(t, cov, 10 + i as u64);
            let (p, c) = static_link_coverage(t, &nodes);
            p2ps.push(p);
            c2ps.push(c);
        }
        let nodes = nodes_at(&pruned_big, cov, 5);
        let (pp, pc) = static_link_coverage(&pruned_big, &nodes);

        // --- failure localization (smaller topology, fewer trials) ---------
        let nodes = nodes_at(&pruned_small, cov, 6);
        let fc = static_campaign(&pruned_small, &nodes, 120, 7);

        // --- hijack detection ----------------------------------------------
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        for (i, t) in arts.iter().enumerate() {
            let nodes = nodes_at(t, cov, 20 + i as u64);
            let victims: Vec<u32> = (0..200u32).map(|k| (k * 7) % t.num_ases() as u32).collect();
            h1.push(static_detection(t, &nodes, &victims, 1, 30 + i as u64).rate());
            h2.push(static_detection(t, &nodes, &victims, 2, 30 + i as u64).rate());
        }

        rows.push(vec![
            pct(cov),
            pct(median(&mut p2ps)),
            pct(median(&mut c2ps)),
            pct(pp),
            pct(pc),
            pct(fc.p2p_rate()),
            pct(fc.c2p_rate()),
            pct(median(&mut h1)),
            pct(median(&mut h2)),
        ]);
    }
    print_table(
        "Fig. 4 — visibility vs VP coverage (art = artificial median, pruned = CAIDA-like)",
        &[
            "coverage",
            "p2p links (art)",
            "c2p links (art)",
            "p2p links (pruned)",
            "c2p links (pruned)",
            "failures p2p",
            "failures c2p",
            "Type-1 hijacks",
            "Type-2 hijacks",
        ],
        &rows,
    );
    write_csv(
        "fig4",
        &[
            "coverage",
            "p2p_art",
            "c2p_art",
            "p2p_pruned",
            "c2p_pruned",
            "fail_p2p",
            "fail_c2p",
            "hijack_t1",
            "hijack_t2",
        ],
        &rows,
    );

    // --- the paper's two key observations, as assertions -------------------
    let get =
        |r: usize, c: usize| -> f64 { rows[r][c].trim_end_matches('%').parse::<f64>().unwrap() };
    let i1 = 1; // ~1% coverage row
    let i50 = 7; // 50% coverage row
    println!("\nKey observation #1 (1% coverage is poor):");
    println!(
        "  1% coverage sees {:.0}% of p2p links, localizes {:.0}% of p2p failures,\n  \
         detects {:.0}% of Type-1 hijacks (paper: 16%, 10%, 76%).",
        get(i1, 1),
        get(i1, 5),
        get(i1, 7)
    );
    println!("Key observation #2 (50% coverage is good):");
    println!(
        "  50% coverage sees {:.0}% of p2p links, localizes {:.0}% of p2p failures,\n  \
         detects {:.0}% of Type-1 hijacks (paper: 90%, 95%, 96%).",
        get(i50, 1),
        get(i50, 5),
        get(i50, 7)
    );
    assert!(
        get(i50, 1) > get(i1, 1) * 2.0,
        "p2p visibility must grow strongly"
    );
    assert!(get(i1, 7) < 100.0, "some hijacks must be invisible at 1%");
    assert!(get(i50, 7) > get(i1, 7), "hijack detection must improve");
}
