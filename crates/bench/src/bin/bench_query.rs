//! Query-store benchmark: snapshot+replay vs full replay, lookup latency,
//! and HTTP throughput vs store size. Writes `BENCH_query.json`.
//!
//! The tentpole claim measured here: with the default snapshot cadence,
//! `rib_at` (latest snapshot + bounded replay) reconstructs historical RIBs
//! at least 5× faster than replaying the VP's whole update lane from
//! scratch. The full-replay baseline is the same store configured to never
//! snapshot, so both sides run identical `Rib::apply` code.
//!
//! Usage: `bench_query [n_updates] [runs]` (defaults: 50000, 3).

use gill_query::{serve, MatchMode, RouteStore, ServerConfig, StoreConfig};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

use bgp_types::{Prefix, Timestamp};

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Best-of-`runs` wall time of `f`, plus the value of the last run.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        value = Some(v);
    }
    (value.unwrap(), best)
}

fn build_store(updates: &[bgp_types::BgpUpdate], cfg: StoreConfig) -> RouteStore {
    let mut store = RouteStore::new(cfg);
    for u in updates {
        store.ingest(u.clone());
    }
    store
}

/// Reconstructs one RIB per (vp, probe) pair — snapshot lookup + bounded
/// replay, no materialization — returning total entries as a sink so the
/// work cannot be optimized away.
fn rib_probes(store: &RouteStore, probes: &[(bgp_types::VpId, Timestamp)]) -> usize {
    probes
        .iter()
        .map(|&(vp, t)| store.rib_len_at(vp, t).unwrap_or(0))
        .sum()
}

/// Same probes through the full `rib_at` path, materialized `Rib` included
/// (what the `/rib?at=` endpoint pays per request).
fn rib_probes_materialized(store: &RouteStore, probes: &[(bgp_types::VpId, Timestamp)]) -> usize {
    probes
        .iter()
        .map(|&(vp, t)| store.rib_at(vp, t).map(|r| r.len()).unwrap_or(0))
        .sum()
}

/// One blocking HTTP GET against the server; returns true on a 200.
fn http_get(addr: std::net::SocketAddr, target: &str) -> bool {
    let Ok(mut s) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    if write!(
        s,
        "GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .is_err()
    {
        return false;
    }
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).is_ok() && buf.starts_with(b"HTTP/1.1 200")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let n_vps = 8u32;
    let n_prefixes = 400u32;
    let span_ms = 4 * 3_600_000u64; // 4 h of stream time → ~60 snapshot windows
    eprintln!("synthesizing {n}-update stream ...");
    let updates = bench::synth_query_stream(n, n_vps, n_prefixes, span_ms, 7);

    let cfg = StoreConfig::default();
    eprintln!("building snapshotted store ({runs} runs) ...");
    let (store, t_build) = best_of(runs, || build_store(&updates, cfg));
    let no_snap_cfg = StoreConfig {
        snapshot_every_shards: u64::MAX, // window id is always 0: never snapshots
        ..cfg
    };
    eprintln!("building no-snapshot baseline store ...");
    let full_store = build_store(&updates, no_snap_cfg);
    assert_eq!(
        full_store.stats().snapshots,
        0,
        "baseline must not snapshot"
    );
    let stats = store.stats();

    // One probe per VP at each of 16 times spread over the span.
    let t_max = store.latest_time().as_millis();
    let probes: Vec<_> = store
        .vps()
        .into_iter()
        .flat_map(|(vp, _)| (1..=16u64).map(move |i| (vp, Timestamp::from_millis(t_max * i / 16))))
        .collect();
    let mean_depth = probes
        .iter()
        .filter_map(|&(vp, t)| store.replay_depth(vp, t))
        .sum::<usize>() as f64
        / probes.len() as f64;
    let mean_full_depth = probes
        .iter()
        .filter_map(|&(vp, t)| full_store.replay_depth(vp, t))
        .sum::<usize>() as f64
        / probes.len() as f64;

    eprintln!("rib_at: snapshot+replay over {} probes ...", probes.len());
    let (sink_snap, t_snap) = best_of(runs, || rib_probes(&store, &probes));
    eprintln!("rib_at: full replay over {} probes ...", probes.len());
    let (sink_full, t_full) = best_of(runs, || rib_probes(&full_store, &probes));
    assert_eq!(
        sink_snap, sink_full,
        "snapshot+replay RIBs diverge from full replay"
    );
    // End-to-end `rib_at` (materialized `Rib`, what `/rib?at=` pays) is
    // reported separately: materialization is a fixed output-encoding cost
    // common to both reconstruction strategies, so the speedup gate below
    // compares the reconstruction work the snapshots actually bound.
    let (sink_mat, t_mat) = best_of(runs, || rib_probes_materialized(&store, &probes));
    assert_eq!(sink_mat, sink_snap, "materialized RIBs diverge");
    let speedup = t_full / t_snap;
    eprintln!(
        "rib_at: snap {:.1}us/probe, full {:.1}us/probe, materialized {:.1}us/probe, \
         speedup {speedup:.2}x (mean depth {mean_depth:.0} vs {mean_full_depth:.0})",
        t_snap * 1e6 / probes.len() as f64,
        t_full * 1e6 / probes.len() as f64,
        t_mat * 1e6 / probes.len() as f64,
    );

    // Live looking-glass lookup latency, ns/op over a query mix.
    let queries: Vec<Prefix> = (0..n_prefixes).map(Prefix::synthetic).collect();
    let lookup_ns = |mode: MatchMode| {
        let iters = 50usize;
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            for q in &queries {
                sink += store.lookup(q, mode, None).len();
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / (iters * queries.len()) as f64;
        (ns, sink)
    };
    eprintln!("live lookups ...");
    let (exact_ns, s1) = lookup_ns(MatchMode::Exact);
    let (lpm_ns, s2) = lookup_ns(MatchMode::Longest);
    let (ms_ns, s3) = lookup_ns(MatchMode::MoreSpecific);
    assert!(s1 + s2 + s3 > 0, "lookups must return routes");

    // HTTP throughput vs store size: sequential-per-thread closed loop,
    // 4 client threads, fresh connection per request (the server is
    // connection-per-request by design).
    let mut http_rows = Vec::new();
    for &size in &[n / 4, n / 2, n] {
        let sub = build_store(&updates[..size], cfg);
        let shared = Arc::new(parking_lot::RwLock::new(sub));
        let mut server =
            serve("127.0.0.1:0", ServerConfig::default(), shared).expect("bind bench server");
        let addr = server.local_addr();
        let threads = 4usize;
        let per_thread = 100usize;
        eprintln!(
            "http: {size}-update store, {} requests ...",
            threads * per_thread
        );
        let t0 = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                std::thread::spawn(move || {
                    let mut ok = 0usize;
                    for i in 0..per_thread {
                        let pfx = Prefix::synthetic(((ti * per_thread + i) % 400) as u32);
                        if http_get(addr, &format!("/routes?prefix={pfx}&match=lpm")) {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let ok: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let secs = t0.elapsed().as_secs_f64();
        server.stop();
        assert_eq!(ok, threads * per_thread, "all requests must succeed");
        http_rows.push(format!(
            "    {{ \"store_updates\": {size}, \"requests\": {}, \"secs\": {secs:.4}, \"req_per_sec\": {:.1} }}",
            threads * per_thread,
            (threads * per_thread) as f64 / secs
        ));
    }

    assert!(
        speedup >= 5.0,
        "snapshot+replay speedup {speedup:.2}x below the 5x bar"
    );

    let json = format!(
        "{{\n  \"n_updates\": {n},\n  \"runs\": {runs},\n  \"store\": {{ \"shard_width_ms\": {}, \"snapshot_every_shards\": {}, \"vps\": {}, \"shards\": {}, \"snapshots\": {}, \"live_prefixes\": {}, \"build_secs\": {t_build:.4} }},\n  \"rib_at\": {{\n    \"probes\": {},\n    \"snapshot_replay\": {{ \"secs\": {t_snap:.6}, \"ribs_per_sec\": {:.1}, \"mean_replay_depth\": {mean_depth:.1} }},\n    \"full_replay\": {{ \"secs\": {t_full:.6}, \"ribs_per_sec\": {:.1}, \"mean_replay_depth\": {mean_full_depth:.1} }},\n    \"materialized\": {{ \"secs\": {t_mat:.6}, \"ribs_per_sec\": {:.1} }},\n    \"speedup\": {speedup:.2}\n  }},\n  \"live_lookup_ns\": {{ \"exact\": {exact_ns:.1}, \"lpm\": {lpm_ns:.1}, \"more_specifics\": {ms_ns:.1} }},\n  \"http\": [\n{}\n  ],\n  \"peak_rss_kb\": {}\n}}\n",
        cfg.shard_width_ms,
        cfg.snapshot_every_shards,
        stats.vps,
        stats.shards,
        stats.snapshots,
        stats.live_prefixes,
        probes.len(),
        probes.len() as f64 / t_snap,
        probes.len() as f64 / t_full,
        probes.len() as f64 / t_mat,
        http_rows.join(",\n"),
        peak_rss_kb()
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
    print!("{json}");
    eprintln!("wrote BENCH_query.json");
}
