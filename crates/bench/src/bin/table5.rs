//! Table 5 (§18.1): the five AS categories used to stratify anchor-VP
//! event selection, censused on our CAIDA-like synthetic topology.

use as_topology::TopologyBuilder;
use bench::{print_table, write_csv};

fn main() {
    let topo = TopologyBuilder::caida_like(4000, 42).build();
    let rows: Vec<Vec<String>> = as_topology::categories::census(&topo)
        .into_iter()
        .map(|(cat, count, avg_deg)| {
            vec![
                cat.id().to_string(),
                cat.to_string(),
                count.to_string(),
                format!("{avg_deg:.0}"),
            ]
        })
        .collect();
    print_table(
        "Table 5 — AS categories (CAIDA-like synthetic topology, 4000 ASes)",
        &["ID", "Name", "# of ASes", "Avg. degree"],
        &rows,
    );
    write_csv("table5", &["id", "name", "count", "avg_degree"], &rows);

    // structural checks mirroring the paper's table: counts shrink and
    // degrees grow as the ID rises
    let counts: Vec<usize> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
    let degs: Vec<f64> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
    assert!(counts[0] > counts[2], "stubs outnumber Transit-2");
    assert!(degs[4] > degs[0], "Tier-1 degree above stub degree");
    println!("\nStubs dominate the census and average degree rises with the category ID,");
    println!("matching the shape of the paper's Table 5.");
}
