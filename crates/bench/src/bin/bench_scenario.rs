//! Scenario-engine and soak-pipeline throughput. Writes
//! `BENCH_scenario.json`.
//!
//! Two rates matter for the soak harness to stay useful in CI:
//!
//! * **generator throughput** — how fast the scenario engine synthesizes
//!   its merged background + campaign stream (updates/sec). If this ever
//!   drops near the pipeline's own rate the soak starts benchmarking the
//!   generator instead of the pipeline.
//! * **pipeline sustain** — end-to-end updates/sec through the full soak
//!   loop (wire codec, FSMs, compiled filters, both stores, broker,
//!   restart fork), i.e. what a CI minute of soaking actually buys.
//!
//! Usage: `bench_scenario [n_updates]` (default 200000).

use gill::soak::{run_soak, SoakConfig};
use gill_scenario::{
    BackgroundConfig, CampaignConfig, CampaignKind, ScenarioConfig, ScenarioEngine, World,
};
use std::time::Instant;

fn scenario(n: usize, seed: u64) -> ScenarioConfig {
    let world = World {
        n_vps: 8,
        n_prefixes: 256,
        seed: seed ^ 0xfeed,
        dual_stack: false,
    };
    let background = BackgroundConfig::default();
    let duration_ms = background.duration_for(n);
    let campaigns = CampaignKind::all()
        .iter()
        .enumerate()
        .map(|(i, &kind)| CampaignConfig {
            kind,
            start_ms: duration_ms * (i as u64 + 1) / 6,
            duration_ms: duration_ms / 12,
            n_targets: 32,
            repeats: 3,
            actor: 64_000 + i as u32,
            seed: seed ^ (0xbad + i as u64),
        })
        .collect();
    ScenarioConfig {
        world,
        background,
        duration_ms,
        campaigns,
        seed,
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    // 1. raw generator throughput (all five campaign kinds layered in)
    let cfg = scenario(n, 11);
    let t0 = Instant::now();
    let mut emitted = 0usize;
    let mut last_ms = 0u64;
    for item in ScenarioEngine::new(&cfg) {
        emitted += 1;
        last_ms = item.update.time.as_millis();
    }
    let gen_secs = t0.elapsed().as_secs_f64();
    let gen_rate = emitted as f64 / gen_secs;

    // 2. campaign generators alone, per kind
    let world = cfg.world;
    let mut campaign_rows = Vec::new();
    for kind in CampaignKind::all() {
        let ccfg = CampaignConfig {
            kind,
            start_ms: 0,
            duration_ms: 600_000,
            n_targets: 128,
            repeats: 16,
            actor: 64_777,
            seed: 5,
        };
        let t0 = Instant::now();
        let (updates, truth) = gill_scenario::generate_campaign(&world, &ccfg, 0);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(truth.emitted, updates.len());
        campaign_rows.push(format!(
            "{{ \"kind\": \"{}\", \"updates\": {}, \"per_sec\": {:.0} }}",
            kind.tag(),
            updates.len(),
            updates.len() as f64 / secs.max(1e-9)
        ));
    }

    // 3. end-to-end pipeline sustain through the soak driver
    let soak_n = (n / 8).max(5_000);
    let dir = std::env::temp_dir().join(format!("bench-scenario-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let soak_cfg = SoakConfig {
        seed: 11,
        background_updates: soak_n,
        data_dir: Some(dir.clone()),
        ..SoakConfig::default()
    };
    let t0 = Instant::now();
    let report = run_soak(&soak_cfg);
    let soak_secs = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.all_pass(), "soak invariants must hold under bench");
    let sustain = report.counters.received as f64 / soak_secs;

    let json = format!(
        "{{\n  \"generator\": {{ \"updates\": {emitted}, \"span_ms\": {last_ms}, \
         \"per_sec\": {gen_rate:.0} }},\n  \"campaigns\": [{}],\n  \"pipeline\": {{ \
         \"updates\": {}, \"kept\": {}, \"secs\": {soak_secs:.2}, \"sustain_per_sec\": \
         {sustain:.0}, \"digest\": \"{}\" }}\n}}\n",
        campaign_rows.join(", "),
        report.counters.received,
        report.counters.kept,
        report.digest,
    );
    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    eprintln!(
        "wrote BENCH_scenario.json (generator {gen_rate:.0}/s, pipeline sustain {sustain:.0}/s)"
    );
    println!("{json}");
}
