//! Table 1 (§8): update loss of the BGP daemons as a function of peer
//! count and update frequency, with and without GILL's filters.
//!
//! Real daemons, real TCP sessions on loopback, a shared storage thread
//! with a fixed per-record CPU cost (emulating the single-CPU disk-write
//! budget of the paper's M1 testbed). Peer counts and durations are scaled
//! down ~100x so the table completes in about a minute; the *structure* —
//! filters letting one CPU sustain roughly an order of magnitude more
//! peers — is the reproduction target.

use bench::{print_table, write_csv};
use bgp_types::{Asn, Prefix, UpdateBuilder, VpId};
use gill_collector::{
    run_fake_peer, DaemonConfig, DaemonPool, FakePeerConfig, MemoryStorage, SlowStorage, Storage,
};
use gill_core::{FilterGranularity, FilterSet};
use std::time::Duration;

/// Per-record storage cost: the single-CPU budget. At 1 ms per record, one
/// storage thread sustains ~1000 records/s.
const STORE_COST: Duration = Duration::from_micros(1000);
/// Fraction of each peer's update space covered by filters (GILL discards
/// ~90 % of RIS/RV updates, §6).
const FILTER_SHARE: f64 = 0.9;

fn run_cell(peers: usize, rate_per_sec: f64, with_filters: bool) -> (f64, usize, usize) {
    let mut pool = DaemonPool::start(
        "127.0.0.1:0",
        DaemonConfig {
            queue_capacity: 256,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let addr = pool.local_addr();
    let prefixes = 40u32;
    if with_filters {
        // filters that drop FILTER_SHARE of each peer's prefixes
        let cut = (prefixes as f64 * FILTER_SHARE) as u32;
        let mut templates = Vec::new();
        for k in 0..peers {
            let vp = VpId::from_asn(Asn(65001 + k as u32));
            for p in 0..cut {
                templates.push(
                    UpdateBuilder::announce(vp, Prefix::synthetic(p))
                        .path([65001 + k as u32, 2])
                        .build(),
                );
            }
        }
        pool.install_filters(FilterSet::generate(
            [],
            templates.iter(),
            FilterGranularity::VpPrefix,
        ));
    }
    // storage thread (the single-CPU budget) drains concurrently with the
    // peers; scoped threads let it borrow the pool
    let stored = std::thread::scope(|s| {
        let pool_ref = &pool;
        let drain = s.spawn(move || {
            let mut storage = SlowStorage::new(MemoryStorage::default(), STORE_COST);
            pool_ref.drain_into(&mut storage);
            storage.stored()
        });
        let handles: Vec<_> = (0..peers)
            .map(|k| {
                let cfg = FakePeerConfig {
                    asn: 65001 + k as u32,
                    rate_per_sec,
                    count: (rate_per_sec * 4.0) as usize, // ~4 s of traffic
                    prefixes,
                };
                std::thread::spawn(move || run_fake_peer(addr, &cfg))
            })
            .collect();
        for h in handles {
            let _ = h.join().unwrap();
        }
        // let in-flight messages settle, then release the drain thread
        std::thread::sleep(Duration::from_millis(500));
        pool_ref.request_stop();
        drain.join().unwrap()
    });
    pool.stop();
    let s = pool.stats();
    let rx = s.received.load(std::sync::atomic::Ordering::Relaxed);
    (s.loss_rate(), rx, stored)
}

fn main() {
    // scaled peer counts (paper: 100 / 1k / 10k) and the paper's two rates
    let peer_counts = [2usize, 8, 32];
    let rates = [("avg (28K upd/h)", 7.8f64), ("p99 (241K upd/h)", 67.0)];
    let mut rows = Vec::new();
    for with_filters in [true, false] {
        for &(label, rate) in &rates {
            let mut row = vec![
                if with_filters {
                    "with filters"
                } else {
                    "no filters"
                }
                .to_string(),
                label.to_string(),
            ];
            for &n in &peer_counts {
                let (loss, rx, _) = run_cell(n, rate, with_filters);
                row.push(if loss == 0.0 {
                    format!("0% ({rx} rx)")
                } else {
                    format!("{:.0}% ({rx} rx)", loss * 100.0)
                });
            }
            rows.push(row);
        }
    }
    let headers = ["mode", "update rate", "2 peers", "8 peers", "32 peers"];
    print_table(
        "Table 1 — update loss vs peer count (storage budget: 1 ms/record, scaled 100x down)",
        &headers,
        &rows,
    );
    write_csv("table1", &headers, &rows);

    // structure check: at the highest load, filters must lose (weakly) less
    let parse_loss = |cell: &str| -> f64 {
        cell.split('%')
            .next()
            .unwrap()
            .parse::<f64>()
            .unwrap_or(0.0)
    };
    let filt_worst = parse_loss(&rows[1][4]);
    let raw_worst = parse_loss(&rows[3][4]);
    println!(
        "\nworst-case loss: with filters {filt_worst:.0}% vs without {raw_worst:.0}% \
         — filters must not lose more."
    );
    assert!(filt_worst <= raw_worst + 1.0);
}
