//! §12 — immediate benefits: running GILL's sampling on existing feeds
//! improves three replicated studies at equal data volume.
//!
//! 1. **AS-relationship inference** (CAIDA dataset replication): GILL's
//!    sample infers more relationships than a fixed VP subset of the same
//!    volume, at comparable validation accuracy.
//! 2. **Customer cone sizes** (ASRank): GILL's more diverse paths reduce
//!    CCS errors.
//! 3. **DFOH** (forged-origin hijack inference): DFOH over GILL's sample
//!    vs over a random sample vs over all data (the ground-truth proxy).

use as_topology::TopologyBuilder;
use bench::{categories_map, print_table, vp_nodes, write_csv};
use bgp_sim::{Simulator, StreamConfig, UpdateStream};
use gill_core::{AnchorConfig, GillAnalysis, GillConfig};
use sampling::{GillSampler, GillVariant, RandomVps, Sampler};
use use_cases::asrel::{ccs_accuracy, infer_relationships, validate};
use use_cases::dfoh;

/// Paths (node indices) observable from a sample: sampled updates plus the
/// initial RIBs the scheme actually stores (anchors for GILL, the selected
/// VPs for whole-VP baselines).
fn paths_of_sample(
    topo: &as_topology::Topology,
    s: &UpdateStream,
    idx: &[usize],
    rib_vps: &std::collections::HashSet<bgp_types::VpId>,
) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut push_path = |p: &bgp_types::AsPath| {
        let nodes: Option<Vec<u32>> = p.hops().iter().map(|a| topo.index_of(*a)).collect();
        if let Some(n) = nodes {
            if n.len() >= 2 {
                out.push(n);
            }
        }
    };
    for &i in idx {
        push_path(&s.updates[i].path);
    }
    for vp in rib_vps {
        if let Some(rib) = s.initial_ribs.get(vp) {
            for (_, e) in rib.iter() {
                push_path(&e.path);
            }
        }
    }
    out
}

fn main() {
    let topo = TopologyBuilder::artificial(600, 42).build();
    let cats = categories_map(&topo);
    let vps = topo.pick_vps(0.35, 7);
    let _ = vp_nodes(&topo, &vps);
    let mut sim = Simulator::new(&topo);
    // realistic churn mix: heavy repetitive noise, rare interesting events
    let churny = |events: usize, duration: u64| {
        let mut c = StreamConfig::default()
            .events(events)
            .duration_secs(duration);
        c.weights = [0.55, 0.04, 0.05, 0.36];
        c.flappy_fraction = 0.04;
        c.flappy_weight = 0.93;
        c
    };
    let train = sim.synthesize_stream(&vps, churny(500, 18_000).seed(0));
    let cfg = GillConfig {
        anchor: AnchorConfig {
            events_per_cell: 4,
            ..AnchorConfig::default()
        },
        ..GillConfig::default()
    };
    let analysis = GillAnalysis::run_with_categories(&train, &cats, &cfg);
    let gill = GillSampler::from_analysis(&analysis, &train, GillVariant::Full);

    let eval = sim.synthesize_stream(&vps, churny(400, 14_400).seed(5));
    let all: Vec<usize> = (0..eval.updates.len()).collect();
    let gill_idx = gill.sample(&eval, usize::MAX, 1);
    let budget = gill_idx.len();
    // the "648 fixed VPs" stand-in: a fixed random VP subset at equal volume
    let fixed_idx = RandomVps.sample(&eval, budget, 99);
    println!(
        "budget: {budget} of {} updates ({:.0}%)",
        all.len(),
        budget as f64 / all.len() as f64 * 100.0
    );

    // --- 1. AS relationships -------------------------------------------------
    // updates-only corpora for both arms: the paper equalizes the number of
    // *updates* processed, and RIB availability would otherwise confound
    // the comparison in either direction
    let no_ribs = std::collections::HashSet::new();
    let anchor_ribs: std::collections::HashSet<bgp_types::VpId> =
        gill.anchors().iter().copied().collect();
    let fixed_ribs: std::collections::HashSet<bgp_types::VpId> =
        fixed_idx.iter().map(|&i| eval.updates[i].vp).collect();
    let g_paths = paths_of_sample(&topo, &eval, &gill_idx, &no_ribs);
    let f_paths = paths_of_sample(&topo, &eval, &fixed_idx, &no_ribs);
    let (gn, gc) = validate(&topo, &infer_relationships(&g_paths));
    let (fn_, fc) = validate(&topo, &infer_relationships(&f_paths));
    let rows = vec![
        vec![
            "fixed VP subset".into(),
            fn_.to_string(),
            format!("{:.1}%", fc as f64 / fn_.max(1) as f64 * 100.0),
        ],
        vec![
            "GILL sample".into(),
            gn.to_string(),
            format!("{:.1}%", gc as f64 / gn.max(1) as f64 * 100.0),
        ],
    ];
    print_table(
        "§12.1 — AS relationships inferred at equal volume (paper: +16% with equal accuracy)",
        &["input", "relationships inferred", "validation accuracy"],
        &rows,
    );
    write_csv("sec12_asrel", &["input", "inferred", "accuracy"], &rows);
    let gain = gn as f64 / fn_.max(1) as f64 - 1.0;
    println!(
        "GILL infers {:+.0}% relationships vs the fixed subset",
        gain * 100.0
    );
    assert!(gn >= fn_, "GILL must infer at least as many relationships");

    // --- 2. customer cones ----------------------------------------------------
    let (g_exact, g_err) = ccs_accuracy(&topo, g_paths);
    let (f_exact, f_err) = ccs_accuracy(&topo, f_paths);
    let rows = vec![
        vec![
            "fixed VP subset".into(),
            format!("{:.1}%", f_exact * 100.0),
            format!("{f_err:.1}"),
        ],
        vec![
            "GILL sample".into(),
            format!("{:.1}%", g_exact * 100.0),
            format!("{g_err:.1}"),
        ],
    ];
    print_table(
        "§12.2 — ASRank customer-cone replication (exactly correct CCS / mean abs error)",
        &["input", "CCS exactly correct", "mean |error|"],
        &rows,
    );
    write_csv("sec12_ccs", &["input", "exact", "mae"], &rows);
    assert!(
        g_exact >= f_exact - 0.02,
        "GILL CCS exactness {g_exact} must not trail fixed {f_exact}"
    );

    // --- 3. DFOH ---------------------------------------------------------------
    // each scheme's knowledge base includes the history it retained from
    // the training window (DFOH consults the platform's archive)
    let all_ribs: std::collections::HashSet<bgp_types::VpId> = eval.vps.iter().copied().collect();
    let history = |idx: &[usize]| -> Vec<bgp_types::AsPath> {
        idx.iter().map(|&i| train.updates[i].path.clone()).collect()
    };
    let gill_hist = history(&gill.sample(&train, usize::MAX, 7));
    let rnd_hist = history(&RandomVps.sample(&train, gill_hist.len(), 99));
    let all_hist = history(&(0..train.updates.len()).collect::<Vec<_>>());
    let d_all = dfoh::evaluate_with_kb(&eval, &all, &all_ribs, &all_hist);
    let d_gill = dfoh::evaluate_with_kb(&eval, &gill_idx, &anchor_ribs, &gill_hist);
    let d_rnd = dfoh::evaluate_with_kb(&eval, &fixed_idx, &fixed_ribs, &rnd_hist);
    let rows = vec![
        vec![
            "DFOH-ALL (truth proxy)".into(),
            d_all.cases.to_string(),
            format!("{:.1}%", d_all.tpr() * 100.0),
            format!("{:.1}%", d_all.fpr() * 100.0),
        ],
        vec![
            "DFOH-GILL".into(),
            d_gill.cases.to_string(),
            format!("{:.1}%", d_gill.tpr() * 100.0),
            format!("{:.1}%", d_gill.fpr() * 100.0),
        ],
        vec![
            "DFOH-R (random)".into(),
            d_rnd.cases.to_string(),
            format!("{:.1}%", d_rnd.tpr() * 100.0),
            format!("{:.1}%", d_rnd.fpr() * 100.0),
        ],
    ];
    print_table(
        "§12.3 — DFOH replication (paper: TPR 94% vs 71.5%, FPR 14.4% vs 60.1%)",
        &["version", "suspicious cases", "TPR", "FPR"],
        &rows,
    );
    write_csv("sec12_dfoh", &["version", "cases", "tpr", "fpr"], &rows);
    println!(
        "\nDFOH-GILL surfaces {} suspicious cases vs {} for DFOH-R (paper: 1708 vs 1300) —\n\
         the broader VP diversity of GILL's sample uncovers more cases to vet.\n\
         NOTE: our plausibility feature is a bare 2-hop common-neighbor test, far\n\
         weaker than DFOH's trained feature set, so the FPR side of the paper's\n\
         result does not transfer at this scale (see EXPERIMENTS.md).",
        d_gill.cases, d_rnd.cases
    );
    assert!(
        d_gill.tpr() >= d_rnd.tpr() - 0.05,
        "DFOH over GILL data must not trail the random sample in TPR"
    );
    assert!(
        d_gill.cases >= d_rnd.cases,
        "GILL's diverse sample must surface at least as many suspicious cases"
    );
}
