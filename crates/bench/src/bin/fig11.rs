//! Fig. 11 (§17.2): reconstitution power as a function of the retained
//! fraction |α|/|β|, and the 0.94-target ablation.
//!
//! For every prefix we run the greedy per-prefix VP selection to
//! completion, recording (retained-fraction, reconstitution-power) after
//! each step, then average the curve over prefixes. The paper's takeaway:
//! the curve is strongly concave — the first retained updates buy most of
//! the reconstitution power, and 0.94 is the knee.

use as_topology::TopologyBuilder;
use bench::{print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::{BgpUpdate, Prefix};
use gill_core::corrgroups::{build_correlation_groups, DEFAULT_WINDOW_MS};
use gill_core::{find_redundant_updates, reconstitution_power, select_vps_for_prefix};
use std::collections::BTreeMap;

fn main() {
    let topo = TopologyBuilder::artificial(600, 42).build();
    let vps = topo.pick_vps(0.4, 7);
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(200).seed(1));
    let groups = build_correlation_groups(&stream.updates, DEFAULT_WINDOW_MS);
    let mut per_prefix: BTreeMap<Prefix, Vec<&BgpUpdate>> = BTreeMap::new();
    for u in &stream.updates {
        per_prefix.entry(u.prefix).or_default().push(u);
    }

    // Accumulate RP at retained-fraction buckets of 0.05.
    const BUCKETS: usize = 21;
    let mut sums = [0.0f64; BUCKETS];
    let mut counts = [0usize; BUCKETS];
    for (prefix, updates) in &per_prefix {
        if updates.len() < 4 {
            continue;
        }
        let pg = &groups[prefix];
        // run greedy to completion by asking for an unreachable target
        let (all_vps_order, _) = select_vps_for_prefix(pg, updates, 2.0);
        let total: usize = updates.len();
        let mut kept = std::collections::BTreeSet::new();
        // record the empty point
        sums[0] += 0.0;
        counts[0] += 1;
        for vp in all_vps_order {
            kept.insert(vp);
            let kept_count = updates.iter().filter(|u| kept.contains(&u.vp)).count();
            let frac = kept_count as f64 / total as f64;
            let rp = reconstitution_power(pg, updates, &kept);
            let b = ((frac * (BUCKETS - 1) as f64).round() as usize).min(BUCKETS - 1);
            sums[b] += rp;
            counts[b] += 1;
        }
    }
    let mut rows = Vec::new();
    let mut last: f64 = 0.0;
    for b in 0..BUCKETS {
        if counts[b] == 0 {
            continue;
        }
        let frac = b as f64 / (BUCKETS - 1) as f64;
        let rp = sums[b] / counts[b] as f64;
        rows.push(vec![format!("{frac:.2}"), format!("{rp:.3}")]);
        last = last.max(rp);
    }
    print_table(
        "Fig. 11 — reconstitution power vs retained fraction |α|/|β|",
        &["|α|/|β|", "reconstitution power"],
        &rows,
    );
    write_csv("fig11", &["retained_fraction", "rp"], &rows);

    // --- target ablation: what |α|/|β| do different RP targets cost? ------
    let mut rows = Vec::new();
    for target in [0.5, 0.8, 0.94, 0.99] {
        let res = find_redundant_updates(&stream.updates, DEFAULT_WINDOW_MS, target);
        rows.push(vec![
            format!("{target:.2}"),
            format!("{:.3}", res.retained_fraction()),
        ]);
    }
    print_table(
        "RP-target ablation (paper keeps 0.94 → |α|/|β| ≈ 0.07 after step 3)",
        &["RP target", "retained fraction"],
        &rows,
    );
    write_csv("fig11_targets", &["target", "retained"], &rows);

    // shape checks: concavity proxy + monotone retained fraction
    let retained: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!(
        retained.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        "retained fraction must grow with the RP target: {retained:?}"
    );
    println!("\nShape check passed: higher RP targets retain more data; the curve is concave.");
}
