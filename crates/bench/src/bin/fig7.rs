//! Fig. 7 (§7): how long GILL's generated filters keep discarding
//! redundant updates as the routing system drifts.
//!
//! Filters are trained on day 0. For each later day `d` we synthesize a
//! test window whose event sources have drifted: a growing share of the
//! churn comes from links/origins outside the training world's flappy
//! subset (new instabilities appear, old ones heal). The matched share
//! decays with `d`; the paper picks a 16-day refresh as the knee.

use as_topology::TopologyBuilder;
use bench::{categories_map, pct, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use gill_core::{AnchorConfig, GillAnalysis, GillConfig};

fn main() {
    let topo = TopologyBuilder::artificial(600, 42).build();
    let cats = categories_map(&topo);
    let vps = topo.pick_vps(0.3, 7);
    let mut sim = Simulator::new(&topo);

    let cfg = GillConfig {
        anchor: AnchorConfig {
            events_per_cell: 4,
            ..AnchorConfig::default()
        },
        ..GillConfig::default()
    };
    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(150).seed(0));
    let analysis = GillAnalysis::run_with_categories(&train, &cats, &cfg);
    let filters = analysis.filter_set();
    println!(
        "trained on {} updates → {} drop rules, {} anchors",
        train.updates.len(),
        filters.num_rules(),
        analysis.component2.anchors.len()
    );

    // Churn drift: after d days, a fraction δ(d) of the event mass has
    // moved to previously-quiet links/origins (exponential turnover with a
    // ~90-day characteristic time, matching the paper's slow decay).
    let days = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for &d in &days {
        let delta = 1.0 - (-(d as f64) / 90.0).exp();
        let stable_events = (120.0 * (1.0 - delta)) as usize;
        let drifted_events = 120 - stable_events;
        // same world: familiar churn sources
        let stable = sim.synthesize_stream(
            &vps,
            StreamConfig::default().events(stable_events).seed(1000 + d),
        );
        // drifted world: new flappy subset
        let drifted = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(drifted_events)
                .seed(2000 + d)
                .world_seed(4242 + d),
        );
        let mut all = stable.updates.clone();
        all.extend(drifted.updates.iter().cloned());
        let rate = filters.discard_rate(&all);
        rates.push(rate);
        rows.push(vec![d.to_string(), pct(rate)]);
    }
    print_table(
        "Fig. 7 — share of updates matched (discarded) by day-0 filters",
        &["days after training", "matched updates"],
        &rows,
    );
    write_csv("fig7", &["days", "matched"], &rows);

    // shape checks: monotone decay, still useful at day 16, much weaker at 128
    for w in rates.windows(2) {
        assert!(w[1] <= w[0] + 0.08, "matched share must decay: {rates:?}");
    }
    assert!(
        rates[4] > rates[7],
        "day-16 filters must outperform day-128 filters: {rates:?}"
    );
    println!(
        "\nShape check passed: matched share decays with time since training;\n\
         the 16-day refresh keeps filters near their peak effectiveness."
    );
}
