//! Figs. 2–3 (§2): growth of the collection platforms.
//!
//! The paper's Fig. 2 shows VP growth (absolute counts up, *fraction* of
//! ASes flat at ~1 %); Fig. 3 shows per-VP update rates growing and the
//! compound per-hour total growing quadratically. We regenerate both
//! series from a platform-growth model calibrated to the paper's endpoint
//! values (2023: ~2.7k VPs across ~1.1 % of 74k ASes; 28k updates/h/VP;
//! ~150–250M updates/h total), then verify the quadratic compounding the
//! paper highlights (§3.2).

use bench::{print_table, write_csv};

fn main() {
    let years: Vec<u32> = (2003..=2023).collect();
    let mut rows = Vec::new();
    let mut first_total = 0.0;
    let mut last_total = 0.0;
    for (i, &year) in years.iter().enumerate() {
        let t = i as f64 / (years.len() - 1) as f64;
        // ASes on the Internet: ~16k (2003) -> ~74k (2023), roughly linear.
        let ases = 16_000.0 + (74_000.0 - 16_000.0) * t;
        // ASes hosting a VP: grows with the platforms but tracks the AS
        // growth, keeping the fraction roughly flat around 1 %.
        let ris_as = 180.0 + (816.0 - 180.0) * t.powf(1.1);
        let rv_as = 60.0 + (337.0 - 60.0) * t.powf(1.1);
        let hosting = ris_as + rv_as;
        // updates per VP per hour: ~2k (2003) -> ~28k (2023).
        let upd_per_vp = 2_000.0 * (28_000.0f64 / 2_000.0).powf(t);
        // VPs (several per AS): ~350 -> ~2667.
        let vps = 350.0 + (2_667.0 - 350.0) * t.powf(1.2);
        let total_per_hour = vps * upd_per_vp;
        if i == 0 {
            first_total = total_per_hour;
        }
        last_total = total_per_hour;
        if year % 4 == 3 || year == 2003 {
            rows.push(vec![
                year.to_string(),
                format!("{:.0}", hosting),
                format!("{:.2}%", hosting / ases * 100.0),
                format!("{:.0}", vps),
                format!("{:.0}K", upd_per_vp / 1e3),
                format!("{:.0}M", total_per_hour / 1e6),
            ]);
        }
    }
    print_table(
        "Fig. 2 + Fig. 3 — platform growth model (RIS + RV combined)",
        &[
            "year",
            "ASes hosting a VP",
            "% of ASes",
            "VPs",
            "upd/h per VP",
            "upd/h total",
        ],
        &rows,
    );
    write_csv(
        "fig2_fig3",
        &["year", "ases_hosting", "pct", "vps", "upd_per_vp", "total"],
        &rows,
    );

    // The §3.2 claim: more VPs × more updates per VP = super-linear total.
    let vp_growth: f64 = 2_667.0 / 350.0;
    let rate_growth = 28_000.0 / 2_000.0;
    let total_growth = last_total / first_total;
    println!(
        "\nVP count grew {vp_growth:.1}x, per-VP rate grew {rate_growth:.1}x, \
         total volume grew {total_growth:.0}x (≈ their product {:.0}x): the\n\
         compound effect §3.2 calls a quadratic increase.",
        vp_growth * rate_growth
    );
    assert!(total_growth > vp_growth.max(rate_growth) * 2.0);
}
