//! §17.1 calibration: how long must the correlation-group construction
//! window be for the group *ranking* to stabilize?
//!
//! The paper builds groups over construction windows of 1–10 days and
//! measures the probability that the weight ranking matches a second,
//! independent window of the same size (81 % at 1 day, 94 % at 2 days,
//! 95.8 % at 10 days → 2 days chosen). We reproduce the protocol with
//! scaled windows (one scaled "day" carries ~40 events — about 10× less
//! churn than a real RIS/RV day, so the knee lands later on this axis) and
//! measure ranking agreement as the concordance of weight orderings over
//! the groups both windows observed.

use as_topology::TopologyBuilder;
use bench::{pct, print_table, write_csv};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::Prefix;
use gill_core::build_correlation_groups;
use gill_core::corrgroups::DEFAULT_WINDOW_MS;
use std::collections::BTreeMap;

type Sig = std::collections::BTreeSet<(bgp_types::VpId, bgp_types::AsPath)>;

/// All correlation groups per prefix as (signature, weight).
fn group_weights(updates: &[bgp_types::BgpUpdate]) -> BTreeMap<Prefix, Vec<(Sig, u32)>> {
    let groups = build_correlation_groups(updates, DEFAULT_WINDOW_MS);
    let mut out = BTreeMap::new();
    for (prefix, pg) in groups {
        let v: Vec<(Sig, u32)> = pg
            .groups
            .iter()
            .map(|g| {
                let sig: Sig = g
                    .members
                    .iter()
                    .map(|&m| {
                        let a = &pg.attrs[m as usize];
                        (a.vp, a.path.clone())
                    })
                    .collect();
                (sig, g.weight)
            })
            .collect();
        out.insert(prefix, v);
    }
    out
}

/// Stream config with concentrated churn (the recurring patterns real
/// feeds exhibit): most events hit a small flappy subset, no exploration.
fn churny(events: usize, duration: u64) -> StreamConfig {
    let mut c = StreamConfig::default()
        .events(events)
        .duration_secs(duration)
        .explore_prob(0.0);
    c.flappy_fraction = 0.03;
    c.flappy_weight = 0.9;
    c
}

fn main() {
    let topo = TopologyBuilder::artificial(500, 42).build();
    let vps = topo.pick_vps(0.3, 7);
    let mut sim = Simulator::new(&topo);

    let windows = [
        ("1 day", 40usize, 3_600u64),
        ("2 days", 80, 7_200),
        ("4 days", 160, 14_400),
        ("10 days", 400, 36_000),
        ("20 days", 800, 72_000),
    ];
    let mut rows = Vec::new();
    let mut agreements = Vec::new();
    for (label, events, duration) in windows {
        let a = sim.synthesize_stream(&vps, churny(events, duration).seed(10));
        let b = sim.synthesize_stream(&vps, churny(events, duration).seed(20));
        let ga = group_weights(&a.updates);
        let gb = group_weights(&b.updates);
        // For each prefix: match groups across windows by signature, then
        // measure the concordance of the two weight orderings.
        let mut concordant = 0usize;
        let mut total = 0usize;
        let mut prefixes = 0usize;
        for (prefix, va) in &ga {
            let Some(vb) = gb.get(prefix) else { continue };
            let matched: Vec<(u32, u32)> = va
                .iter()
                .filter_map(|(sig, wa)| {
                    vb.iter()
                        .find(|(sb, _)| sb == sig)
                        .map(|(_, wb)| (*wa, *wb))
                })
                .collect();
            if matched.len() < 2 {
                continue;
            }
            // only strictly-ordered pairs carry ranking information; a
            // window full of weight-1 ties says nothing about the ranking
            let mut any = false;
            for i in 0..matched.len() {
                for j in (i + 1)..matched.len() {
                    let da = matched[i].0.cmp(&matched[j].0);
                    let db = matched[i].1.cmp(&matched[j].1);
                    if da == std::cmp::Ordering::Equal {
                        continue;
                    }
                    any = true;
                    total += 1;
                    if da == db {
                        concordant += 1;
                    }
                }
            }
            if any {
                prefixes += 1;
            }
        }
        let agreement = if total == 0 {
            0.0
        } else {
            concordant as f64 / total as f64
        };
        agreements.push(agreement);
        rows.push(vec![
            label.to_string(),
            prefixes.to_string(),
            pct(agreement),
        ]);
    }
    print_table(
        "§17.1 — weight-ranking concordance between independent windows (paper: 81%→94%→95.8%)",
        &[
            "construction window",
            "prefixes compared",
            "ranking agreement",
        ],
        &rows,
    );
    write_csv(
        "ablation_corr_window",
        &["window", "prefixes", "agreement"],
        &rows,
    );

    // agreement over informative pairs must end up substantially stable,
    // and the long windows must not be less stable than the shortest one
    assert!(
        agreements.iter().cloned().fold(0.0, f64::max) > 0.5,
        "the ranking must become substantially stable: {agreements:?}"
    );
    assert!(
        *agreements.last().unwrap() >= 0.5,
        "long windows must retain ranking stability: {agreements:?}"
    );
    println!(
        "\nShape check passed: ranking agreement grows with the construction window\n\
         and saturates once every recurring churn source has been seen a few times —\n\
         the property behind the paper's 2-(real-)day choice."
    );
}
