//! Shared harness utilities for the experiment binaries (one per paper
//! table/figure — see DESIGN.md for the index and EXPERIMENTS.md for the
//! measured outputs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use as_topology::{AsCategory, Topology};
use bgp_types::Asn;
use std::collections::HashMap;

/// Builds the ASN → Table-5 category map for a topology.
pub fn categories_map(topo: &Topology) -> HashMap<Asn, AsCategory> {
    let cats = as_topology::categories::classify(topo);
    (0..topo.num_ases() as u32)
        .map(|u| (topo.asn(u), cats[u as usize]))
        .collect()
}

/// Node indices of a VP list.
pub fn vp_nodes(topo: &Topology, vps: &[bgp_types::VpId]) -> Vec<u32> {
    vps.iter().filter_map(|v| topo.index_of(v.asn)).collect()
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(ncols) {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Median of a slice (returns 0 for empty input; upper median for even
/// lengths).
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// Writes rows as CSV under `bench-results/` (best-effort; the printed
/// table is the primary artifact).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    let _ = std::fs::write(dir.join(format!("{name}.csv")), out);
}

/// Streaming generator for the store-compression benchmarks
/// (`bench_store`, criterion `store/*`): realistic churn, where each
/// `(vp, prefix)` pair flaps among a palette of 4 stable AS paths with a
/// fixed per-prefix origin, and ~1 in 6 updates is a withdrawal. Real BGP
/// attribute traffic is highly redundant — the premise of §4.2's
/// redundancy engine and of attribute interning — unlike the uniformly
/// random paths of [`synth_query_stream`].
pub fn for_each_churn_update(
    n: usize,
    n_vps: u32,
    n_prefixes: u32,
    span_ms: u64,
    seed: u64,
    mut f: impl FnMut(bgp_types::BgpUpdate),
) {
    use bgp_types::{Prefix, Timestamp, UpdateBuilder, VpId};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let step = (span_ms / n.max(1) as u64).max(1);
    let mut t_ms = 0u64;
    for _ in 0..n {
        t_ms += rng.gen_range(0..step * 2);
        let vp_i = rng.gen_range(0..n_vps);
        let vp = VpId::from_asn(bgp_types::Asn(65_000 + vp_i));
        let pfx_i = rng.gen_range(0..n_prefixes);
        let prefix = Prefix::synthetic(pfx_i);
        let u = if rng.gen_range(0..6u32) == 0 {
            UpdateBuilder::withdraw(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .build()
        } else {
            // One of 4 stable paths for this (vp, prefix), derived by a
            // splitmix-style hash so the palette is deterministic.
            let k = rng.gen_range(0..4u64);
            let mix =
                ((vp_i as u64) << 40 | (pfx_i as u64) << 8 | k).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let transit = 1_000 + ((mix >> 16) % 5_000) as u32;
            let origin = 10_000 + pfx_i;
            UpdateBuilder::announce(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .path([vp.asn.value(), transit, transit + 1, origin])
                .community((1_000 + vp_i) as u16, k as u16)
                .build()
        };
        f(u);
    }
}

/// Synthesizes a time-sorted, burst-structured update stream for the
/// redundancy-engine benchmarks (`benches/micro.rs` and the
/// `bench_redundancy` binary).
///
/// Each burst models a routing event on one prefix observed by several VPs
/// within the 100 s redundancy slack of §4.2. Roughly a quarter of each
/// burst re-announces through a shorter route whose link set nests inside
/// the longer one, and communities overlap across the burst, so all three
/// redundancy conditions (prefix/time, link subset, community subset) are
/// exercised with a realistic hit/miss mix.
pub fn synth_redundancy_stream(n: usize, seed: u64) -> Vec<bgp_types::BgpUpdate> {
    use bgp_types::{Prefix, Timestamp, UpdateBuilder, VpId};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_prefixes = 64u32;
    let n_vps = 32u32;
    let mut updates = Vec::with_capacity(n);
    let mut t_ms = 0u64;
    while updates.len() < n {
        let pfx = rng.gen_range(0..n_prefixes);
        let origin = 600 + pfx;
        let mid = rng.gen_range(100u32..140);
        let burst = rng.gen_range(4usize..12).min(n - updates.len());
        for _ in 0..burst {
            t_ms += rng.gen_range(0..2_500u64);
            // Shorter mid→origin announcements nest inside the longer
            // vp→mid→origin ones, producing genuine Def2/Def3 redundancy.
            let short = rng.gen_range(0..4u32) == 0;
            let (vp_asn, path) = if short {
                (mid, vec![mid, origin])
            } else {
                let vp = 1_000 + rng.gen_range(0..n_vps);
                (vp, vec![vp, mid, origin])
            };
            let mut b =
                UpdateBuilder::announce(VpId::from_asn(Asn(vp_asn)), Prefix::synthetic(pfx))
                    .at(Timestamp::from_millis(t_ms))
                    .path(path);
            for c in 0..rng.gen_range(0u16..3) {
                b = b.community((mid % 50) as u16, c);
            }
            updates.push(b.build());
        }
        t_ms += rng.gen_range(5_000..40_000u64);
    }
    updates.sort_by_key(|u| u.time);
    updates
}

/// Synthesizes the update stream for the query-store benchmarks
/// (`bench_query` and the criterion `query/*` group): `n_vps` vantage
/// points churning `n_prefixes` prefixes over `span_ms` of stream time, so
/// the store crosses many snapshot windows and `rib_at` has a deep history
/// to bound.
pub fn synth_query_stream(
    n: usize,
    n_vps: u32,
    n_prefixes: u32,
    span_ms: u64,
    seed: u64,
) -> Vec<bgp_types::BgpUpdate> {
    let mut updates = Vec::with_capacity(n);
    for_each_synth_update(n, n_vps, n_prefixes, span_ms, seed, |u| updates.push(u));
    updates
}

/// Streaming form of [`synth_query_stream`]: generates the identical update
/// sequence but hands each update to `f` instead of materializing the whole
/// stream. The store benchmarks use this so a multi-million-update run
/// measures the *store's* resident memory, not the input vector's.
pub fn for_each_synth_update(
    n: usize,
    n_vps: u32,
    n_prefixes: u32,
    span_ms: u64,
    seed: u64,
    mut f: impl FnMut(bgp_types::BgpUpdate),
) {
    use bgp_types::{Prefix, Timestamp, UpdateBuilder, VpId};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let step = (span_ms / n.max(1) as u64).max(1);
    let mut t_ms = 0u64;
    for _ in 0..n {
        t_ms += rng.gen_range(0..step * 2);
        let vp = VpId::from_asn(bgp_types::Asn(65_000 + rng.gen_range(0..n_vps)));
        let prefix = Prefix::synthetic(rng.gen_range(0..n_prefixes));
        let u = if rng.gen_range(0..5u32) == 0 {
            UpdateBuilder::withdraw(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .build()
        } else {
            let mid = rng.gen_range(100u32..1_000);
            UpdateBuilder::announce(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .path([vp.asn.value(), mid, mid + 1, rng.gen_range(1..50u32)])
                .community((vp.asn.value() % 1_000) as u16, rng.gen_range(0..200u16))
                .build()
        };
        f(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 3.0); // upper median
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    fn redundancy_stream_is_sized_sorted_and_deterministic() {
        let s = synth_redundancy_stream(500, 7);
        assert_eq!(s.len(), 500);
        assert!(s.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(s, synth_redundancy_stream(500, 7));
        // the burst structure must actually produce redundancy to measure
        let flags = gill_core::redundant_flags(&s, gill_core::RedundancyDef::Def3);
        assert!(flags.iter().any(|&f| f));
    }
}
