//! Shared harness utilities for the experiment binaries (one per paper
//! table/figure — see DESIGN.md for the index and EXPERIMENTS.md for the
//! measured outputs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use as_topology::{AsCategory, Topology};
use bgp_types::Asn;
use std::collections::HashMap;

/// Builds the ASN → Table-5 category map for a topology.
pub fn categories_map(topo: &Topology) -> HashMap<Asn, AsCategory> {
    let cats = as_topology::categories::classify(topo);
    (0..topo.num_ases() as u32)
        .map(|u| (topo.asn(u), cats[u as usize]))
        .collect()
}

/// Node indices of a VP list.
pub fn vp_nodes(topo: &Topology, vps: &[bgp_types::VpId]) -> Vec<u32> {
    vps.iter().filter_map(|v| topo.index_of(v.asn)).collect()
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(ncols) {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Median of a slice (returns 0 for empty input; upper median for even
/// lengths).
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// Writes rows as CSV under `bench-results/` (best-effort; the printed
/// table is the primary artifact).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    let _ = std::fs::write(dir.join(format!("{name}.csv")), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 3.0); // upper median
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "12.3%");
    }
}
