//! Criterion micro-benchmarks for the hot paths: wire codec, filter
//! matching, correlation grouping, reconstitution, route propagation and
//! anchor scoring inputs.

use as_topology::TopologyBuilder;
use bgp_sim::routing::{compute_routes, SourceAnnouncement};
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::{Asn, Prefix, Timestamp, UpdateBuilder, VpId};
use bgp_wire::{BgpMessage, UpdateMessage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gill_core::corrgroups::DEFAULT_WINDOW_MS;
use gill_core::{
    build_correlation_groups, find_redundant_updates, CompiledFilters, FilterGranularity,
    FilterHandle, FilterSet,
};
use std::collections::HashSet;

fn bench_wire_codec(c: &mut Criterion) {
    let u = UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(7))
        .at(Timestamp::from_secs(1))
        .path([65001, 2, 3, 4, 5])
        .community(65001, 100)
        .community(2, 200)
        .build();
    let wire = UpdateMessage::from_domain(&u).unwrap();
    let msg = BgpMessage::Update(wire);
    let bytes = msg.encode_to_vec().unwrap();
    c.bench_function("wire/encode_update", |b| {
        b.iter(|| black_box(&msg).encode_to_vec().unwrap())
    });
    c.bench_function("wire/decode_update", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::from(&bytes[..]);
            BgpMessage::decode(&mut buf).unwrap().unwrap()
        })
    });
}

fn bench_filters(c: &mut Criterion) {
    // 10k drop rules, match probe
    let templates: Vec<_> = (0..10_000u32)
        .map(|i| {
            UpdateBuilder::announce(
                VpId::from_asn(Asn(65000 + i % 500)),
                Prefix::synthetic(i % 1000),
            )
            .path([65000 + i % 500, 2])
            .build()
        })
        .collect();
    let f = FilterSet::generate([], templates.iter(), FilterGranularity::VpPrefix);
    let hit = &templates[5];
    let miss = UpdateBuilder::announce(VpId::from_asn(Asn(1)), Prefix::synthetic(9999))
        .path([1, 2])
        .build();
    c.bench_function("filters/match_hit_10k_rules", |b| {
        b.iter(|| f.accepts(black_box(hit)))
    });
    c.bench_function("filters/match_miss_10k_rules", |b| {
        b.iter(|| f.accepts(black_box(&miss)))
    });

    // the compiled engine on the same table, plus the session hot path
    // (view probe) and the publisher's swap
    let compiled = CompiledFilters::compile(&f, 1);
    assert!(!compiled.accepts(hit) && compiled.accepts(&miss));
    c.bench_function("filters/compiled_hit_10k_rules", |b| {
        b.iter(|| compiled.accepts(black_box(hit)))
    });
    c.bench_function("filters/compiled_miss_10k_rules", |b| {
        b.iter(|| compiled.accepts(black_box(&miss)))
    });
    let handle = FilterHandle::new(&f);
    let view = handle.view();
    c.bench_function("filters/view_judge_10k_rules", |b| {
        b.iter(|| view.judge(black_box(hit)))
    });
    let next = handle.compile_next(&f);
    c.bench_function("filters/publish_swap_10k_rules", |b| {
        b.iter(|| handle.publish(black_box(next.clone())))
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = TopologyBuilder::artificial(1000, 42).build();
    let failed = HashSet::new();
    c.bench_function("routing/propagate_1k_ases", |b| {
        b.iter(|| {
            compute_routes(
                black_box(&topo),
                &[SourceAnnouncement::origin(500)],
                &failed,
            )
        })
    });
}

fn bench_gill_core(c: &mut Criterion) {
    let topo = TopologyBuilder::artificial(200, 42).build();
    let vps = topo.pick_vps(0.3, 7);
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(1));
    c.bench_function("gill/correlation_groups", |b| {
        b.iter(|| build_correlation_groups(black_box(&stream.updates), DEFAULT_WINDOW_MS))
    });
    c.bench_function("gill/component1_full", |b| {
        b.iter(|| find_redundant_updates(black_box(&stream.updates), DEFAULT_WINDOW_MS, 0.94))
    });
}

fn bench_redundancy(c: &mut Criterion) {
    use gill_core::redundancy::{redundant_flags_seq, RedundancyDef};
    use gill_core::PreparedUpdates;
    let small = bench::synth_redundancy_stream(1_500, 7);
    let large = bench::synth_redundancy_stream(12_000, 7);
    for (tag, updates) in [("small_1k5", &small), ("large_12k", &large)] {
        // seed-style reference: no interning, per-comparison set builds
        c.bench_function(&format!("redundancy/flags_seed_seq_{tag}"), |b| {
            b.iter(|| redundant_flags_seq(black_box(updates), RedundancyDef::Def3))
        });
        // interned sequential engine (prepare + query)
        c.bench_function(&format!("redundancy/flags_prepared_seq_{tag}"), |b| {
            b.iter(|| {
                PreparedUpdates::prepare(black_box(updates))
                    .redundant_flags_seq(RedundancyDef::Def3)
            })
        });
        // interned parallel engine (prepare + rayon fan-out over buckets)
        c.bench_function(&format!("redundancy/flags_prepared_par_{tag}"), |b| {
            b.iter(|| gill_core::redundant_flags(black_box(updates), RedundancyDef::Def3))
        });
        // VP-pair coverage, parallel engine
        c.bench_function(&format!("redundancy/vp_pairs_prepared_par_{tag}"), |b| {
            b.iter(|| gill_core::vp_pair_redundancy(black_box(updates), RedundancyDef::Def3))
        });
    }
    // intern-once amortization: queries on an already-prepared stream
    let prepared = PreparedUpdates::prepare(&large);
    c.bench_function("redundancy/flags_query_only_large_12k", |b| {
        b.iter(|| black_box(&prepared).redundant_flags(RedundancyDef::Def3))
    });
}

fn bench_query_store(c: &mut Criterion) {
    use gill_query::{MatchMode, RouteStore, StoreConfig};
    let updates = bench::synth_query_stream(20_000, 8, 400, 3_600_000, 7);
    c.bench_function("query/ingest_20k", |b| {
        b.iter(|| {
            let mut s = RouteStore::new(StoreConfig::default());
            for u in black_box(&updates) {
                s.ingest(u.clone());
            }
            s.stats().updates
        })
    });
    let mut store = RouteStore::new(StoreConfig::default());
    for u in &updates {
        store.ingest(u.clone());
    }
    let t_mid = Timestamp::from_millis(store.latest_time().as_millis() / 2);
    let vp = store.vps()[0].0;
    c.bench_function("query/rib_at_snapshot_replay", |b| {
        b.iter(|| store.rib_at(black_box(vp), black_box(t_mid)).unwrap().len())
    });
    let q = Prefix::synthetic(17);
    c.bench_function("query/lookup_exact_live", |b| {
        b.iter(|| store.lookup(black_box(&q), MatchMode::Exact, None).len())
    });
    c.bench_function("query/lookup_lpm_live", |b| {
        b.iter(|| store.lookup(black_box(&q), MatchMode::Longest, None).len())
    });
    c.bench_function("query/lookup_at_historical", |b| {
        b.iter(|| {
            store
                .lookup_at(black_box(&q), MatchMode::Exact, None, black_box(t_mid))
                .len()
        })
    });
    c.bench_function("query/updates_in_range_shard_scan", |b| {
        b.iter(|| {
            store
                .updates_in_range(
                    Some(black_box(&q)),
                    gill_query::JoinMode::Exact,
                    None,
                    Timestamp::from_millis(t_mid.as_millis() / 2),
                    t_mid,
                )
                .len()
        })
    });
}

fn bench_store_compression(c: &mut Criterion) {
    use gill_query::{ReferenceStore, RouteStore, StoreConfig};
    let mut updates = Vec::with_capacity(20_000);
    bench::for_each_churn_update(20_000, 8, 2_000, 3_600_000, 7, |u| updates.push(u));

    c.bench_function("store/ingest_interned_20k", |b| {
        b.iter(|| {
            let mut s = RouteStore::new(StoreConfig::default());
            for u in black_box(&updates) {
                s.ingest(u.clone());
            }
            s.stats().updates
        })
    });
    c.bench_function("store/ingest_reference_20k", |b| {
        b.iter(|| {
            let mut s = ReferenceStore::new(StoreConfig::default());
            for u in black_box(&updates) {
                s.ingest(u.clone());
            }
            s.stats().updates
        })
    });

    let mut store = RouteStore::new(StoreConfig::default());
    for u in &updates {
        store.ingest(u.clone());
    }
    let t_mid = Timestamp::from_millis(store.latest_time().as_millis() / 2);
    let vp = store.vps()[0].0;
    c.bench_function("store/rib_at_materialize", |b| {
        b.iter(|| store.rib_at(black_box(vp), black_box(t_mid)).unwrap().len())
    });

    let dir = std::env::temp_dir().join(format!("gill-micro-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    store.seal_all_into(&dir).unwrap().unwrap();
    let (_, seg_path) = gill_query::segment::list_segments(&dir).unwrap().remove(0);
    let seg_bytes = std::fs::read(&seg_path).unwrap();
    let seg = gill_query::segment::Segment::read_from(&mut &seg_bytes[..]).unwrap();
    c.bench_function("store/segment_encode_20k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(seg_bytes.len());
            black_box(&seg).write_to(&mut out).unwrap();
            out.len()
        })
    });
    c.bench_function("store/segment_decode_20k", |b| {
        b.iter(|| {
            gill_query::segment::Segment::read_from(&mut black_box(&seg_bytes[..]))
                .unwrap()
                .vp_order
                .len()
        })
    });
    c.bench_function("store/cold_start_replay_20k", |b| {
        b.iter(|| {
            let mut s = RouteStore::new(StoreConfig::default());
            s.load_dir(black_box(&dir)).unwrap()
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_stream_broker(c: &mut Criterion) {
    use gill_stream::{BrokerConfig, Delivery, Frame, SlowPolicy, StreamBroker, StreamFilter};
    let u = UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(7))
        .at(Timestamp::from_secs(1))
        .path([65001, 2, 3, 4, 5])
        .community(65001, 100)
        .community(2, 200)
        .build();
    // frame encode is the whole publish-path cost: both wire renderings
    c.bench_function("stream/encode_frame", |b| {
        b.iter(|| Frame::update(black_box(7), black_box(&u)))
    });
    let frame = Frame::update(7, &u);
    let wire = frame.encode_binary();
    c.bench_function("stream/decode_binary_frame", |b| {
        b.iter(|| Frame::decode_binary(black_box(&wire)).unwrap().unwrap())
    });
    c.bench_function("stream/parse_json_frame", |b| {
        b.iter(|| Frame::from_json(black_box(frame.json())).unwrap())
    });
    // publish + same-thread drain through an attached subscription: the
    // broker hot path minus thread handoff
    c.bench_function("stream/publish_and_poll", |b| {
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: 1024,
            max_subscribers: 4,
        });
        let mut sub = broker
            .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
            .unwrap();
        b.iter(|| {
            broker.publish(black_box(&u)).unwrap();
            match sub.poll_next() {
                Delivery::Frame(f) => f.seq,
                other => panic!("expected frame, got {other:?}"),
            }
        })
    });
    // the zero-subscriber shed path must stay at atomic-load cost
    c.bench_function("stream/publish_shed_no_subscribers", |b| {
        let broker = StreamBroker::new(BrokerConfig::default());
        b.iter(|| broker.publish(black_box(&u)))
    });
}

fn bench_stream_synthesis(c: &mut Criterion) {
    let topo = TopologyBuilder::artificial(200, 42).build();
    let vps = topo.pick_vps(0.3, 7);
    c.bench_function("sim/synthesize_40_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&topo);
            sim.synthesize_stream(&vps, StreamConfig::default().events(40).seed(1))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wire_codec, bench_filters, bench_routing, bench_gill_core, bench_redundancy, bench_query_store, bench_store_compression, bench_stream_broker, bench_stream_synthesis
}
criterion_main!(benches);
