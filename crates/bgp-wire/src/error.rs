//! Wire-format errors.

use std::fmt;

/// Errors raised while encoding or decoding BGP/MRT wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The 16-byte marker was not all-ones (RFC 4271 §4.1).
    BadMarker,
    /// Unknown or unsupported message type code.
    UnknownMessageType(u8),
    /// Header length field out of the [19, 4096] range or inconsistent.
    BadLength(u16),
    /// Unsupported BGP version in OPEN.
    BadVersion(u8),
    /// Malformed path attribute.
    BadAttribute {
        /// Attribute type code.
        code: u8,
        /// Why it is malformed.
        reason: &'static str,
    },
    /// Prefix length byte exceeds the address family's maximum.
    BadPrefixLength(u8),
    /// An unsupported feature was requested during encoding.
    Unsupported(&'static str),
    /// Malformed MRT record.
    BadMrt(&'static str),
    /// A structurally complete MRT record of a type, subtype or address
    /// family we do not decode. Readers can skip the record (its length
    /// is known from the header) and count it instead of aborting the
    /// archive — see `MrtReader::skipped`.
    UnsupportedMrt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed, have } => {
                write!(f, "truncated {what}: need {needed} bytes, have {have}")
            }
            WireError::BadMarker => write!(f, "BGP marker is not all-ones"),
            WireError::UnknownMessageType(t) => write!(f, "unknown BGP message type {t}"),
            WireError::BadLength(l) => write!(f, "invalid BGP message length {l}"),
            WireError::BadVersion(v) => write!(f, "unsupported BGP version {v}"),
            WireError::BadAttribute { code, reason } => {
                write!(f, "malformed path attribute {code}: {reason}")
            }
            WireError::BadPrefixLength(l) => write!(f, "invalid prefix length {l}"),
            WireError::Unsupported(s) => write!(f, "unsupported: {s}"),
            WireError::BadMrt(s) => write!(f, "malformed MRT record: {s}"),
            WireError::UnsupportedMrt(s) => write!(f, "unsupported MRT record: {s}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias.
pub type WireResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = WireError::Truncated {
            what: "header",
            needed: 19,
            have: 3,
        };
        assert!(e.to_string().contains("header"));
        assert!(WireError::BadMarker.to_string().contains("marker"));
        assert!(WireError::UnknownMessageType(9).to_string().contains('9'));
    }
}
