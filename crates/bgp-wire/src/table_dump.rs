//! MRT TABLE_DUMP_V2 (RFC 6396 §4.3) — RIB snapshots.
//!
//! GILL stores "RIBs every eight hours or every update" (§8). A
//! TABLE_DUMP_V2 archive starts with a PEER_INDEX_TABLE record naming the
//! peers (IPv4 or IPv6 addresses, flagged per-peer), followed by one
//! RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record per prefix, each holding
//! the best route of every peer that has one (peer referenced by index).
//!
//! Only the attributes the rest of the workspace uses are encoded
//! (ORIGIN, AS_PATH with 4-octet ASNs, NEXT_HOP, COMMUNITIES), matching
//! the UPDATE codec in [`crate::update`].

use crate::error::{WireError, WireResult};
use bgp_types::{AsPath, Asn, Community, Prefix, Rib, Timestamp, VpId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// MRT type code for TABLE_DUMP_V2.
pub const MRT_TYPE_TABLE_DUMP_V2: u16 = 13;
/// Subtype: PEER_INDEX_TABLE.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// Subtype: RIB_IPV4_UNICAST.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// Subtype: RIB_IPV6_UNICAST.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;

/// One peer in the index table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PeerEntry {
    /// Peer AS number.
    pub asn: Asn,
    /// Peer address (the entry's type bits flag its family).
    pub addr: IpAddr,
}

/// One route within a RIB entry record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibRoute {
    /// Index into the peer table.
    pub peer_index: u16,
    /// When the route was received.
    pub originated: Timestamp,
    /// AS path.
    pub path: AsPath,
    /// Communities.
    pub communities: Vec<Community>,
}

/// A decoded RIB snapshot: peers plus per-prefix routes.
#[derive(Clone, Default, Debug)]
pub struct TableDump {
    /// The peer index table.
    pub peers: Vec<PeerEntry>,
    /// Per-prefix routes, ordered by prefix.
    pub entries: Vec<(Prefix, Vec<RibRoute>)>,
}

impl TableDump {
    /// Builds a snapshot from per-VP RIBs (the simulator's
    /// `rib_snapshot` output or the collector's state).
    pub fn from_ribs<'a, I>(ribs: I) -> TableDump
    where
        I: IntoIterator<Item = (&'a VpId, &'a Rib)>,
    {
        let mut peers: Vec<PeerEntry> = Vec::new();
        let mut by_prefix: BTreeMap<Prefix, Vec<RibRoute>> = BTreeMap::new();
        let mut sorted: Vec<(&VpId, &Rib)> = ribs.into_iter().collect();
        sorted.sort_by_key(|(vp, _)| **vp);
        for (vp, rib) in sorted {
            let peer_index = peers.len() as u16;
            peers.push(PeerEntry {
                asn: vp.asn,
                addr: IpAddr::V4(Ipv4Addr::from(
                    0x0a00_0000u32 | (vp.asn.value() & 0x00ff_ffff),
                )),
            });
            let mut entries: Vec<_> = rib.iter().collect();
            entries.sort_by_key(|(p, _)| **p);
            for (prefix, entry) in entries {
                by_prefix.entry(*prefix).or_default().push(RibRoute {
                    peer_index,
                    originated: entry.time,
                    path: entry.path.clone(),
                    communities: entry.communities.iter().copied().collect(),
                });
            }
        }
        TableDump {
            peers,
            entries: by_prefix.into_iter().collect(),
        }
    }

    /// Reconstructs per-VP RIBs from the snapshot.
    pub fn to_ribs(&self) -> BTreeMap<VpId, Rib> {
        use bgp_types::UpdateBuilder;
        let mut out: BTreeMap<VpId, Rib> = BTreeMap::new();
        for (prefix, routes) in &self.entries {
            for r in routes {
                let Some(peer) = self.peers.get(r.peer_index as usize) else {
                    continue;
                };
                let vp = VpId::from_asn(peer.asn);
                let mut u = UpdateBuilder::announce(vp, *prefix)
                    .at(r.originated)
                    .as_path(r.path.clone())
                    .communities(r.communities.iter().copied())
                    .build();
                out.entry(vp).or_default().apply(&mut u);
            }
        }
        out
    }

    /// Number of (prefix, route) pairs in the snapshot.
    pub fn route_count(&self) -> usize {
        self.entries.iter().map(|(_, rs)| rs.len()).sum()
    }

    /// Writes the snapshot as MRT records (`PEER_INDEX_TABLE` followed by
    /// one `RIB_IPV4_UNICAST` per prefix) to `w`. Returns records written.
    pub fn write_mrt<W: Write>(&self, w: &mut W, at: Timestamp) -> std::io::Result<usize> {
        let io_err =
            |e: WireError| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
        let mut records = 0usize;
        // --- PEER_INDEX_TABLE ------------------------------------------
        let mut body = BytesMut::new();
        body.put_u32(0x0a00_00fe); // collector BGP id
        body.put_u16(0); // view name length (empty)
        body.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            match p.addr {
                IpAddr::V4(a) => {
                    body.put_u8(0x02); // type: AS4, IPv4
                    body.put_u32(u32::from(a)); // peer BGP id (reuse addr)
                    body.put_u32(u32::from(a));
                }
                IpAddr::V6(a) => {
                    body.put_u8(0x03); // type: AS4, IPv6
                    let oct = a.octets();
                    // BGP id stays 4 bytes: low 32 address bits
                    body.extend_from_slice(&oct[12..]);
                    body.extend_from_slice(&oct);
                }
            }
            body.put_u32(p.asn.value());
        }
        write_mrt_header(w, at, SUBTYPE_PEER_INDEX_TABLE, &body)?;
        records += 1;
        // --- RIB entries -------------------------------------------------
        for (seq, (prefix, routes)) in self.entries.iter().enumerate() {
            let mut body = BytesMut::new();
            body.put_u32(seq as u32);
            encode_prefix_nlri(prefix, &mut body).map_err(io_err)?;
            body.put_u16(routes.len() as u16);
            for r in routes {
                body.put_u16(r.peer_index);
                body.put_u32(r.originated.as_secs() as u32);
                let attrs = encode_attrs(r).map_err(io_err)?;
                body.put_u16(attrs.len() as u16);
                body.extend_from_slice(&attrs);
            }
            let subtype = if prefix.is_ipv6() {
                SUBTYPE_RIB_IPV6_UNICAST
            } else {
                SUBTYPE_RIB_IPV4_UNICAST
            };
            write_mrt_header(w, at, subtype, &body)?;
            records += 1;
        }
        Ok(records)
    }

    /// Reads a snapshot back from raw MRT bytes.
    pub fn read_mrt(mut bytes: &[u8]) -> WireResult<TableDump> {
        let mut dump = TableDump::default();
        let mut saw_index = false;
        while !bytes.is_empty() {
            if bytes.len() < 12 {
                return Err(WireError::BadMrt("truncated header"));
            }
            let mut hdr = Bytes::copy_from_slice(&bytes[..12]);
            let _secs = hdr.get_u32();
            let ty = hdr.get_u16();
            let subty = hdr.get_u16();
            let len = hdr.get_u32() as usize;
            if bytes.len() < 12 + len {
                return Err(WireError::BadMrt("truncated record"));
            }
            let mut body = Bytes::copy_from_slice(&bytes[12..12 + len]);
            bytes = &bytes[12 + len..];
            if ty != MRT_TYPE_TABLE_DUMP_V2 {
                return Err(WireError::BadMrt("not a TABLE_DUMP_V2 record"));
            }
            match subty {
                SUBTYPE_PEER_INDEX_TABLE => {
                    if body.remaining() < 8 {
                        return Err(WireError::BadMrt("short index table"));
                    }
                    let _collector = body.get_u32();
                    let view_len = body.get_u16() as usize;
                    if body.remaining() < view_len + 2 {
                        return Err(WireError::BadMrt("short view name"));
                    }
                    body.advance(view_len);
                    let n = body.get_u16() as usize;
                    for _ in 0..n {
                        if body.remaining() < 13 {
                            return Err(WireError::BadMrt("short peer entry"));
                        }
                        let ptype = body.get_u8();
                        let _bgp_id = body.get_u32();
                        let addr = if ptype & 0x01 != 0 {
                            if body.remaining() < 16 {
                                return Err(WireError::BadMrt("short v6 peer address"));
                            }
                            let mut oct = [0u8; 16];
                            for slot in oct.iter_mut() {
                                *slot = body.get_u8();
                            }
                            IpAddr::V6(Ipv6Addr::from(oct))
                        } else {
                            IpAddr::V4(Ipv4Addr::from(body.get_u32()))
                        };
                        let asn = if ptype & 0x02 != 0 {
                            if body.remaining() < 4 {
                                return Err(WireError::BadMrt("short 4-octet peer AS"));
                            }
                            Asn(body.get_u32())
                        } else {
                            if body.remaining() < 2 {
                                return Err(WireError::BadMrt("short 2-octet peer AS"));
                            }
                            Asn(body.get_u16() as u32)
                        };
                        dump.peers.push(PeerEntry { asn, addr });
                    }
                    saw_index = true;
                }
                SUBTYPE_RIB_IPV4_UNICAST | SUBTYPE_RIB_IPV6_UNICAST => {
                    if !saw_index {
                        return Err(WireError::BadMrt("RIB entry before PEER_INDEX_TABLE"));
                    }
                    if body.remaining() < 5 {
                        return Err(WireError::BadMrt("short RIB entry"));
                    }
                    let _seq = body.get_u32();
                    let prefix = decode_prefix_nlri(&mut body, subty == SUBTYPE_RIB_IPV6_UNICAST)?;
                    if body.remaining() < 2 {
                        return Err(WireError::BadMrt("missing entry count"));
                    }
                    let n = body.get_u16() as usize;
                    let mut routes = Vec::with_capacity(n);
                    for _ in 0..n {
                        if body.remaining() < 8 {
                            return Err(WireError::BadMrt("short RIB route"));
                        }
                        let peer_index = body.get_u16();
                        let originated = Timestamp::from_secs(body.get_u32() as u64);
                        let alen = body.get_u16() as usize;
                        if body.remaining() < alen {
                            return Err(WireError::BadMrt("short attributes"));
                        }
                        let attrs = body.copy_to_bytes(alen);
                        let (path, communities) = decode_attrs(&attrs)?;
                        routes.push(RibRoute {
                            peer_index,
                            originated,
                            path,
                            communities,
                        });
                    }
                    dump.entries.push((prefix, routes));
                }
                _ => return Err(WireError::BadMrt("unsupported TABLE_DUMP_V2 subtype")),
            }
        }
        Ok(dump)
    }
}

fn write_mrt_header<W: Write>(
    w: &mut W,
    at: Timestamp,
    subtype: u16,
    body: &[u8],
) -> std::io::Result<()> {
    let mut hdr = BytesMut::with_capacity(12);
    hdr.put_u32(at.as_secs() as u32);
    hdr.put_u16(MRT_TYPE_TABLE_DUMP_V2);
    hdr.put_u16(subtype);
    hdr.put_u32(body.len() as u32);
    w.write_all(&hdr)?;
    w.write_all(body)
}

fn encode_prefix_nlri(p: &Prefix, out: &mut BytesMut) -> WireResult<()> {
    out.put_u8(p.len());
    let octets = (p.len() as usize).div_ceil(8);
    if p.is_ipv6() {
        let bits = p.raw_bits().to_be_bytes();
        out.extend_from_slice(&bits[..octets]);
    } else {
        let bits = (p.raw_bits() as u32).to_be_bytes();
        out.extend_from_slice(&bits[..octets]);
    }
    Ok(())
}

fn decode_prefix_nlri(b: &mut Bytes, v6: bool) -> WireResult<Prefix> {
    if !b.has_remaining() {
        return Err(WireError::BadMrt("missing prefix"));
    }
    let len = b.get_u8();
    let max = if v6 { 128 } else { 32 };
    if len > max {
        return Err(WireError::BadPrefixLength(len));
    }
    let octets = (len as usize).div_ceil(8);
    if b.remaining() < octets {
        return Err(WireError::BadMrt("short prefix"));
    }
    if v6 {
        let mut addr = [0u8; 16];
        for slot in addr.iter_mut().take(octets) {
            *slot = b.get_u8();
        }
        Ok(Prefix::v6(Ipv6Addr::from(addr), len))
    } else {
        let mut addr = [0u8; 4];
        for slot in addr.iter_mut().take(octets) {
            *slot = b.get_u8();
        }
        Ok(Prefix::v4(Ipv4Addr::from(addr), len))
    }
}

fn encode_attrs(r: &RibRoute) -> WireResult<BytesMut> {
    let mut attrs = BytesMut::new();
    // ORIGIN IGP
    attrs.put_u8(0x40);
    attrs.put_u8(1);
    attrs.put_u8(1);
    attrs.put_u8(0);
    // AS_PATH (one AS_SEQUENCE, 4-octet)
    let mut ap = BytesMut::new();
    if !r.path.is_empty() {
        ap.put_u8(2);
        ap.put_u8(r.path.hop_count() as u8);
        for a in r.path.hops() {
            ap.put_u32(a.value());
        }
    }
    attrs.put_u8(0x40);
    attrs.put_u8(2);
    attrs.put_u8(ap.len() as u8);
    attrs.extend_from_slice(&ap);
    // COMMUNITIES
    if !r.communities.is_empty() {
        attrs.put_u8(0xc0);
        attrs.put_u8(8);
        attrs.put_u8((r.communities.len() * 4) as u8);
        for c in &r.communities {
            attrs.put_u32(c.raw());
        }
    }
    Ok(attrs)
}

fn decode_attrs(bytes: &Bytes) -> WireResult<(AsPath, Vec<Community>)> {
    let mut b = bytes.clone();
    let mut path = AsPath::empty();
    let mut communities = Vec::new();
    while b.has_remaining() {
        if b.remaining() < 3 {
            return Err(WireError::BadMrt("short attribute"));
        }
        let flags = b.get_u8();
        let code = b.get_u8();
        let len = if flags & 0x10 != 0 {
            if b.remaining() < 2 {
                return Err(WireError::BadMrt("short extended length"));
            }
            b.get_u16() as usize
        } else {
            b.get_u8() as usize
        };
        if b.remaining() < len {
            return Err(WireError::BadMrt("short attribute body"));
        }
        let mut body = b.copy_to_bytes(len);
        match code {
            2 => {
                let mut hops = Vec::new();
                while body.has_remaining() {
                    if body.remaining() < 2 {
                        return Err(WireError::BadMrt("short AS segment"));
                    }
                    let _seg = body.get_u8();
                    let count = body.get_u8() as usize;
                    if body.remaining() < count * 4 {
                        return Err(WireError::BadMrt("short AS segment body"));
                    }
                    for _ in 0..count {
                        hops.push(Asn(body.get_u32()));
                    }
                }
                path = AsPath::new(hops);
            }
            8 => {
                if len % 4 != 0 {
                    return Err(WireError::BadMrt("bad communities length"));
                }
                while body.has_remaining() {
                    communities.push(Community(body.get_u32()));
                }
            }
            _ => {}
        }
    }
    Ok((path, communities))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::UpdateBuilder;

    fn sample_ribs() -> BTreeMap<VpId, Rib> {
        let mut out = BTreeMap::new();
        for vp_asn in [65001u32, 65002] {
            let vp = VpId::from_asn(Asn(vp_asn));
            let mut rib = Rib::new();
            for p in 0..3u32 {
                let mut u = UpdateBuilder::announce(vp, Prefix::synthetic(p))
                    .at(Timestamp::from_secs(100 + p as u64))
                    .path([vp_asn, 2, 3 + p])
                    .community((vp_asn % 60_000) as u16, 100 + p as u16)
                    .build();
                rib.apply(&mut u);
            }
            out.insert(vp, rib);
        }
        out
    }

    #[test]
    fn dump_roundtrip_preserves_routes() {
        let ribs = sample_ribs();
        let dump = TableDump::from_ribs(ribs.iter());
        assert_eq!(dump.peers.len(), 2);
        assert_eq!(dump.route_count(), 6);
        let mut bytes = Vec::new();
        let records = dump
            .write_mrt(&mut bytes, Timestamp::from_secs(999))
            .unwrap();
        assert_eq!(records, 1 + 3); // index + one per prefix
        let back = TableDump::read_mrt(&bytes).unwrap();
        assert_eq!(back.peers, dump.peers);
        assert_eq!(back.entries.len(), dump.entries.len());
        // full RIB reconstruction
        let ribs2 = back.to_ribs();
        assert_eq!(ribs2.len(), 2);
        for (vp, rib) in &ribs {
            let r2 = &ribs2[vp];
            assert_eq!(r2.len(), rib.len());
            for (prefix, entry) in rib.iter() {
                let e2 = r2.get(prefix).expect("prefix survived");
                assert_eq!(e2.path, entry.path);
                assert_eq!(e2.communities, entry.communities);
            }
        }
    }

    #[test]
    fn rib_entry_before_index_is_rejected() {
        let ribs = sample_ribs();
        let dump = TableDump::from_ribs(ribs.iter());
        let mut bytes = Vec::new();
        dump.write_mrt(&mut bytes, Timestamp::ZERO).unwrap();
        // chop off the PEER_INDEX_TABLE record
        let mut hdr = Bytes::copy_from_slice(&bytes[..12]);
        hdr.advance(8);
        let first_len = 12 + hdr.get_u32() as usize;
        assert!(TableDump::read_mrt(&bytes[first_len..]).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let ribs = sample_ribs();
        let dump = TableDump::from_ribs(ribs.iter());
        let mut bytes = Vec::new();
        dump.write_mrt(&mut bytes, Timestamp::ZERO).unwrap();
        assert!(TableDump::read_mrt(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn dual_stack_dump_roundtrip() {
        let vp = VpId::from_asn(Asn(65001));
        let mut rib = Rib::new();
        for (i, pfx) in [Prefix::synthetic(1), Prefix::synthetic_v6(2)]
            .into_iter()
            .enumerate()
        {
            let mut u = UpdateBuilder::announce(vp, pfx)
                .at(Timestamp::from_secs(100 + i as u64))
                .path([65001, 2, 3])
                .community(65, 100)
                .build();
            rib.apply(&mut u);
        }
        let mut ribs = BTreeMap::new();
        ribs.insert(vp, rib);
        let mut dump = TableDump::from_ribs(ribs.iter());
        // give the peer a v6 address to exercise the 0x01 peer-type bit
        dump.peers[0].addr = IpAddr::V6("2001:db8::42".parse().unwrap());
        let mut bytes = Vec::new();
        let records = dump
            .write_mrt(&mut bytes, Timestamp::from_secs(999))
            .unwrap();
        assert_eq!(records, 1 + 2);
        let back = TableDump::read_mrt(&bytes).unwrap();
        assert_eq!(back.peers, dump.peers);
        assert_eq!(back.entries.len(), 2);
        let families: Vec<bool> = back.entries.iter().map(|(p, _)| p.is_ipv6()).collect();
        assert!(families.contains(&true) && families.contains(&false));
        let ribs2 = back.to_ribs();
        assert_eq!(ribs2[&vp].len(), 2);
    }

    #[test]
    fn empty_dump_roundtrip() {
        let dump = TableDump::from_ribs(std::iter::empty());
        let mut bytes = Vec::new();
        let n = dump.write_mrt(&mut bytes, Timestamp::ZERO).unwrap();
        assert_eq!(n, 1); // just the (empty) index table
        let back = TableDump::read_mrt(&bytes).unwrap();
        assert!(back.peers.is_empty());
        assert!(back.entries.is_empty());
    }
}
