//! OPEN message (RFC 4271 §4.2) with the 4-octet-ASN capability
//! (RFC 6793), the Multiprotocol capability (RFC 4760) and the ADD-PATH
//! capability (RFC 7911).

use crate::error::{WireError, WireResult};
use bgp_types::{AddressFamily, Asn};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Supported BGP version.
pub const BGP_VERSION: u8 = 4;

/// Capability codes we understand.
mod cap_code {
    /// Multiprotocol extensions (RFC 4760).
    pub const MULTIPROTOCOL: u8 = 1;
    /// Four-octet AS numbers (RFC 6793).
    pub const FOUR_OCTET_AS: u8 = 65;
    /// ADD-PATH (RFC 7911).
    pub const ADD_PATH: u8 = 69;
}

/// ADD-PATH send/receive mode: both directions (RFC 7911 §4).
const ADD_PATH_SEND_RECEIVE: u8 = 3;

/// A BGP OPEN message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenMessage {
    /// The sender's AS number (encoded as AS_TRANS in the 2-octet field
    /// when it doesn't fit; the real value travels in the capability).
    pub asn: Asn,
    /// Proposed hold time in seconds (0 or ≥ 3 per RFC 4271).
    pub hold_time: u16,
    /// BGP identifier (router id).
    pub router_id: Ipv4Addr,
    /// Address families advertised in Multiprotocol capabilities
    /// (RFC 4760). Empty on a legacy v4-only OPEN — the capability is
    /// then omitted entirely, keeping legacy encodings byte-identical.
    pub mp_families: BTreeSet<AddressFamily>,
    /// Families for which ADD-PATH send+receive is offered (RFC 7911).
    pub add_paths: BTreeSet<AddressFamily>,
}

impl OpenMessage {
    /// Builds a legacy OPEN with no multiprotocol capabilities.
    pub fn new(asn: Asn, hold_time: u16, router_id: Ipv4Addr) -> Self {
        OpenMessage {
            asn,
            hold_time,
            router_id,
            mp_families: BTreeSet::new(),
            add_paths: BTreeSet::new(),
        }
    }

    /// Adds Multiprotocol capabilities for `families`.
    pub fn with_families<I: IntoIterator<Item = AddressFamily>>(mut self, families: I) -> Self {
        self.mp_families.extend(families);
        self
    }

    /// Offers ADD-PATH (send+receive) for `families`.
    pub fn with_add_paths<I: IntoIterator<Item = AddressFamily>>(mut self, families: I) -> Self {
        self.add_paths.extend(families);
        self
    }

    /// Encodes the message body (everything after the common header).
    pub fn encode_body(&self, out: &mut BytesMut) -> WireResult<()> {
        out.put_u8(BGP_VERSION);
        let two_octet = if self.asn.is_two_octet() {
            self.asn.value() as u16
        } else {
            Asn::TRANS.value() as u16
        };
        out.put_u16(two_octet);
        out.put_u16(self.hold_time);
        out.put_u32(u32::from(self.router_id));
        // optional parameters: one capabilities parameter carrying the
        // 4-octet-AS capability (always sent; it also confirms the ASN)
        let mut caps = BytesMut::new();
        caps.put_u8(cap_code::FOUR_OCTET_AS);
        caps.put_u8(4);
        caps.put_u32(self.asn.value());
        // one Multiprotocol capability per family (RFC 4760 §8)
        for fam in &self.mp_families {
            caps.put_u8(cap_code::MULTIPROTOCOL);
            caps.put_u8(4);
            caps.put_u16(fam.afi());
            caps.put_u8(0); // reserved
            caps.put_u8(fam.safi());
        }
        // one ADD-PATH capability listing all families (RFC 7911 §4)
        if !self.add_paths.is_empty() {
            caps.put_u8(cap_code::ADD_PATH);
            caps.put_u8((self.add_paths.len() * 4) as u8);
            for fam in &self.add_paths {
                caps.put_u16(fam.afi());
                caps.put_u8(fam.safi());
                caps.put_u8(ADD_PATH_SEND_RECEIVE);
            }
        }
        let mut params = BytesMut::new();
        params.put_u8(2); // param type: capabilities
        params.put_u8(caps.len() as u8);
        params.extend_from_slice(&caps);
        out.put_u8(params.len() as u8);
        out.extend_from_slice(&params);
        Ok(())
    }

    /// Decodes the message body.
    pub fn decode_body(body: &Bytes) -> WireResult<OpenMessage> {
        let mut b = body.clone();
        if b.remaining() < 10 {
            return Err(WireError::Truncated {
                what: "OPEN",
                needed: 10,
                have: b.remaining(),
            });
        }
        let version = b.get_u8();
        if version != BGP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let two_octet = b.get_u16();
        let hold_time = b.get_u16();
        let router_id = Ipv4Addr::from(b.get_u32());
        let opt_len = b.get_u8() as usize;
        if b.remaining() < opt_len {
            return Err(WireError::Truncated {
                what: "OPEN optional parameters",
                needed: opt_len,
                have: b.remaining(),
            });
        }
        let mut asn = Asn(two_octet as u32);
        let mut mp_families = BTreeSet::new();
        let mut add_paths = BTreeSet::new();
        let mut params = b.copy_to_bytes(opt_len);
        while params.remaining() >= 2 {
            let ptype = params.get_u8();
            let plen = params.get_u8() as usize;
            if params.remaining() < plen {
                return Err(WireError::Truncated {
                    what: "OPEN parameter",
                    needed: plen,
                    have: params.remaining(),
                });
            }
            let mut pbody = params.copy_to_bytes(plen);
            if ptype == 2 {
                // capabilities
                while pbody.remaining() >= 2 {
                    let code = pbody.get_u8();
                    let clen = pbody.get_u8() as usize;
                    if pbody.remaining() < clen {
                        return Err(WireError::Truncated {
                            what: "capability",
                            needed: clen,
                            have: pbody.remaining(),
                        });
                    }
                    let mut cbody = pbody.copy_to_bytes(clen);
                    match code {
                        cap_code::FOUR_OCTET_AS if clen == 4 => {
                            asn = Asn(cbody.get_u32());
                        }
                        cap_code::MULTIPROTOCOL if clen == 4 => {
                            let afi = cbody.get_u16();
                            let _reserved = cbody.get_u8();
                            let safi = cbody.get_u8();
                            // unknown AFI/SAFI pairs are skipped, not fatal
                            if let Some(fam) = AddressFamily::from_afi_safi(afi, safi) {
                                mp_families.insert(fam);
                            }
                        }
                        cap_code::ADD_PATH if clen.is_multiple_of(4) => {
                            while cbody.remaining() >= 4 {
                                let afi = cbody.get_u16();
                                let safi = cbody.get_u8();
                                let mode = cbody.get_u8();
                                // only send+receive-capable peers count
                                if mode & ADD_PATH_SEND_RECEIVE != 0 {
                                    if let Some(fam) = AddressFamily::from_afi_safi(afi, safi) {
                                        add_paths.insert(fam);
                                    }
                                }
                            }
                        }
                        _ => {} // tolerate unknown capabilities
                    }
                }
            }
        }
        Ok(OpenMessage {
            asn,
            hold_time,
            router_id,
            mp_families,
            add_paths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::BgpMessage;
    use bytes::BytesMut;

    fn roundtrip(m: OpenMessage) -> OpenMessage {
        let msg = BgpMessage::Open(m);
        let bytes = msg.encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        match BgpMessage::decode(&mut buf).unwrap().unwrap() {
            BgpMessage::Open(o) => o,
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn two_octet_asn_roundtrip() {
        let m = OpenMessage::new(Asn(65000), 90, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn four_octet_asn_uses_capability() {
        let m = OpenMessage::new(Asn(400_000), 180, Ipv4Addr::new(192, 0, 2, 1));
        let back = roundtrip(m.clone());
        assert_eq!(back.asn, Asn(400_000));
        // wire 2-octet field must be AS_TRANS
        let bytes = BgpMessage::Open(m).encode_to_vec().unwrap();
        let two = u16::from_be_bytes([bytes[20], bytes[21]]);
        assert_eq!(two as u32, Asn::TRANS.value());
    }

    #[test]
    fn wrong_version_rejected() {
        let m = OpenMessage::new(Asn(1), 90, Ipv4Addr::new(1, 1, 1, 1));
        let mut bytes = BgpMessage::Open(m).encode_to_vec().unwrap();
        bytes[19] = 3; // version byte
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(BgpMessage::decode(&mut buf), Err(WireError::BadVersion(3)));
    }

    #[test]
    fn truncated_open_rejected() {
        let body = Bytes::from_static(&[4, 0]);
        assert!(OpenMessage::decode_body(&body).is_err());
    }

    #[test]
    fn multiprotocol_and_addpath_caps_roundtrip() {
        let m = OpenMessage::new(Asn(65001), 90, Ipv4Addr::new(10, 0, 0, 1))
            .with_families(AddressFamily::ALL)
            .with_add_paths([AddressFamily::Ipv6Unicast]);
        let back = roundtrip(m.clone());
        assert_eq!(back, m);
        assert_eq!(back.mp_families.len(), 2);
        assert!(back.add_paths.contains(&AddressFamily::Ipv6Unicast));
        assert!(!back.add_paths.contains(&AddressFamily::Ipv4Unicast));
    }

    #[test]
    fn legacy_open_encoding_is_unchanged() {
        // an OPEN without MP/ADD-PATH capabilities must encode exactly as
        // before the multiprotocol work: one capability (code 65)
        let m = OpenMessage::new(Asn(65000), 90, Ipv4Addr::new(10, 0, 0, 1));
        let bytes = BgpMessage::Open(m).encode_to_vec().unwrap();
        // body: ver(1) asn(2) hold(2) rid(4) optlen(1) ptype(1) plen(1) cap(6)
        assert_eq!(bytes.len(), 19 + 10 + 2 + 6);
        assert_eq!(bytes[19 + 10 + 2], 65); // first cap code
    }

    #[test]
    fn unknown_afi_in_caps_is_tolerated() {
        let m = OpenMessage::new(Asn(65000), 90, Ipv4Addr::new(10, 0, 0, 1))
            .with_families([AddressFamily::Ipv6Unicast]);
        let mut bytes = BgpMessage::Open(m).encode_to_vec().unwrap();
        // corrupt the MP capability's AFI to an unknown value (l2vpn = 25)
        let mp_afi_at = 19 + 10 + 2 + 6 + 2;
        assert_eq!(bytes[mp_afi_at - 2], 1); // MP cap code
        bytes[mp_afi_at + 1] = 25;
        let mut buf = BytesMut::from(&bytes[..]);
        match BgpMessage::decode(&mut buf).unwrap().unwrap() {
            BgpMessage::Open(o) => assert!(o.mp_families.is_empty()),
            other => panic!("wrong type {other:?}"),
        }
    }
}
