//! BGP wire protocol (RFC 4271) and MRT storage format (RFC 6396).
//!
//! This crate is the substrate for GILL's collection platform (§8–§9): the
//! custom per-peer BGP daemon speaks this codec over TCP, and collected
//! updates are archived as MRT `BGP4MP_MESSAGE_AS4` records.
//!
//! * [`message`] — framing (marker/length/type) and the message enum.
//! * [`open`] — OPEN with the RFC 6793 four-octet-ASN capability.
//! * [`update`] — UPDATE with ORIGIN / AS_PATH / NEXT_HOP / COMMUNITIES
//!   attributes and conversions to/from the domain [`bgp_types::BgpUpdate`].
//! * [`notification`] — NOTIFICATION.
//! * [`mrt`] — MRT record writer/reader.
//!
//! Scope: IPv4 unicast NLRI (the simulator's prefix space);
//! `MP_REACH_NLRI` is intentionally out of scope and encodes as an error
//! rather than silently wrong bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod message;
pub mod mrt;
pub mod notification;
pub mod open;
pub mod table_dump;
pub mod update;

pub use error::{WireError, WireResult};
pub use message::{BgpMessage, MAX_MESSAGE_LEN, MIN_MESSAGE_LEN};
pub use mrt::{MrtReader, MrtRecord, MrtWriter};
pub use notification::{error_code, Notification};
pub use open::OpenMessage;
pub use table_dump::{PeerEntry, RibRoute, TableDump};
pub use update::{Origin, UpdateMessage};
