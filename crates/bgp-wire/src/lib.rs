//! BGP wire protocol (RFC 4271) and MRT storage format (RFC 6396).
//!
//! This crate is the substrate for GILL's collection platform (§8–§9): the
//! custom per-peer BGP daemon speaks this codec over TCP, and collected
//! updates are archived as MRT `BGP4MP_MESSAGE_AS4` records.
//!
//! * [`message`] — framing (marker/length/type) and the message enum.
//! * [`open`] — OPEN with the RFC 6793 four-octet-ASN, RFC 4760
//!   Multiprotocol and RFC 7911 ADD-PATH capabilities.
//! * [`update`] — UPDATE with ORIGIN / AS_PATH / NEXT_HOP / COMMUNITIES
//!   attributes, `MP_REACH_NLRI`/`MP_UNREACH_NLRI` for IPv6 unicast,
//!   ADD-PATH path identifiers, and conversions to/from the domain
//!   [`bgp_types::BgpUpdate`].
//! * [`notification`] — NOTIFICATION.
//! * [`mrt`] — MRT record writer/reader (AFI 1 and 2 peers; unsupported
//!   record types are skipped and counted, not fatal).
//!
//! Scope: IPv4 and IPv6 unicast (AFI 1/2, SAFI 1). Whether NLRI carries
//! RFC 7911 path identifiers is session state, so decoding is
//! parameterized by [`update::DecodeCtx`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod message;
pub mod mrt;
pub mod notification;
pub mod open;
pub mod table_dump;
pub mod update;

pub use bgp_types::{AddressFamily, FamilySet};
pub use error::{WireError, WireResult};
pub use message::{BgpMessage, MAX_MESSAGE_LEN, MIN_MESSAGE_LEN};
pub use mrt::{MrtReader, MrtRecord, MrtWriter};
pub use notification::{error_code, Notification};
pub use open::OpenMessage;
pub use table_dump::{PeerEntry, RibRoute, TableDump};
pub use update::{DecodeCtx, Nlri, Origin, UpdateMessage};
