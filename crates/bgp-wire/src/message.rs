//! BGP message framing (RFC 4271 §4.1) and the message enum.

use crate::error::{WireError, WireResult};
use crate::notification::Notification;
use crate::open::OpenMessage;
use crate::update::{DecodeCtx, UpdateMessage};
use bytes::{Buf, BufMut, BytesMut};

/// Minimum BGP message size (the 19-byte header alone).
pub const MIN_MESSAGE_LEN: usize = 19;
/// Maximum BGP message size (RFC 4271).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Message type codes.
pub mod type_code {
    /// OPEN.
    pub const OPEN: u8 = 1;
    /// UPDATE.
    pub const UPDATE: u8 = 2;
    /// NOTIFICATION.
    pub const NOTIFICATION: u8 = 3;
    /// KEEPALIVE.
    pub const KEEPALIVE: u8 = 4;
}

/// A decoded BGP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BgpMessage {
    /// Session establishment.
    Open(OpenMessage),
    /// Route announcement / withdrawal.
    Update(UpdateMessage),
    /// Error report; closes the session.
    Notification(Notification),
    /// Hold-timer refresh.
    Keepalive,
}

impl BgpMessage {
    /// The message's wire type code.
    pub fn type_code(&self) -> u8 {
        match self {
            BgpMessage::Open(_) => type_code::OPEN,
            BgpMessage::Update(_) => type_code::UPDATE,
            BgpMessage::Notification(_) => type_code::NOTIFICATION,
            BgpMessage::Keepalive => type_code::KEEPALIVE,
        }
    }

    /// Encodes the full message (header + body) into `out`.
    pub fn encode(&self, out: &mut BytesMut) -> WireResult<()> {
        let mut body = BytesMut::new();
        match self {
            BgpMessage::Open(m) => m.encode_body(&mut body)?,
            BgpMessage::Update(m) => m.encode_body(&mut body)?,
            BgpMessage::Notification(m) => m.encode_body(&mut body),
            BgpMessage::Keepalive => {}
        }
        let len = MIN_MESSAGE_LEN + body.len();
        if len > MAX_MESSAGE_LEN {
            return Err(WireError::BadLength(len as u16));
        }
        out.reserve(len);
        out.put_bytes(0xff, 16);
        out.put_u16(len as u16);
        out.put_u8(self.type_code());
        out.extend_from_slice(&body);
        Ok(())
    }

    /// Encodes into a fresh buffer.
    pub fn encode_to_vec(&self) -> WireResult<Vec<u8>> {
        let mut b = BytesMut::new();
        self.encode(&mut b)?;
        Ok(b.to_vec())
    }

    /// Attempts to decode one message from the front of `buf`, assuming a
    /// classic session (no ADD-PATH negotiated).
    ///
    /// Returns `Ok(None)` when the buffer does not yet hold a complete
    /// message (stream decoding); consumes the message bytes on success.
    pub fn decode(buf: &mut BytesMut) -> WireResult<Option<BgpMessage>> {
        Self::decode_ctx(buf, &DecodeCtx::default())
    }

    /// Attempts to decode one message under the session's negotiated
    /// [`DecodeCtx`] (governs ADD-PATH path-id parsing in UPDATEs).
    pub fn decode_ctx(buf: &mut BytesMut, ctx: &DecodeCtx) -> WireResult<Option<BgpMessage>> {
        if buf.len() < MIN_MESSAGE_LEN {
            return Ok(None);
        }
        // peek header
        if buf[..16].iter().any(|&b| b != 0xff) {
            return Err(WireError::BadMarker);
        }
        let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if !(MIN_MESSAGE_LEN..=MAX_MESSAGE_LEN).contains(&len) {
            return Err(WireError::BadLength(len as u16));
        }
        if buf.len() < len {
            return Ok(None);
        }
        let ty = buf[18];
        let mut msg = buf.split_to(len);
        msg.advance(MIN_MESSAGE_LEN);
        let body = msg.freeze();
        let decoded = match ty {
            type_code::OPEN => BgpMessage::Open(OpenMessage::decode_body(&body)?),
            type_code::UPDATE => BgpMessage::Update(UpdateMessage::decode_body_ctx(&body, ctx)?),
            type_code::NOTIFICATION => BgpMessage::Notification(Notification::decode_body(&body)?),
            type_code::KEEPALIVE => {
                if !body.is_empty() {
                    return Err(WireError::BadLength((MIN_MESSAGE_LEN + body.len()) as u16));
                }
                BgpMessage::Keepalive
            }
            other => return Err(WireError::UnknownMessageType(other)),
        };
        Ok(Some(decoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keepalive_roundtrip() {
        let m = BgpMessage::Keepalive;
        let bytes = m.encode_to_vec().unwrap();
        assert_eq!(bytes.len(), 19);
        assert_eq!(&bytes[..16], &[0xff; 16]);
        assert_eq!(bytes[18], type_code::KEEPALIVE);
        let mut buf = BytesMut::from(&bytes[..]);
        let back = BgpMessage::decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, m);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_input_returns_none() {
        let m = BgpMessage::Keepalive;
        let bytes = m.encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..10]);
        assert_eq!(BgpMessage::decode(&mut buf).unwrap(), None);
        assert_eq!(buf.len(), 10); // untouched
    }

    #[test]
    fn bad_marker_is_rejected() {
        let m = BgpMessage::Keepalive;
        let mut bytes = m.encode_to_vec().unwrap();
        bytes[0] = 0;
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(BgpMessage::decode(&mut buf), Err(WireError::BadMarker));
    }

    #[test]
    fn bad_length_is_rejected() {
        let m = BgpMessage::Keepalive;
        let mut bytes = m.encode_to_vec().unwrap();
        bytes[16] = 0;
        bytes[17] = 5; // < 19
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            BgpMessage::decode(&mut buf),
            Err(WireError::BadLength(5))
        ));
    }

    #[test]
    fn keepalive_with_body_is_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode_to_vec().unwrap();
        bytes[17] = 20; // claim 1 body byte
        bytes.push(0);
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(BgpMessage::decode(&mut buf).is_err());
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode_to_vec().unwrap();
        bytes[18] = 99;
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(
            BgpMessage::decode(&mut buf),
            Err(WireError::UnknownMessageType(99))
        );
    }

    #[test]
    fn two_messages_stream_decode() {
        let mut bytes = BgpMessage::Keepalive.encode_to_vec().unwrap();
        bytes.extend(BgpMessage::Keepalive.encode_to_vec().unwrap());
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(BgpMessage::decode(&mut buf).unwrap().is_some());
        assert!(BgpMessage::decode(&mut buf).unwrap().is_some());
        assert!(BgpMessage::decode(&mut buf).unwrap().is_none());
    }
}
