//! UPDATE message (RFC 4271 §4.3) with ORIGIN, AS_PATH (4-octet,
//! RFC 6793), NEXT_HOP and COMMUNITIES (RFC 1997) attributes, plus the
//! multiprotocol extensions: MP_REACH_NLRI / MP_UNREACH_NLRI (RFC 4760)
//! for IPv6 unicast and ADD-PATH path identifiers (RFC 7911).
//!
//! IPv4 routes travel in the classic withdrawn-routes / NLRI fields; IPv6
//! routes travel in the MP attributes. Whether NLRI carries a 4-byte path
//! identifier is **session state**, not discoverable from the bytes — so
//! decoding takes a [`DecodeCtx`] holding the per-family ADD-PATH
//! negotiation outcome (the default context decodes classic sessions).

use crate::error::{WireError, WireResult};
use bgp_types::{
    AddressFamily, AsPath, Asn, BgpUpdate, Community, Prefix, Timestamp, UpdateBuilder, VpId,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Path-attribute type codes.
mod attr_code {
    pub const ORIGIN: u8 = 1;
    pub const AS_PATH: u8 = 2;
    pub const NEXT_HOP: u8 = 3;
    pub const COMMUNITIES: u8 = 8;
    pub const MP_REACH_NLRI: u8 = 14;
    pub const MP_UNREACH_NLRI: u8 = 15;
}

/// Attribute flag bits.
mod attr_flag {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const EXTENDED_LEN: u8 = 0x10;
}

/// Per-session decode state: which address families negotiated ADD-PATH
/// (RFC 7911). NLRI in those families is prefixed with a 4-byte path
/// identifier; the bytes are ambiguous without this knowledge, which is
/// why it rides alongside the buffer instead of being sniffed from it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeCtx {
    /// IPv4 unicast NLRI carries path identifiers.
    pub addpath_v4: bool,
    /// IPv6 unicast NLRI carries path identifiers.
    pub addpath_v6: bool,
}

impl DecodeCtx {
    /// Context for a session that negotiated ADD-PATH on `families`.
    pub fn from_families<I: IntoIterator<Item = AddressFamily>>(families: I) -> Self {
        let mut ctx = DecodeCtx::default();
        for f in families {
            match f {
                AddressFamily::Ipv4Unicast => ctx.addpath_v4 = true,
                AddressFamily::Ipv6Unicast => ctx.addpath_v6 = true,
            }
        }
        ctx
    }

    /// Whether NLRI of `family` carries path identifiers.
    pub fn addpath(&self, family: AddressFamily) -> bool {
        match family {
            AddressFamily::Ipv4Unicast => self.addpath_v4,
            AddressFamily::Ipv6Unicast => self.addpath_v6,
        }
    }
}

/// One unit of (un)reachability information: a prefix, optionally tagged
/// with an ADD-PATH path identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nlri {
    /// The route's prefix.
    pub prefix: Prefix,
    /// RFC 7911 path identifier; `Some` exactly when the encoding carries
    /// the 4-byte id (i.e. the session negotiated ADD-PATH for the
    /// prefix's family).
    pub path_id: Option<u32>,
}

impl Nlri {
    /// NLRI with a path identifier.
    pub fn with_path_id(prefix: Prefix, path_id: u32) -> Self {
        Nlri {
            prefix,
            path_id: Some(path_id),
        }
    }
}

impl From<Prefix> for Nlri {
    fn from(prefix: Prefix) -> Self {
        Nlri {
            prefix,
            path_id: None,
        }
    }
}

/// A decoded UPDATE message (IPv4 and IPv6 unicast).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UpdateMessage {
    /// Withdrawn routes (v4 from the classic field, v6 from
    /// MP_UNREACH_NLRI).
    pub withdrawn: Vec<Nlri>,
    /// Announced routes (v4 from the classic NLRI field, v6 from
    /// MP_REACH_NLRI).
    pub announced: Vec<Nlri>,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// AS_PATH (empty when there is no announcement).
    pub as_path: AsPath,
    /// NEXT_HOP (required when a v4 route is announced).
    pub next_hop: Option<Ipv4Addr>,
    /// MP_REACH next hop (required when a v6 route is announced).
    pub mp_next_hop: Option<Ipv6Addr>,
    /// COMMUNITIES attribute values.
    pub communities: Vec<Community>,
}

/// ORIGIN attribute values.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Origin {
    /// Interior Gateway Protocol.
    #[default]
    Igp,
    /// Exterior Gateway Protocol (historical).
    Egp,
    /// Incomplete.
    Incomplete,
}

impl Origin {
    fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    fn from_code(c: u8) -> WireResult<Self> {
        match c {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(WireError::BadAttribute {
                code: attr_code::ORIGIN,
                reason: "unknown origin value",
            }),
        }
    }
}

impl UpdateMessage {
    /// An announcement of an IPv4 `prefix` with the given path and
    /// communities.
    pub fn announce(
        prefix: Prefix,
        as_path: AsPath,
        next_hop: Ipv4Addr,
        communities: Vec<Community>,
    ) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            announced: vec![prefix.into()],
            origin: Origin::Igp,
            as_path,
            next_hop: Some(next_hop),
            mp_next_hop: None,
            communities,
        }
    }

    /// An announcement of an IPv6 `prefix` (travels in MP_REACH_NLRI).
    pub fn announce_v6(
        prefix: Prefix,
        as_path: AsPath,
        next_hop: Ipv6Addr,
        communities: Vec<Community>,
    ) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            announced: vec![prefix.into()],
            origin: Origin::Igp,
            as_path,
            next_hop: None,
            mp_next_hop: Some(next_hop),
            communities,
        }
    }

    /// A withdrawal of `prefix` (either family).
    pub fn withdraw(prefix: Prefix) -> Self {
        UpdateMessage {
            withdrawn: vec![prefix.into()],
            ..UpdateMessage::default()
        }
    }

    /// Drops RFC 7911 path identifiers from every NLRI. `BGP4MP_MESSAGE_AS4`
    /// records carry no ADD-PATH signal (RFC 8050 defines dedicated subtypes
    /// this platform does not emit), so MRT exporters call this at the
    /// archive boundary; the native segment store preserves path ids.
    pub fn without_path_ids(mut self) -> Self {
        for n in self.announced.iter_mut().chain(self.withdrawn.iter_mut()) {
            n.path_id = None;
        }
        self
    }

    /// Converts a domain [`BgpUpdate`] into a wire message. Next hops are
    /// derived from the first-hop ASN (synthetic but deterministic); the
    /// update's `path_id` rides on the NLRI.
    pub fn from_domain(u: &BgpUpdate) -> WireResult<Self> {
        let nlri = Nlri {
            prefix: u.prefix,
            path_id: u.path_id,
        };
        Ok(if u.is_announce() {
            let first = u.path.first_hop().map(|a| a.value());
            let mut m = if u.prefix.is_ipv6() {
                let nh = Ipv6Addr::new(
                    0x2001,
                    0xdb8,
                    0xffff,
                    0,
                    0,
                    0,
                    (first.unwrap_or(1) >> 16) as u16,
                    first.unwrap_or(1) as u16,
                );
                UpdateMessage::announce_v6(
                    u.prefix,
                    u.path.clone(),
                    nh,
                    u.communities.iter().copied().collect(),
                )
            } else {
                let nh = first
                    .map(|a| Ipv4Addr::from(0x0a00_0000u32 | (a & 0x00ff_ffff)))
                    .unwrap_or(Ipv4Addr::new(10, 0, 0, 1));
                UpdateMessage::announce(
                    u.prefix,
                    u.path.clone(),
                    nh,
                    u.communities.iter().copied().collect(),
                )
            };
            m.announced[0] = nlri;
            m
        } else {
            let mut m = UpdateMessage::withdraw(u.prefix);
            m.withdrawn[0] = nlri;
            m
        })
    }

    /// Converts back to a domain update observed by `vp` at `time`.
    /// Withdrawals map to withdraw updates; each announced prefix yields
    /// one update (this helper returns them all).
    pub fn to_domain(&self, vp: VpId, time: Timestamp) -> Vec<BgpUpdate> {
        let mut out = Vec::new();
        for n in &self.withdrawn {
            let mut b = UpdateBuilder::withdraw(vp, n.prefix).at(time);
            if let Some(id) = n.path_id {
                b = b.path_id(id);
            }
            out.push(b.build());
        }
        for n in &self.announced {
            let mut b = UpdateBuilder::announce(vp, n.prefix)
                .at(time)
                .as_path(self.as_path.clone())
                .communities(self.communities.iter().copied());
            if let Some(id) = n.path_id {
                b = b.path_id(id);
            }
            out.push(b.build());
        }
        out
    }

    /// Encodes the message body. v4 routes go to the classic fields, v6
    /// routes to MP_REACH/MP_UNREACH attributes; NLRI is path-id-prefixed
    /// exactly where `path_id` is `Some`.
    pub fn encode_body(&self, out: &mut BytesMut) -> WireResult<()> {
        let v4_withdrawn: Vec<&Nlri> = self
            .withdrawn
            .iter()
            .filter(|n| !n.prefix.is_ipv6())
            .collect();
        let v6_withdrawn: Vec<&Nlri> = self
            .withdrawn
            .iter()
            .filter(|n| n.prefix.is_ipv6())
            .collect();
        let v4_announced: Vec<&Nlri> = self
            .announced
            .iter()
            .filter(|n| !n.prefix.is_ipv6())
            .collect();
        let v6_announced: Vec<&Nlri> = self
            .announced
            .iter()
            .filter(|n| n.prefix.is_ipv6())
            .collect();
        // withdrawn routes (v4)
        let mut wd = BytesMut::new();
        for n in &v4_withdrawn {
            encode_nlri(n, &mut wd)?;
        }
        out.put_u16(wd.len() as u16);
        out.extend_from_slice(&wd);
        // path attributes
        let mut attrs = BytesMut::new();
        if !self.announced.is_empty() {
            put_attr(
                &mut attrs,
                attr_flag::TRANSITIVE,
                attr_code::ORIGIN,
                &[self.origin.code()],
            );
            let mut ap = BytesMut::new();
            if !self.as_path.is_empty() {
                ap.put_u8(2); // AS_SEQUENCE
                ap.put_u8(self.as_path.hop_count() as u8);
                for a in self.as_path.hops() {
                    ap.put_u32(a.value());
                }
            }
            put_attr(&mut attrs, attr_flag::TRANSITIVE, attr_code::AS_PATH, &ap);
            if !v4_announced.is_empty() {
                let nh = self.next_hop.ok_or(WireError::BadAttribute {
                    code: attr_code::NEXT_HOP,
                    reason: "v4 announcement without next hop",
                })?;
                put_attr(
                    &mut attrs,
                    attr_flag::TRANSITIVE,
                    attr_code::NEXT_HOP,
                    &u32::from(nh).to_be_bytes(),
                );
            }
            if !self.communities.is_empty() {
                let mut cb = BytesMut::new();
                for c in &self.communities {
                    cb.put_u32(c.raw());
                }
                put_attr(
                    &mut attrs,
                    attr_flag::OPTIONAL | attr_flag::TRANSITIVE,
                    attr_code::COMMUNITIES,
                    &cb,
                );
            }
        }
        if !v6_announced.is_empty() {
            let nh = self.mp_next_hop.ok_or(WireError::BadAttribute {
                code: attr_code::MP_REACH_NLRI,
                reason: "v6 announcement without mp next hop",
            })?;
            let mut mp = BytesMut::new();
            mp.put_u16(AddressFamily::Ipv6Unicast.afi());
            mp.put_u8(AddressFamily::Ipv6Unicast.safi());
            mp.put_u8(16); // next-hop length
            mp.extend_from_slice(&nh.octets());
            mp.put_u8(0); // reserved
            for n in &v6_announced {
                encode_nlri(n, &mut mp)?;
            }
            put_attr(
                &mut attrs,
                attr_flag::OPTIONAL,
                attr_code::MP_REACH_NLRI,
                &mp,
            );
        }
        if !v6_withdrawn.is_empty() {
            let mut mp = BytesMut::new();
            mp.put_u16(AddressFamily::Ipv6Unicast.afi());
            mp.put_u8(AddressFamily::Ipv6Unicast.safi());
            for n in &v6_withdrawn {
                encode_nlri(n, &mut mp)?;
            }
            put_attr(
                &mut attrs,
                attr_flag::OPTIONAL,
                attr_code::MP_UNREACH_NLRI,
                &mp,
            );
        }
        out.put_u16(attrs.len() as u16);
        out.extend_from_slice(&attrs);
        // NLRI (v4)
        for n in &v4_announced {
            encode_nlri(n, out)?;
        }
        Ok(())
    }

    /// Decodes the message body on a classic session (no ADD-PATH).
    pub fn decode_body(body: &Bytes) -> WireResult<UpdateMessage> {
        Self::decode_body_ctx(body, &DecodeCtx::default())
    }

    /// Decodes the message body under the session's negotiated
    /// [`DecodeCtx`].
    pub fn decode_body_ctx(body: &Bytes, ctx: &DecodeCtx) -> WireResult<UpdateMessage> {
        let mut b = body.clone();
        let need = |b: &Bytes, n: usize, what: &'static str| -> WireResult<()> {
            if b.remaining() < n {
                Err(WireError::Truncated {
                    what,
                    needed: n,
                    have: b.remaining(),
                })
            } else {
                Ok(())
            }
        };
        need(&b, 2, "withdrawn length")?;
        let wd_len = b.get_u16() as usize;
        need(&b, wd_len, "withdrawn routes")?;
        let mut wd = b.copy_to_bytes(wd_len);
        let mut withdrawn = Vec::new();
        while wd.has_remaining() {
            withdrawn.push(decode_nlri(&mut wd, false, ctx.addpath_v4)?);
        }
        need(&b, 2, "attribute length")?;
        let at_len = b.get_u16() as usize;
        need(&b, at_len, "path attributes")?;
        let mut attrs = b.copy_to_bytes(at_len);
        let mut origin = Origin::Igp;
        let mut as_path = AsPath::empty();
        let mut next_hop = None;
        let mut mp_next_hop = None;
        let mut communities = Vec::new();
        let mut announced = Vec::new();
        while attrs.has_remaining() {
            if attrs.remaining() < 3 {
                return Err(WireError::Truncated {
                    what: "attribute header",
                    needed: 3,
                    have: attrs.remaining(),
                });
            }
            let flags = attrs.get_u8();
            let code = attrs.get_u8();
            let len = if flags & attr_flag::EXTENDED_LEN != 0 {
                if attrs.remaining() < 2 {
                    return Err(WireError::Truncated {
                        what: "extended attribute length",
                        needed: 2,
                        have: attrs.remaining(),
                    });
                }
                attrs.get_u16() as usize
            } else {
                if !attrs.has_remaining() {
                    return Err(WireError::Truncated {
                        what: "attribute length",
                        needed: 1,
                        have: 0,
                    });
                }
                attrs.get_u8() as usize
            };
            if attrs.remaining() < len {
                return Err(WireError::Truncated {
                    what: "attribute body",
                    needed: len,
                    have: attrs.remaining(),
                });
            }
            let mut abody = attrs.copy_to_bytes(len);
            match code {
                attr_code::ORIGIN => {
                    if len != 1 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "origin length != 1",
                        });
                    }
                    origin = Origin::from_code(abody.get_u8())?;
                }
                attr_code::AS_PATH => {
                    let mut hops = Vec::new();
                    while abody.has_remaining() {
                        if abody.remaining() < 2 {
                            return Err(WireError::BadAttribute {
                                code,
                                reason: "truncated segment header",
                            });
                        }
                        let _seg_type = abody.get_u8(); // sets flattened
                        let count = abody.get_u8() as usize;
                        if abody.remaining() < count * 4 {
                            return Err(WireError::BadAttribute {
                                code,
                                reason: "truncated segment",
                            });
                        }
                        for _ in 0..count {
                            hops.push(Asn(abody.get_u32()));
                        }
                    }
                    as_path = AsPath::new(hops);
                }
                attr_code::NEXT_HOP => {
                    if len != 4 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "next hop length != 4",
                        });
                    }
                    next_hop = Some(Ipv4Addr::from(abody.get_u32()));
                }
                attr_code::COMMUNITIES => {
                    if len % 4 != 0 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "communities length not multiple of 4",
                        });
                    }
                    while abody.has_remaining() {
                        communities.push(Community(abody.get_u32()));
                    }
                }
                attr_code::MP_REACH_NLRI => {
                    if abody.remaining() < 4 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "MP_REACH header too short",
                        });
                    }
                    let afi = abody.get_u16();
                    let safi = abody.get_u8();
                    let family =
                        AddressFamily::from_afi_safi(afi, safi).ok_or(WireError::BadAttribute {
                            code,
                            reason: "unsupported AFI/SAFI",
                        })?;
                    let nh_len = abody.get_u8() as usize;
                    if abody.remaining() < nh_len + 1 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "MP_REACH next hop truncated",
                        });
                    }
                    let nh = abody.copy_to_bytes(nh_len);
                    match family {
                        AddressFamily::Ipv6Unicast => {
                            // 16 (global) or 32 (global + link-local)
                            if nh_len != 16 && nh_len != 32 {
                                return Err(WireError::BadAttribute {
                                    code,
                                    reason: "bad v6 next hop length",
                                });
                            }
                            let mut oct = [0u8; 16];
                            oct.copy_from_slice(&nh[..16]);
                            mp_next_hop = Some(Ipv6Addr::from(oct));
                        }
                        AddressFamily::Ipv4Unicast => {
                            if nh_len != 4 {
                                return Err(WireError::BadAttribute {
                                    code,
                                    reason: "bad v4 next hop length",
                                });
                            }
                            let mut oct = [0u8; 4];
                            oct.copy_from_slice(&nh[..4]);
                            next_hop = Some(Ipv4Addr::from(oct));
                        }
                    }
                    let _reserved = abody.get_u8();
                    while abody.has_remaining() {
                        announced.push(decode_nlri(
                            &mut abody,
                            family.is_ipv6(),
                            ctx.addpath(family),
                        )?);
                    }
                }
                attr_code::MP_UNREACH_NLRI => {
                    if abody.remaining() < 3 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "MP_UNREACH header too short",
                        });
                    }
                    let afi = abody.get_u16();
                    let safi = abody.get_u8();
                    let family =
                        AddressFamily::from_afi_safi(afi, safi).ok_or(WireError::BadAttribute {
                            code,
                            reason: "unsupported AFI/SAFI",
                        })?;
                    while abody.has_remaining() {
                        withdrawn.push(decode_nlri(
                            &mut abody,
                            family.is_ipv6(),
                            ctx.addpath(family),
                        )?);
                    }
                }
                _ => {} // ignore unknown attributes (tolerant reader)
            }
        }
        while b.has_remaining() {
            announced.push(decode_nlri(&mut b, false, ctx.addpath_v4)?);
        }
        Ok(UpdateMessage {
            withdrawn,
            announced,
            origin,
            as_path,
            next_hop,
            mp_next_hop,
            communities,
        })
    }
}

fn put_attr(out: &mut BytesMut, flags: u8, code: u8, body: &[u8]) {
    if body.len() > 255 {
        out.put_u8(flags | attr_flag::EXTENDED_LEN);
        out.put_u8(code);
        out.put_u16(body.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(code);
        out.put_u8(body.len() as u8);
    }
    out.extend_from_slice(body);
}

/// Encodes one NLRI unit: optional 4-byte path id, length byte, minimal
/// prefix octets (RFC 4271 §4.3 / RFC 7911 §3).
fn encode_nlri(n: &Nlri, out: &mut BytesMut) -> WireResult<()> {
    if let Some(id) = n.path_id {
        out.put_u32(id);
    }
    let p = &n.prefix;
    out.put_u8(p.len());
    let octets = (p.len() as usize).div_ceil(8);
    if p.is_ipv6() {
        let bits = p.raw_bits().to_be_bytes();
        out.extend_from_slice(&bits[..octets]);
    } else {
        let bits = (p.raw_bits() as u32).to_be_bytes();
        out.extend_from_slice(&bits[..octets]);
    }
    Ok(())
}

/// Decodes one NLRI unit of the given family; reads a 4-byte path id
/// first when `addpath` is negotiated.
fn decode_nlri(b: &mut Bytes, v6: bool, addpath: bool) -> WireResult<Nlri> {
    let path_id = if addpath {
        if b.remaining() < 4 {
            return Err(WireError::Truncated {
                what: "path identifier",
                needed: 4,
                have: b.remaining(),
            });
        }
        Some(b.get_u32())
    } else {
        None
    };
    if !b.has_remaining() {
        return Err(WireError::Truncated {
            what: "prefix length",
            needed: 1,
            have: 0,
        });
    }
    let len = b.get_u8();
    let max = if v6 { 128 } else { 32 };
    if len > max {
        return Err(WireError::BadPrefixLength(len));
    }
    let octets = (len as usize).div_ceil(8);
    if b.remaining() < octets {
        return Err(WireError::Truncated {
            what: "prefix octets",
            needed: octets,
            have: b.remaining(),
        });
    }
    let prefix = if v6 {
        let mut addr = [0u8; 16];
        for slot in addr.iter_mut().take(octets) {
            *slot = b.get_u8();
        }
        Prefix::v6(Ipv6Addr::from(addr), len)
    } else {
        let mut addr = [0u8; 4];
        for slot in addr.iter_mut().take(octets) {
            *slot = b.get_u8();
        }
        Prefix::v4(Ipv4Addr::from(addr), len)
    };
    Ok(Nlri { prefix, path_id })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::BgpMessage;

    fn roundtrip(m: UpdateMessage) -> UpdateMessage {
        roundtrip_ctx(m, &DecodeCtx::default())
    }

    fn roundtrip_ctx(m: UpdateMessage, ctx: &DecodeCtx) -> UpdateMessage {
        let bytes = BgpMessage::Update(m).encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        match BgpMessage::decode_ctx(&mut buf, ctx).unwrap().unwrap() {
            BgpMessage::Update(u) => u,
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn announce_roundtrip() {
        let m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([65001, 65002, 400_000]),
            Ipv4Addr::new(10, 1, 2, 3),
            vec![Community::new(65001, 100), Community::NO_EXPORT],
        );
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn withdraw_roundtrip() {
        let m = UpdateMessage::withdraw("10.42.0.0/16".parse().unwrap());
        let back = roundtrip(m.clone());
        assert_eq!(back, m);
        assert!(back.announced.is_empty());
        assert!(back.as_path.is_empty());
    }

    #[test]
    fn v6_announce_travels_in_mp_reach() {
        let m = UpdateMessage::announce_v6(
            "2001:db8:42::/48".parse().unwrap(),
            AsPath::from_u32s([65001, 2, 3]),
            "2001:db8::1".parse().unwrap(),
            vec![Community::new(65001, 100)],
        );
        let back = roundtrip(m.clone());
        assert_eq!(back, m);
        assert_eq!(back.mp_next_hop, Some("2001:db8::1".parse().unwrap()));
        // the classic NLRI field must stay empty: body ends after attrs
        let bytes = BgpMessage::Update(m).encode_to_vec().unwrap();
        let wd_len = u16::from_be_bytes([bytes[19], bytes[20]]) as usize;
        assert_eq!(wd_len, 0);
        let at_len = u16::from_be_bytes([bytes[21 + wd_len], bytes[22 + wd_len]]) as usize;
        assert_eq!(bytes.len(), 23 + wd_len + at_len);
    }

    #[test]
    fn v6_withdraw_travels_in_mp_unreach() {
        let m = UpdateMessage::withdraw("2001:db8:7::/64".parse().unwrap());
        let back = roundtrip(m.clone());
        assert_eq!(back, m);
        assert_eq!(back.withdrawn.len(), 1);
        assert!(back.withdrawn[0].prefix.is_ipv6());
    }

    #[test]
    fn mixed_family_update_roundtrips() {
        let mut m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([1, 2, 3]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        );
        m.mp_next_hop = Some("2001:db8::9".parse().unwrap());
        m.announced
            .push("2001:db8:1::/48".parse::<Prefix>().unwrap().into());
        m.withdrawn
            .push("203.0.113.0/24".parse::<Prefix>().unwrap().into());
        m.withdrawn
            .push("2001:db8:dead::/48".parse::<Prefix>().unwrap().into());
        let back = roundtrip(m.clone());
        // family split is canonicalized on decode: v4 first, then MP routes
        assert_eq!(back.announced.len(), 2);
        assert_eq!(back.withdrawn.len(), 2);
        for n in m.announced {
            assert!(back.announced.contains(&n));
        }
        for n in m.withdrawn {
            assert!(back.withdrawn.contains(&n));
        }
    }

    #[test]
    fn addpath_nlri_roundtrips_under_ctx() {
        let ctx = DecodeCtx {
            addpath_v4: true,
            addpath_v6: true,
        };
        let mut m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([65001, 2]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        );
        m.announced[0].path_id = Some(7);
        m.mp_next_hop = Some("2001:db8::1".parse().unwrap());
        m.announced
            .push(Nlri::with_path_id("2001:db8:5::/48".parse().unwrap(), 42));
        m.withdrawn
            .push(Nlri::with_path_id("198.51.100.0/24".parse().unwrap(), 9));
        let back = roundtrip_ctx(m.clone(), &ctx);
        // decode canonicalizes ordering (MP routes parse before the
        // trailing classic NLRI field), so compare as sets
        assert_eq!(back.announced.len(), m.announced.len());
        assert_eq!(back.withdrawn.len(), m.withdrawn.len());
        for n in &m.announced {
            assert!(back.announced.contains(n), "{n:?}");
        }
        for n in &m.withdrawn {
            assert!(back.withdrawn.contains(n), "{n:?}");
        }
    }

    #[test]
    fn addpath_bytes_without_ctx_misparse_or_error() {
        // the same bytes decoded without the ADD-PATH ctx must not yield
        // the path-id routes (they are ambiguous) — and must never panic
        let mut m = UpdateMessage::withdraw("198.51.100.0/24".parse().unwrap());
        m.withdrawn[0].path_id = Some(0x01020304);
        let bytes = BgpMessage::Update(m).encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        if let Ok(Some(BgpMessage::Update(u))) = BgpMessage::decode(&mut buf) {
            assert_ne!(u.withdrawn.first().map(|n| n.prefix.len()), Some(24));
        }
    }

    #[test]
    fn odd_prefix_lengths_roundtrip() {
        for len in [0u8, 1, 7, 8, 9, 15, 17, 23, 25, 32] {
            let p = Prefix::v4(Ipv4Addr::new(198, 51, 100, 255), len);
            let m = UpdateMessage::announce(
                p,
                AsPath::from_u32s([1, 2]),
                Ipv4Addr::new(10, 0, 0, 1),
                vec![],
            );
            let back = roundtrip(m);
            assert_eq!(back.announced[0].prefix, p, "len {len}");
        }
    }

    #[test]
    fn odd_v6_prefix_lengths_roundtrip() {
        for len in [0u8, 1, 9, 33, 47, 63, 64, 65, 97, 127, 128] {
            let p = Prefix::v6("2001:db8:a:b:c:d:e:f".parse().unwrap(), len);
            let m = UpdateMessage::announce_v6(
                p,
                AsPath::from_u32s([1, 2]),
                "2001:db8::1".parse().unwrap(),
                vec![],
            );
            let back = roundtrip(m);
            assert_eq!(back.announced[0].prefix, p, "len {len}");
        }
    }

    #[test]
    fn multiple_prefixes_roundtrip() {
        let mut m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([1, 2, 3]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        );
        m.announced
            .push("198.51.100.0/25".parse::<Prefix>().unwrap().into());
        m.withdrawn
            .push("203.0.113.0/24".parse::<Prefix>().unwrap().into());
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn domain_conversion_roundtrips() {
        let u = UpdateBuilder::announce(VpId::from_asn(Asn(65000)), Prefix::synthetic(7))
            .at(Timestamp::from_secs(42))
            .path([65000, 2, 3])
            .community(2, 200)
            .build();
        let wire = UpdateMessage::from_domain(&u).unwrap();
        let back = wire.to_domain(u.vp, u.time);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].prefix, u.prefix);
        assert_eq!(back[0].path, u.path);
        assert_eq!(back[0].communities, u.communities);
        assert_eq!(back[0].kind, u.kind);
    }

    #[test]
    fn domain_conversion_roundtrips_v6_and_path_id() {
        let u = UpdateBuilder::announce(VpId::from_asn(Asn(65000)), Prefix::synthetic_v6(9))
            .at(Timestamp::from_secs(42))
            .path([65000, 2, 3])
            .path_id(5)
            .community(2, 200)
            .build();
        let wire = UpdateMessage::from_domain(&u).unwrap();
        assert!(wire.mp_next_hop.is_some());
        let back = wire.to_domain(u.vp, u.time);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], u);
    }

    #[test]
    fn domain_withdraw_conversion() {
        let u = UpdateBuilder::withdraw(VpId::from_asn(Asn(65000)), Prefix::synthetic(9))
            .at(Timestamp::from_secs(1))
            .build();
        let wire = UpdateMessage::from_domain(&u).unwrap();
        let back = wire.to_domain(u.vp, u.time);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].kind, u.kind);
        assert_eq!(back[0].prefix, u.prefix);
    }

    #[test]
    fn announcement_without_next_hop_fails_encode() {
        let mut m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([1]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        );
        m.next_hop = None;
        let mut out = BytesMut::new();
        assert!(m.encode_body(&mut out).is_err());
        let mut m6 = UpdateMessage::announce_v6(
            "2001:db8::/32".parse().unwrap(),
            AsPath::from_u32s([1]),
            "2001:db8::1".parse().unwrap(),
            vec![],
        );
        m6.mp_next_hop = None;
        let mut out = BytesMut::new();
        assert!(m6.encode_body(&mut out).is_err());
    }

    #[test]
    fn bad_prefix_length_rejected() {
        // craft body: no withdrawn, no attrs, NLRI with length 33
        let body = Bytes::from_static(&[0, 0, 0, 0, 33, 1, 2, 3, 4, 5]);
        assert_eq!(
            UpdateMessage::decode_body(&body),
            Err(WireError::BadPrefixLength(33))
        );
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        // attribute code 42 with 2 bytes, then nothing else
        let body = Bytes::from_static(&[0, 0, 0, 4, 0x40, 42, 1, 0]);
        let m = UpdateMessage::decode_body(&body).unwrap();
        assert!(m.announced.is_empty());
        assert!(m.withdrawn.is_empty());
    }

    #[test]
    fn mp_reach_with_unknown_afi_is_rejected() {
        // MP_REACH attr: afi 3, safi 1, nh len 4, nh, reserved
        let body = Bytes::from_static(&[0, 0, 0, 12, 0x80, 14, 9, 0, 3, 1, 4, 10, 0, 0, 1, 0]);
        assert!(matches!(
            UpdateMessage::decode_body(&body),
            Err(WireError::BadAttribute { code: 14, .. })
        ));
    }
}
