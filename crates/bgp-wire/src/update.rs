//! UPDATE message (RFC 4271 §4.3) with ORIGIN, AS_PATH (4-octet,
//! RFC 6793), NEXT_HOP and COMMUNITIES (RFC 1997) attributes.

use crate::error::{WireError, WireResult};
use bgp_types::{AsPath, Asn, BgpUpdate, Community, Prefix, Timestamp, UpdateBuilder, VpId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Path-attribute type codes.
mod attr_code {
    pub const ORIGIN: u8 = 1;
    pub const AS_PATH: u8 = 2;
    pub const NEXT_HOP: u8 = 3;
    pub const COMMUNITIES: u8 = 8;
}

/// Attribute flag bits.
mod attr_flag {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const EXTENDED_LEN: u8 = 0x10;
}

/// ORIGIN attribute values.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Origin {
    /// Interior Gateway Protocol.
    #[default]
    Igp,
    /// Exterior Gateway Protocol (historical).
    Egp,
    /// Incomplete.
    Incomplete,
}

impl Origin {
    fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    fn from_code(c: u8) -> WireResult<Self> {
        match c {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(WireError::BadAttribute {
                code: attr_code::ORIGIN,
                reason: "unknown origin value",
            }),
        }
    }
}

/// A decoded UPDATE message (IPv4 unicast).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UpdateMessage {
    /// Withdrawn prefixes.
    pub withdrawn: Vec<Prefix>,
    /// Announced prefixes (NLRI).
    pub announced: Vec<Prefix>,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// AS_PATH (empty when there is no announcement).
    pub as_path: AsPath,
    /// NEXT_HOP (required when `announced` is non-empty).
    pub next_hop: Option<Ipv4Addr>,
    /// COMMUNITIES attribute values.
    pub communities: Vec<Community>,
}

impl UpdateMessage {
    /// An announcement of `prefix` with the given path and communities.
    pub fn announce(
        prefix: Prefix,
        as_path: AsPath,
        next_hop: Ipv4Addr,
        communities: Vec<Community>,
    ) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            announced: vec![prefix],
            origin: Origin::Igp,
            as_path,
            next_hop: Some(next_hop),
            communities,
        }
    }

    /// A withdrawal of `prefix`.
    pub fn withdraw(prefix: Prefix) -> Self {
        UpdateMessage {
            withdrawn: vec![prefix],
            ..UpdateMessage::default()
        }
    }

    /// Converts a domain [`BgpUpdate`] into a wire message. The next hop
    /// is derived from the first-hop ASN (synthetic but deterministic).
    pub fn from_domain(u: &BgpUpdate) -> WireResult<Self> {
        if u.prefix.is_ipv6() {
            return Err(WireError::Unsupported("IPv6 NLRI (use MP_REACH)"));
        }
        Ok(if u.is_announce() {
            let nh = u
                .path
                .first_hop()
                .map(|a| Ipv4Addr::from(0x0a00_0000u32 | (a.value() & 0x00ff_ffff)))
                .unwrap_or(Ipv4Addr::new(10, 0, 0, 1));
            UpdateMessage::announce(
                u.prefix,
                u.path.clone(),
                nh,
                u.communities.iter().copied().collect(),
            )
        } else {
            UpdateMessage::withdraw(u.prefix)
        })
    }

    /// Converts back to a domain update observed by `vp` at `time`.
    /// Withdrawals map to withdraw updates; each announced prefix yields
    /// one update (this helper returns them all).
    pub fn to_domain(&self, vp: VpId, time: Timestamp) -> Vec<BgpUpdate> {
        let mut out = Vec::new();
        for &p in &self.withdrawn {
            out.push(UpdateBuilder::withdraw(vp, p).at(time).build());
        }
        for &p in &self.announced {
            out.push(
                UpdateBuilder::announce(vp, p)
                    .at(time)
                    .as_path(self.as_path.clone())
                    .communities(self.communities.iter().copied())
                    .build(),
            );
        }
        out
    }

    /// Encodes the message body.
    pub fn encode_body(&self, out: &mut BytesMut) -> WireResult<()> {
        // withdrawn routes
        let mut wd = BytesMut::new();
        for p in &self.withdrawn {
            encode_prefix(p, &mut wd)?;
        }
        out.put_u16(wd.len() as u16);
        out.extend_from_slice(&wd);
        // path attributes
        let mut attrs = BytesMut::new();
        if !self.announced.is_empty() {
            put_attr(
                &mut attrs,
                attr_flag::TRANSITIVE,
                attr_code::ORIGIN,
                &[self.origin.code()],
            );
            let mut ap = BytesMut::new();
            if !self.as_path.is_empty() {
                ap.put_u8(2); // AS_SEQUENCE
                ap.put_u8(self.as_path.hop_count() as u8);
                for a in self.as_path.hops() {
                    ap.put_u32(a.value());
                }
            }
            put_attr(&mut attrs, attr_flag::TRANSITIVE, attr_code::AS_PATH, &ap);
            let nh = self.next_hop.ok_or(WireError::BadAttribute {
                code: attr_code::NEXT_HOP,
                reason: "announcement without next hop",
            })?;
            put_attr(
                &mut attrs,
                attr_flag::TRANSITIVE,
                attr_code::NEXT_HOP,
                &u32::from(nh).to_be_bytes(),
            );
            if !self.communities.is_empty() {
                let mut cb = BytesMut::new();
                for c in &self.communities {
                    cb.put_u32(c.raw());
                }
                put_attr(
                    &mut attrs,
                    attr_flag::OPTIONAL | attr_flag::TRANSITIVE,
                    attr_code::COMMUNITIES,
                    &cb,
                );
            }
        }
        out.put_u16(attrs.len() as u16);
        out.extend_from_slice(&attrs);
        // NLRI
        for p in &self.announced {
            encode_prefix(p, out)?;
        }
        Ok(())
    }

    /// Decodes the message body.
    pub fn decode_body(body: &Bytes) -> WireResult<UpdateMessage> {
        let mut b = body.clone();
        let need = |b: &Bytes, n: usize, what: &'static str| -> WireResult<()> {
            if b.remaining() < n {
                Err(WireError::Truncated {
                    what,
                    needed: n,
                    have: b.remaining(),
                })
            } else {
                Ok(())
            }
        };
        need(&b, 2, "withdrawn length")?;
        let wd_len = b.get_u16() as usize;
        need(&b, wd_len, "withdrawn routes")?;
        let mut wd = b.copy_to_bytes(wd_len);
        let mut withdrawn = Vec::new();
        while wd.has_remaining() {
            withdrawn.push(decode_prefix(&mut wd)?);
        }
        need(&b, 2, "attribute length")?;
        let at_len = b.get_u16() as usize;
        need(&b, at_len, "path attributes")?;
        let mut attrs = b.copy_to_bytes(at_len);
        let mut origin = Origin::Igp;
        let mut as_path = AsPath::empty();
        let mut next_hop = None;
        let mut communities = Vec::new();
        while attrs.has_remaining() {
            if attrs.remaining() < 3 {
                return Err(WireError::Truncated {
                    what: "attribute header",
                    needed: 3,
                    have: attrs.remaining(),
                });
            }
            let flags = attrs.get_u8();
            let code = attrs.get_u8();
            let len = if flags & attr_flag::EXTENDED_LEN != 0 {
                if attrs.remaining() < 2 {
                    return Err(WireError::Truncated {
                        what: "extended attribute length",
                        needed: 2,
                        have: attrs.remaining(),
                    });
                }
                attrs.get_u16() as usize
            } else {
                if !attrs.has_remaining() {
                    return Err(WireError::Truncated {
                        what: "attribute length",
                        needed: 1,
                        have: 0,
                    });
                }
                attrs.get_u8() as usize
            };
            if attrs.remaining() < len {
                return Err(WireError::Truncated {
                    what: "attribute body",
                    needed: len,
                    have: attrs.remaining(),
                });
            }
            let mut abody = attrs.copy_to_bytes(len);
            match code {
                attr_code::ORIGIN => {
                    if len != 1 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "origin length != 1",
                        });
                    }
                    origin = Origin::from_code(abody.get_u8())?;
                }
                attr_code::AS_PATH => {
                    let mut hops = Vec::new();
                    while abody.has_remaining() {
                        if abody.remaining() < 2 {
                            return Err(WireError::BadAttribute {
                                code,
                                reason: "truncated segment header",
                            });
                        }
                        let _seg_type = abody.get_u8(); // sets flattened
                        let count = abody.get_u8() as usize;
                        if abody.remaining() < count * 4 {
                            return Err(WireError::BadAttribute {
                                code,
                                reason: "truncated segment",
                            });
                        }
                        for _ in 0..count {
                            hops.push(Asn(abody.get_u32()));
                        }
                    }
                    as_path = AsPath::new(hops);
                }
                attr_code::NEXT_HOP => {
                    if len != 4 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "next hop length != 4",
                        });
                    }
                    next_hop = Some(Ipv4Addr::from(abody.get_u32()));
                }
                attr_code::COMMUNITIES => {
                    if len % 4 != 0 {
                        return Err(WireError::BadAttribute {
                            code,
                            reason: "communities length not multiple of 4",
                        });
                    }
                    while abody.has_remaining() {
                        communities.push(Community(abody.get_u32()));
                    }
                }
                _ => {} // ignore unknown attributes (tolerant reader)
            }
        }
        let mut announced = Vec::new();
        while b.has_remaining() {
            announced.push(decode_prefix(&mut b)?);
        }
        Ok(UpdateMessage {
            withdrawn,
            announced,
            origin,
            as_path,
            next_hop,
            communities,
        })
    }
}

fn put_attr(out: &mut BytesMut, flags: u8, code: u8, body: &[u8]) {
    if body.len() > 255 {
        out.put_u8(flags | attr_flag::EXTENDED_LEN);
        out.put_u8(code);
        out.put_u16(body.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(code);
        out.put_u8(body.len() as u8);
    }
    out.extend_from_slice(body);
}

/// Encodes an IPv4 prefix in RFC 4271 NLRI form (length byte + minimal
/// octets).
fn encode_prefix(p: &Prefix, out: &mut BytesMut) -> WireResult<()> {
    if p.is_ipv6() {
        return Err(WireError::Unsupported("IPv6 NLRI (use MP_REACH)"));
    }
    out.put_u8(p.len());
    let octets = (p.len() as usize).div_ceil(8);
    let bits = (p.raw_bits() as u32).to_be_bytes();
    out.extend_from_slice(&bits[..octets]);
    Ok(())
}

/// Decodes one NLRI prefix.
fn decode_prefix(b: &mut Bytes) -> WireResult<Prefix> {
    if !b.has_remaining() {
        return Err(WireError::Truncated {
            what: "prefix length",
            needed: 1,
            have: 0,
        });
    }
    let len = b.get_u8();
    if len > 32 {
        return Err(WireError::BadPrefixLength(len));
    }
    let octets = (len as usize).div_ceil(8);
    if b.remaining() < octets {
        return Err(WireError::Truncated {
            what: "prefix octets",
            needed: octets,
            have: b.remaining(),
        });
    }
    let mut addr = [0u8; 4];
    for slot in addr.iter_mut().take(octets) {
        *slot = b.get_u8();
    }
    Ok(Prefix::v4(Ipv4Addr::from(addr), len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::BgpMessage;

    fn roundtrip(m: UpdateMessage) -> UpdateMessage {
        let bytes = BgpMessage::Update(m).encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        match BgpMessage::decode(&mut buf).unwrap().unwrap() {
            BgpMessage::Update(u) => u,
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn announce_roundtrip() {
        let m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([65001, 65002, 400_000]),
            Ipv4Addr::new(10, 1, 2, 3),
            vec![Community::new(65001, 100), Community::NO_EXPORT],
        );
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn withdraw_roundtrip() {
        let m = UpdateMessage::withdraw("10.42.0.0/16".parse().unwrap());
        let back = roundtrip(m.clone());
        assert_eq!(back, m);
        assert!(back.announced.is_empty());
        assert!(back.as_path.is_empty());
    }

    #[test]
    fn odd_prefix_lengths_roundtrip() {
        for len in [0u8, 1, 7, 8, 9, 15, 17, 23, 25, 32] {
            let p = Prefix::v4(Ipv4Addr::new(198, 51, 100, 255), len);
            let m = UpdateMessage::announce(
                p,
                AsPath::from_u32s([1, 2]),
                Ipv4Addr::new(10, 0, 0, 1),
                vec![],
            );
            let back = roundtrip(m);
            assert_eq!(back.announced[0], p, "len {len}");
        }
    }

    #[test]
    fn multiple_prefixes_roundtrip() {
        let mut m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([1, 2, 3]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        );
        m.announced.push("198.51.100.0/25".parse().unwrap());
        m.withdrawn.push("203.0.113.0/24".parse().unwrap());
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn domain_conversion_roundtrips() {
        let u = UpdateBuilder::announce(VpId::from_asn(Asn(65000)), Prefix::synthetic(7))
            .at(Timestamp::from_secs(42))
            .path([65000, 2, 3])
            .community(2, 200)
            .build();
        let wire = UpdateMessage::from_domain(&u).unwrap();
        let back = wire.to_domain(u.vp, u.time);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].prefix, u.prefix);
        assert_eq!(back[0].path, u.path);
        assert_eq!(back[0].communities, u.communities);
        assert_eq!(back[0].kind, u.kind);
    }

    #[test]
    fn domain_withdraw_conversion() {
        let u = UpdateBuilder::withdraw(VpId::from_asn(Asn(65000)), Prefix::synthetic(9))
            .at(Timestamp::from_secs(1))
            .build();
        let wire = UpdateMessage::from_domain(&u).unwrap();
        let back = wire.to_domain(u.vp, u.time);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].kind, u.kind);
        assert_eq!(back[0].prefix, u.prefix);
    }

    #[test]
    fn announcement_without_next_hop_fails_encode() {
        let mut m = UpdateMessage::announce(
            "192.0.2.0/24".parse().unwrap(),
            AsPath::from_u32s([1]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        );
        m.next_hop = None;
        let mut out = BytesMut::new();
        assert!(m.encode_body(&mut out).is_err());
    }

    #[test]
    fn bad_prefix_length_rejected() {
        // craft body: no withdrawn, no attrs, NLRI with length 33
        let body = Bytes::from_static(&[0, 0, 0, 0, 33, 1, 2, 3, 4, 5]);
        assert_eq!(
            UpdateMessage::decode_body(&body),
            Err(WireError::BadPrefixLength(33))
        );
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        // attribute code 42 with 2 bytes, then nothing else
        let body = Bytes::from_static(&[0, 0, 0, 4, 0x40, 42, 1, 0]);
        let m = UpdateMessage::decode_body(&body).unwrap();
        assert!(m.announced.is_empty());
        assert!(m.withdrawn.is_empty());
    }
}
