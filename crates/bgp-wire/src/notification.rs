//! NOTIFICATION message (RFC 4271 §4.5) and the §6 error-code taxonomy
//! used to classify codec failures before closing a session.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// RFC 4271 §6 NOTIFICATION error codes (and the subcodes this crate
/// emits).
pub mod error_code {
    /// Message Header Error.
    pub const MESSAGE_HEADER: u8 = 1;
    /// OPEN Message Error.
    pub const OPEN: u8 = 2;
    /// UPDATE Message Error.
    pub const UPDATE: u8 = 3;
    /// Hold Timer Expired.
    pub const HOLD_TIMER_EXPIRED: u8 = 4;
    /// Finite State Machine Error (message in the wrong session state).
    pub const FSM: u8 = 5;
    /// Cease.
    pub const CEASE: u8 = 6;

    /// Message Header Error subcodes (§6.1).
    pub mod header {
        /// Connection Not Synchronized (bad marker).
        pub const NOT_SYNCHRONIZED: u8 = 1;
        /// Bad Message Length.
        pub const BAD_LENGTH: u8 = 2;
        /// Bad Message Type.
        pub const BAD_TYPE: u8 = 3;
    }

    /// OPEN Message Error subcodes (§6.2).
    pub mod open {
        /// Unsupported Version Number.
        pub const UNSUPPORTED_VERSION: u8 = 1;
        /// Unacceptable Hold Time.
        pub const UNACCEPTABLE_HOLD_TIME: u8 = 6;
    }

    /// UPDATE Message Error subcodes (§6.3).
    pub mod update {
        /// Malformed Attribute List.
        pub const MALFORMED_ATTRIBUTES: u8 = 1;
        /// Invalid Network Field.
        pub const INVALID_NETWORK: u8 = 10;
    }

    /// Cease subcodes (RFC 4486).
    pub mod cease {
        /// Administrative Shutdown.
        pub const ADMIN_SHUTDOWN: u8 = 2;
    }
}

/// A BGP NOTIFICATION: error code, subcode and opaque data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Notification {
    /// Major error code (RFC 4271 §6).
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl Notification {
    /// A NOTIFICATION with no diagnostic data.
    pub fn new(code: u8, subcode: u8) -> Self {
        Notification {
            code,
            subcode,
            data: Vec::new(),
        }
    }

    /// Cease (administrative shutdown) — code 6, subcode 2.
    pub fn cease() -> Self {
        Notification::new(error_code::CEASE, error_code::cease::ADMIN_SHUTDOWN)
    }

    /// Hold-timer expired — code 4.
    pub fn hold_timer_expired() -> Self {
        Notification::new(error_code::HOLD_TIMER_EXPIRED, 0)
    }

    /// Finite-state-machine error (a message arrived in a session state
    /// that cannot accept it) — code 5.
    pub fn fsm_error() -> Self {
        Notification::new(error_code::FSM, 0)
    }

    /// Classifies a codec failure into the RFC 4271 §6 NOTIFICATION a
    /// speaker should send before closing the session.
    ///
    /// Framing-level failures map to Message Header Error, OPEN body
    /// failures to OPEN Message Error, attribute/NLRI failures to UPDATE
    /// Message Error. Errors that cannot occur on the receive path of a
    /// live session (MRT corruption, unsupported encode requests) fall
    /// back to Cease.
    pub fn for_wire_error(e: &WireError) -> Notification {
        use error_code as ec;
        match e {
            WireError::BadMarker => {
                Notification::new(ec::MESSAGE_HEADER, ec::header::NOT_SYNCHRONIZED)
            }
            WireError::BadLength(l) => {
                let mut n = Notification::new(ec::MESSAGE_HEADER, ec::header::BAD_LENGTH);
                n.data = l.to_be_bytes().to_vec();
                n
            }
            WireError::UnknownMessageType(t) => {
                let mut n = Notification::new(ec::MESSAGE_HEADER, ec::header::BAD_TYPE);
                n.data = vec![*t];
                n
            }
            WireError::BadVersion(_) => Notification::new(ec::OPEN, ec::open::UNSUPPORTED_VERSION),
            WireError::BadAttribute { .. } => {
                Notification::new(ec::UPDATE, ec::update::MALFORMED_ATTRIBUTES)
            }
            WireError::BadPrefixLength(_) => {
                Notification::new(ec::UPDATE, ec::update::INVALID_NETWORK)
            }
            // A truncated body means the header length field lied about
            // the content; classify by what was being decoded.
            WireError::Truncated { what, .. } => {
                if what.starts_with("OPEN") || *what == "capability" {
                    Notification::new(ec::OPEN, 0)
                } else if *what == "NOTIFICATION" {
                    Notification::new(ec::MESSAGE_HEADER, ec::header::BAD_LENGTH)
                } else {
                    Notification::new(ec::UPDATE, ec::update::MALFORMED_ATTRIBUTES)
                }
            }
            WireError::Unsupported(_) | WireError::BadMrt(_) | WireError::UnsupportedMrt(_) => {
                Notification::cease()
            }
        }
    }

    /// Encodes the body.
    pub fn encode_body(&self, out: &mut BytesMut) {
        out.put_u8(self.code);
        out.put_u8(self.subcode);
        out.extend_from_slice(&self.data);
    }

    /// Decodes the body.
    pub fn decode_body(body: &Bytes) -> WireResult<Notification> {
        let mut b = body.clone();
        if b.remaining() < 2 {
            return Err(WireError::Truncated {
                what: "NOTIFICATION",
                needed: 2,
                have: b.remaining(),
            });
        }
        let code = b.get_u8();
        let subcode = b.get_u8();
        Ok(Notification {
            code,
            subcode,
            data: b.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::BgpMessage;
    use bytes::BytesMut;

    #[test]
    fn roundtrip_with_data() {
        let n = Notification {
            code: 2,
            subcode: 5,
            data: vec![1, 2, 3],
        };
        let bytes = BgpMessage::Notification(n.clone()).encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        match BgpMessage::decode(&mut buf).unwrap().unwrap() {
            BgpMessage::Notification(back) => assert_eq!(back, n),
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn truncated_rejected() {
        let body = Bytes::from_static(&[6]);
        assert!(Notification::decode_body(&body).is_err());
    }

    #[test]
    fn well_known_constructors() {
        assert_eq!(Notification::cease().code, 6);
        assert_eq!(Notification::hold_timer_expired().code, 4);
        assert_eq!(Notification::fsm_error().code, 5);
    }

    #[test]
    fn wire_errors_classify_to_rfc4271_codes() {
        let cases = [
            (WireError::BadMarker, (1, 1)),
            (WireError::BadLength(9999), (1, 2)),
            (WireError::UnknownMessageType(77), (1, 3)),
            (WireError::BadVersion(3), (2, 1)),
            (
                WireError::BadAttribute {
                    code: 2,
                    reason: "truncated segment",
                },
                (3, 1),
            ),
            (WireError::BadPrefixLength(40), (3, 10)),
            (
                WireError::Truncated {
                    what: "OPEN",
                    needed: 10,
                    have: 2,
                },
                (2, 0),
            ),
            (
                WireError::Truncated {
                    what: "path attributes",
                    needed: 8,
                    have: 1,
                },
                (3, 1),
            ),
            (WireError::BadMrt("x"), (6, 2)),
        ];
        for (err, (code, subcode)) in cases {
            let n = Notification::for_wire_error(&err);
            assert_eq!((n.code, n.subcode), (code, subcode), "{err:?}");
        }
    }

    #[test]
    fn classification_carries_diagnostic_data() {
        let n = Notification::for_wire_error(&WireError::BadLength(4097));
        assert_eq!(n.data, 4097u16.to_be_bytes().to_vec());
        let n = Notification::for_wire_error(&WireError::UnknownMessageType(9));
        assert_eq!(n.data, vec![9]);
    }
}
