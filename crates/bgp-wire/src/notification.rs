//! NOTIFICATION message (RFC 4271 §4.5).

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A BGP NOTIFICATION: error code, subcode and opaque data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Notification {
    /// Major error code (RFC 4271 §6).
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl Notification {
    /// Cease (administrative shutdown) — code 6, subcode 2.
    pub fn cease() -> Self {
        Notification {
            code: 6,
            subcode: 2,
            data: Vec::new(),
        }
    }

    /// Hold-timer expired — code 4.
    pub fn hold_timer_expired() -> Self {
        Notification {
            code: 4,
            subcode: 0,
            data: Vec::new(),
        }
    }

    /// Encodes the body.
    pub fn encode_body(&self, out: &mut BytesMut) {
        out.put_u8(self.code);
        out.put_u8(self.subcode);
        out.extend_from_slice(&self.data);
    }

    /// Decodes the body.
    pub fn decode_body(body: &Bytes) -> WireResult<Notification> {
        let mut b = body.clone();
        if b.remaining() < 2 {
            return Err(WireError::Truncated {
                what: "NOTIFICATION",
                needed: 2,
                have: b.remaining(),
            });
        }
        let code = b.get_u8();
        let subcode = b.get_u8();
        Ok(Notification {
            code,
            subcode,
            data: b.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::BgpMessage;
    use bytes::BytesMut;

    #[test]
    fn roundtrip_with_data() {
        let n = Notification {
            code: 2,
            subcode: 5,
            data: vec![1, 2, 3],
        };
        let bytes = BgpMessage::Notification(n.clone()).encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        match BgpMessage::decode(&mut buf).unwrap().unwrap() {
            BgpMessage::Notification(back) => assert_eq!(back, n),
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn truncated_rejected() {
        let body = Bytes::from_static(&[6]);
        assert!(Notification::decode_body(&body).is_err());
    }

    #[test]
    fn well_known_constructors() {
        assert_eq!(Notification::cease().code, 6);
        assert_eq!(Notification::hold_timer_expired().code, 4);
    }
}
