//! MRT export format (RFC 6396) — the storage format GILL publishes its
//! collected updates in (§9).
//!
//! Implements `BGP4MP_MESSAGE_AS4` records (type 16, subtype 4): the MRT
//! common header followed by peer/local AS and addresses (AFI 1 with
//! 4-byte or AFI 2 with 16-byte addresses) and a raw BGP message.
//! [`MrtWriter`] streams records to any `io::Write`; [`MrtReader`]
//! streams them back, skipping-and-counting records of types we do not
//! decode instead of aborting the archive (real collector dumps mix in
//! OSPF, TABLE_DUMP and exotic AFIs — see [`MrtReader::skipped`]).

use crate::error::{WireError, WireResult};
use crate::message::BgpMessage;
use crate::update::DecodeCtx;
use bgp_types::{Asn, Timestamp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// MRT type code for BGP4MP.
pub const MRT_TYPE_BGP4MP: u16 = 16;
/// MRT subtype for BGP4MP_MESSAGE_AS4.
pub const MRT_SUBTYPE_MESSAGE_AS4: u16 = 4;

/// One MRT BGP4MP_MESSAGE_AS4 record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MrtRecord {
    /// Record timestamp (seconds resolution on the wire).
    pub time: Timestamp,
    /// The peer (VP) AS.
    pub peer_as: Asn,
    /// The collector's AS.
    pub local_as: Asn,
    /// Peer address (the record's AFI field follows its family).
    pub peer_ip: IpAddr,
    /// Collector address (must be the same family as `peer_ip`).
    pub local_ip: IpAddr,
    /// The carried BGP message.
    pub message: BgpMessage,
}

impl MrtRecord {
    /// Encodes the record (header + body).
    pub fn encode(&self) -> WireResult<Vec<u8>> {
        let msg = self.message.encode_to_vec()?;
        let mut body = BytesMut::with_capacity(44 + msg.len());
        body.put_u32(self.peer_as.value());
        body.put_u32(self.local_as.value());
        body.put_u16(0); // interface index
        match (self.peer_ip, self.local_ip) {
            (IpAddr::V4(p), IpAddr::V4(l)) => {
                body.put_u16(1); // AFI: IPv4
                body.put_u32(u32::from(p));
                body.put_u32(u32::from(l));
            }
            (IpAddr::V6(p), IpAddr::V6(l)) => {
                body.put_u16(2); // AFI: IPv6
                body.extend_from_slice(&p.octets());
                body.extend_from_slice(&l.octets());
            }
            _ => return Err(WireError::Unsupported("mixed-family MRT peer addresses")),
        }
        body.extend_from_slice(&msg);
        let mut out = BytesMut::with_capacity(12 + body.len());
        out.put_u32(self.time.as_secs() as u32);
        out.put_u16(MRT_TYPE_BGP4MP);
        out.put_u16(MRT_SUBTYPE_MESSAGE_AS4);
        out.put_u32(body.len() as u32);
        out.extend_from_slice(&body);
        Ok(out.to_vec())
    }

    /// Decodes one record from `bytes` (classic sessions — no ADD-PATH);
    /// returns the record and the number of bytes consumed, or `None`
    /// when the input is incomplete.
    pub fn decode(bytes: &[u8]) -> WireResult<Option<(MrtRecord, usize)>> {
        Self::decode_ctx(bytes, &DecodeCtx::default())
    }

    /// Decodes one record, parsing the embedded BGP message under `ctx`.
    pub fn decode_ctx(bytes: &[u8], ctx: &DecodeCtx) -> WireResult<Option<(MrtRecord, usize)>> {
        if bytes.len() < 12 {
            return Ok(None);
        }
        let mut hdr = Bytes::copy_from_slice(&bytes[..12]);
        let secs = hdr.get_u32();
        let ty = hdr.get_u16();
        let subty = hdr.get_u16();
        let len = hdr.get_u32() as usize;
        if bytes.len() < 12 + len {
            return Ok(None);
        }
        // completeness is checked first, so an unsupported-record error
        // always refers to a fully buffered record that a reader can skip
        if ty != MRT_TYPE_BGP4MP || subty != MRT_SUBTYPE_MESSAGE_AS4 {
            return Err(WireError::UnsupportedMrt("unsupported MRT type/subtype"));
        }
        if len < 20 {
            return Err(WireError::BadMrt("BGP4MP body too short"));
        }
        let mut body = Bytes::copy_from_slice(&bytes[12..12 + len]);
        let peer_as = Asn(body.get_u32());
        let local_as = Asn(body.get_u32());
        let _ifindex = body.get_u16();
        let afi = body.get_u16();
        let (peer_ip, local_ip) = match afi {
            1 => (
                IpAddr::V4(Ipv4Addr::from(body.get_u32())),
                IpAddr::V4(Ipv4Addr::from(body.get_u32())),
            ),
            2 => {
                if body.remaining() < 32 {
                    return Err(WireError::BadMrt("BGP4MP v6 body too short"));
                }
                let mut p = [0u8; 16];
                for slot in p.iter_mut() {
                    *slot = body.get_u8();
                }
                let mut l = [0u8; 16];
                for slot in l.iter_mut() {
                    *slot = body.get_u8();
                }
                (IpAddr::V6(Ipv6Addr::from(p)), IpAddr::V6(Ipv6Addr::from(l)))
            }
            _ => return Err(WireError::UnsupportedMrt("unknown BGP4MP AFI")),
        };
        let mut msgbuf = BytesMut::from(&body[..]);
        let message = BgpMessage::decode_ctx(&mut msgbuf, ctx)?
            .ok_or(WireError::BadMrt("truncated BGP message in record"))?;
        Ok(Some((
            MrtRecord {
                time: Timestamp::from_secs(secs as u64),
                peer_as,
                local_as,
                peer_ip,
                local_ip,
                message,
            },
            12 + len,
        )))
    }
}

/// Streams MRT records to a writer.
pub struct MrtWriter<W: Write> {
    inner: W,
    records: usize,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        MrtWriter { inner, records: 0 }
    }

    /// Writes one record.
    pub fn write_record(&mut self, r: &MrtRecord) -> std::io::Result<()> {
        let bytes = r
            .encode()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.inner.write_all(&bytes)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written.
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streams MRT records from a reader.
///
/// Structurally complete records of unsupported types/subtypes/AFIs are
/// skipped and tallied in [`MrtReader::skipped`] rather than aborting the
/// stream; malformed records still error.
pub struct MrtReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    eof: bool,
    skipped: usize,
    ctx: DecodeCtx,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a reader (classic sessions — no ADD-PATH).
    pub fn new(inner: R) -> Self {
        Self::with_ctx(inner, DecodeCtx::default())
    }

    /// Wraps a reader whose embedded BGP messages decode under `ctx`.
    pub fn with_ctx(inner: R, ctx: DecodeCtx) -> Self {
        MrtReader {
            inner,
            buf: Vec::new(),
            eof: false,
            skipped: 0,
            ctx,
        }
    }

    /// Number of unsupported records skipped so far (the skip ledger).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Reads the next record, or `None` at end of stream.
    pub fn next_record(&mut self) -> WireResult<Option<MrtRecord>> {
        loop {
            match MrtRecord::decode_ctx(&self.buf, &self.ctx) {
                Ok(Some((rec, used))) => {
                    self.buf.drain(..used);
                    return Ok(Some(rec));
                }
                Err(WireError::UnsupportedMrt(_)) => {
                    // decode only reports unsupported records once fully
                    // buffered, so the header length is trustworthy here
                    let len =
                        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
                            as usize;
                    self.buf.drain(..12 + len);
                    self.skipped += 1;
                }
                Err(e) => return Err(e),
                Ok(None) => {
                    if self.eof {
                        if self.buf.is_empty() {
                            return Ok(None);
                        }
                        return Err(WireError::BadMrt("trailing bytes at end of stream"));
                    }
                    let mut chunk = [0u8; 4096];
                    let n = self
                        .inner
                        .read(&mut chunk)
                        .map_err(|_| WireError::BadMrt("read error"))?;
                    if n == 0 {
                        self.eof = true;
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateMessage;
    use bgp_types::AsPath;

    fn sample_record(t: u64, peer: u32) -> MrtRecord {
        MrtRecord {
            time: Timestamp::from_secs(t),
            peer_as: Asn(peer),
            local_as: Asn(65535),
            peer_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            local_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            message: BgpMessage::Update(UpdateMessage::announce(
                "192.0.2.0/24".parse().unwrap(),
                AsPath::from_u32s([peer, 2, 3]),
                Ipv4Addr::new(10, 0, 0, 2),
                vec![],
            )),
        }
    }

    fn sample_v6_record(t: u64, peer: u32) -> MrtRecord {
        MrtRecord {
            time: Timestamp::from_secs(t),
            peer_as: Asn(peer),
            local_as: Asn(65535),
            peer_ip: IpAddr::V6("2001:db8::2".parse().unwrap()),
            local_ip: IpAddr::V6("2001:db8::1".parse().unwrap()),
            message: BgpMessage::Update(UpdateMessage::announce_v6(
                "2001:db8:42::/48".parse().unwrap(),
                AsPath::from_u32s([peer, 2, 3]),
                "2001:db8::2".parse().unwrap(),
                vec![],
            )),
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = sample_record(1_700_000_000, 65001);
        let bytes = r.encode().unwrap();
        let (back, used) = MrtRecord::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, r);
    }

    #[test]
    fn v6_record_roundtrip_uses_afi_2() {
        let r = sample_v6_record(1_700_000_000, 65001);
        let bytes = r.encode().unwrap();
        // AFI field sits after the 12-byte header + 8 bytes of ASNs +
        // 2 bytes interface index
        assert_eq!(u16::from_be_bytes([bytes[22], bytes[23]]), 2);
        let (back, used) = MrtRecord::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, r);
    }

    #[test]
    fn mixed_family_peer_addresses_fail_encode() {
        let mut r = sample_v6_record(1, 2);
        r.local_ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
        assert!(r.encode().is_err());
    }

    #[test]
    fn incomplete_input_returns_none() {
        let r = sample_record(1, 2);
        let bytes = r.encode().unwrap();
        assert!(MrtRecord::decode(&bytes[..5]).unwrap().is_none());
        assert!(MrtRecord::decode(&bytes[..bytes.len() - 1])
            .unwrap()
            .is_none());
    }

    #[test]
    fn writer_reader_stream_roundtrip() {
        let mut w = MrtWriter::new(Vec::new());
        let records: Vec<MrtRecord> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    sample_v6_record(1000 + i, 65000 + i as u32)
                } else {
                    sample_record(1000 + i, 65000 + i as u32)
                }
            })
            .collect();
        for r in &records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), 10);
        let bytes = w.into_inner().unwrap();
        let mut rd = MrtReader::new(&bytes[..]);
        let mut back = Vec::new();
        while let Some(r) = rd.next_record().unwrap() {
            back.push(r);
        }
        assert_eq!(back, records);
        assert_eq!(rd.skipped(), 0);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let r = sample_record(1, 2);
        let mut bytes = r.encode().unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut rd = MrtReader::new(&bytes[..]);
        assert!(rd.next_record().unwrap().is_some());
        assert!(rd.next_record().is_err());
    }

    #[test]
    fn unsupported_type_rejected() {
        let r = sample_record(1, 2);
        let mut bytes = r.encode().unwrap();
        bytes[4] = 0;
        bytes[5] = 13; // TABLE_DUMP_V2
        assert!(MrtRecord::decode(&bytes).is_err());
    }

    #[test]
    fn reader_skips_and_counts_unsupported_records() {
        let good = [sample_record(1, 65001), sample_v6_record(2, 65002)];
        let mut ospf = sample_record(3, 65003).encode().unwrap();
        ospf[4] = 0;
        ospf[5] = 48; // OSPFv3 — complete record of a foreign type
        let mut exotic_afi = sample_record(4, 65004).encode().unwrap();
        exotic_afi[23] = 25; // AFI 25 (L2VPN) — complete but undecodable
        let mut bytes = Vec::new();
        bytes.extend(good[0].encode().unwrap());
        bytes.extend(ospf);
        bytes.extend(good[1].encode().unwrap());
        bytes.extend(exotic_afi);
        let mut rd = MrtReader::new(&bytes[..]);
        let mut back = Vec::new();
        while let Some(r) = rd.next_record().unwrap() {
            back.push(r);
        }
        assert_eq!(back, good);
        assert_eq!(rd.skipped(), 2);
    }
}
