//! MRT export format (RFC 6396) — the storage format GILL publishes its
//! collected updates in (§9).
//!
//! Implements `BGP4MP_MESSAGE_AS4` records (type 16, subtype 4): the MRT
//! common header followed by peer/local AS and addresses and a raw BGP
//! message. [`MrtWriter`] streams records to any `io::Write`;
//! [`MrtReader`] streams them back.

use crate::error::{WireError, WireResult};
use crate::message::BgpMessage;
use bgp_types::{Asn, Timestamp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::net::Ipv4Addr;

/// MRT type code for BGP4MP.
pub const MRT_TYPE_BGP4MP: u16 = 16;
/// MRT subtype for BGP4MP_MESSAGE_AS4.
pub const MRT_SUBTYPE_MESSAGE_AS4: u16 = 4;

/// One MRT BGP4MP_MESSAGE_AS4 record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MrtRecord {
    /// Record timestamp (seconds resolution on the wire).
    pub time: Timestamp,
    /// The peer (VP) AS.
    pub peer_as: Asn,
    /// The collector's AS.
    pub local_as: Asn,
    /// Peer address.
    pub peer_ip: Ipv4Addr,
    /// Collector address.
    pub local_ip: Ipv4Addr,
    /// The carried BGP message.
    pub message: BgpMessage,
}

impl MrtRecord {
    /// Encodes the record (header + body).
    pub fn encode(&self) -> WireResult<Vec<u8>> {
        let msg = self.message.encode_to_vec()?;
        let mut body = BytesMut::with_capacity(20 + msg.len());
        body.put_u32(self.peer_as.value());
        body.put_u32(self.local_as.value());
        body.put_u16(0); // interface index
        body.put_u16(1); // AFI: IPv4
        body.put_u32(u32::from(self.peer_ip));
        body.put_u32(u32::from(self.local_ip));
        body.extend_from_slice(&msg);
        let mut out = BytesMut::with_capacity(12 + body.len());
        out.put_u32(self.time.as_secs() as u32);
        out.put_u16(MRT_TYPE_BGP4MP);
        out.put_u16(MRT_SUBTYPE_MESSAGE_AS4);
        out.put_u32(body.len() as u32);
        out.extend_from_slice(&body);
        Ok(out.to_vec())
    }

    /// Decodes one record from `bytes`; returns the record and the number
    /// of bytes consumed, or `None` when the input is incomplete.
    pub fn decode(bytes: &[u8]) -> WireResult<Option<(MrtRecord, usize)>> {
        if bytes.len() < 12 {
            return Ok(None);
        }
        let mut hdr = Bytes::copy_from_slice(&bytes[..12]);
        let secs = hdr.get_u32();
        let ty = hdr.get_u16();
        let subty = hdr.get_u16();
        let len = hdr.get_u32() as usize;
        if bytes.len() < 12 + len {
            return Ok(None);
        }
        if ty != MRT_TYPE_BGP4MP || subty != MRT_SUBTYPE_MESSAGE_AS4 {
            return Err(WireError::BadMrt("unsupported MRT type/subtype"));
        }
        if len < 20 {
            return Err(WireError::BadMrt("BGP4MP body too short"));
        }
        let mut body = Bytes::copy_from_slice(&bytes[12..12 + len]);
        let peer_as = Asn(body.get_u32());
        let local_as = Asn(body.get_u32());
        let _ifindex = body.get_u16();
        let afi = body.get_u16();
        if afi != 1 {
            return Err(WireError::BadMrt("non-IPv4 AFI"));
        }
        let peer_ip = Ipv4Addr::from(body.get_u32());
        let local_ip = Ipv4Addr::from(body.get_u32());
        let mut msgbuf = BytesMut::from(&body[..]);
        let message = BgpMessage::decode(&mut msgbuf)?
            .ok_or(WireError::BadMrt("truncated BGP message in record"))?;
        Ok(Some((
            MrtRecord {
                time: Timestamp::from_secs(secs as u64),
                peer_as,
                local_as,
                peer_ip,
                local_ip,
                message,
            },
            12 + len,
        )))
    }
}

/// Streams MRT records to a writer.
pub struct MrtWriter<W: Write> {
    inner: W,
    records: usize,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        MrtWriter { inner, records: 0 }
    }

    /// Writes one record.
    pub fn write_record(&mut self, r: &MrtRecord) -> std::io::Result<()> {
        let bytes = r
            .encode()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.inner.write_all(&bytes)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written.
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streams MRT records from a reader.
pub struct MrtReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    eof: bool,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            buf: Vec::new(),
            eof: false,
        }
    }

    /// Reads the next record, or `None` at end of stream.
    pub fn next_record(&mut self) -> WireResult<Option<MrtRecord>> {
        loop {
            match MrtRecord::decode(&self.buf)? {
                Some((rec, used)) => {
                    self.buf.drain(..used);
                    return Ok(Some(rec));
                }
                None => {
                    if self.eof {
                        if self.buf.is_empty() {
                            return Ok(None);
                        }
                        return Err(WireError::BadMrt("trailing bytes at end of stream"));
                    }
                    let mut chunk = [0u8; 4096];
                    let n = self
                        .inner
                        .read(&mut chunk)
                        .map_err(|_| WireError::BadMrt("read error"))?;
                    if n == 0 {
                        self.eof = true;
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateMessage;
    use bgp_types::AsPath;

    fn sample_record(t: u64, peer: u32) -> MrtRecord {
        MrtRecord {
            time: Timestamp::from_secs(t),
            peer_as: Asn(peer),
            local_as: Asn(65535),
            peer_ip: Ipv4Addr::new(10, 0, 0, 2),
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
            message: BgpMessage::Update(UpdateMessage::announce(
                "192.0.2.0/24".parse().unwrap(),
                AsPath::from_u32s([peer, 2, 3]),
                Ipv4Addr::new(10, 0, 0, 2),
                vec![],
            )),
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = sample_record(1_700_000_000, 65001);
        let bytes = r.encode().unwrap();
        let (back, used) = MrtRecord::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, r);
    }

    #[test]
    fn incomplete_input_returns_none() {
        let r = sample_record(1, 2);
        let bytes = r.encode().unwrap();
        assert!(MrtRecord::decode(&bytes[..5]).unwrap().is_none());
        assert!(MrtRecord::decode(&bytes[..bytes.len() - 1])
            .unwrap()
            .is_none());
    }

    #[test]
    fn writer_reader_stream_roundtrip() {
        let mut w = MrtWriter::new(Vec::new());
        let records: Vec<MrtRecord> = (0..10)
            .map(|i| sample_record(1000 + i, 65000 + i as u32))
            .collect();
        for r in &records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), 10);
        let bytes = w.into_inner().unwrap();
        let mut rd = MrtReader::new(&bytes[..]);
        let mut back = Vec::new();
        while let Some(r) = rd.next_record().unwrap() {
            back.push(r);
        }
        assert_eq!(back, records);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let r = sample_record(1, 2);
        let mut bytes = r.encode().unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut rd = MrtReader::new(&bytes[..]);
        assert!(rd.next_record().unwrap().is_some());
        assert!(rd.next_record().is_err());
    }

    #[test]
    fn unsupported_type_rejected() {
        let r = sample_record(1, 2);
        let mut bytes = r.encode().unwrap();
        bytes[4] = 0;
        bytes[5] = 13; // TABLE_DUMP_V2
        assert!(MrtRecord::decode(&bytes).is_err());
    }
}
