//! Sealed on-disk segments.
//!
//! When a shard window ages out of the hot store, its per-lane records are
//! *sealed* into an append-only segment file. A segment is self-contained:
//! it carries its own interned prefix/path/community tables (local ids,
//! remapped from the in-memory arenas at seal time), the store's VP
//! registration order, and per-lane record groups. Records do **not** store
//! the derived `Lw`/`Cw` sets — re-ingesting a lane in order re-derives them
//! deterministically, which keeps a record at 21 bytes on disk.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8B  b"GSEG0002" (v1 files carry b"GSEG0001")
//! seq      8B  segment sequence number
//! vps      4B count, then {asn u32, router u16} each
//! prefixes 4B count, then {v6 u8, len u8, bits 16B BE} each
//! paths    4B count, then {hops u32, asn u32 ...} each
//! commsets 4B count, then {n u32, community u32 ...} each
//! lanes    4B count, then {vp_idx u32, start u64, recs u32,
//!              {time_ms u64, prefix u32, path u32, comms u32, kind u8,
//!               [path_id u32]} ...}
//! crc32    4B  CRC-32/IEEE over every preceding byte
//! ```
//!
//! The v2 kind byte doubles as the ADD-PATH flag: 0/1 are classic
//! announce/withdraw records (byte-identical to v1), 2/3 are
//! announce/withdraw carrying a trailing 4-byte RFC 7911 path identifier.
//! v1 files (which predate ADD-PATH and never carry path ids) still load.
//!
//! Any corruption — bad magic, truncation, out-of-range table index, CRC
//! mismatch — surfaces as `io::ErrorKind::InvalidData` at load time rather
//! than as silently wrong routes.

use bgp_types::{AsPath, Asn, BgpUpdate, Community, Prefix, Timestamp, UpdateKind, VpId};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, Ipv6Addr};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const MAGIC_V1: &[u8; 8] = b"GSEG0001";
const MAGIC_V2: &[u8; 8] = b"GSEG0002";

/// One sealed update record (all attribute fields are segment-local ids).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentRec {
    /// Raw reception time in milliseconds.
    pub time_ms: u64,
    /// Index into [`Segment::prefixes`].
    pub prefix: u32,
    /// Index into [`Segment::paths`] (empty path for withdrawals).
    pub path: u32,
    /// Index into [`Segment::comm_sets`].
    pub comms: u32,
    /// Announce vs withdraw.
    pub kind: UpdateKind,
    /// ADD-PATH path identifier (RFC 7911), when the route was observed
    /// on an ADD-PATH session. Only representable in v2 segments.
    pub path_id: Option<u32>,
}

/// The sealed records of one VP lane.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentLane {
    /// Index into [`Segment::vp_order`].
    pub vp: u32,
    /// Lane-local index of the first record in this segment (for load-time
    /// continuity checks across consecutive segments).
    pub start: u64,
    /// Records in lane ingest order.
    pub recs: Vec<SegmentRec>,
}

/// A self-contained sealed segment.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Segment {
    /// Monotone sequence number (also encoded in the file name).
    pub seq: u64,
    /// The store's VP registration order at seal time (every known VP, even
    /// ones with no records here — reload must reproduce registration order).
    pub vp_order: Vec<VpId>,
    /// Local prefix table.
    pub prefixes: Vec<Prefix>,
    /// Local AS-path table.
    pub paths: Vec<AsPath>,
    /// Local community-set table (each set sorted).
    pub comm_sets: Vec<Vec<Community>>,
    /// Per-lane record groups.
    pub lanes: Vec<SegmentLane>,
}

/// Incrementally builds a [`Segment`], deduplicating attribute values into
/// the segment-local tables.
pub struct SegmentBuilder {
    seg: Segment,
    prefix_ids: HashMap<Prefix, u32>,
    path_ids: HashMap<AsPath, u32>,
    comm_ids: HashMap<Vec<Community>, u32>,
}

impl SegmentBuilder {
    /// Starts a segment with the given sequence number and VP order.
    pub fn new(seq: u64, vp_order: Vec<VpId>) -> Self {
        SegmentBuilder {
            seg: Segment {
                seq,
                vp_order,
                ..Segment::default()
            },
            prefix_ids: HashMap::new(),
            path_ids: HashMap::new(),
            comm_ids: HashMap::new(),
        }
    }

    /// Opens a record group for the lane of `vp_order[vp_idx]`, whose first
    /// record has lane-local index `start`. Returns the lane handle.
    pub fn add_lane(&mut self, vp_idx: u32, start: u64) -> usize {
        self.seg.lanes.push(SegmentLane {
            vp: vp_idx,
            start,
            recs: Vec::new(),
        });
        self.seg.lanes.len() - 1
    }

    /// Appends one record to an open lane.
    #[allow(clippy::too_many_arguments)]
    pub fn push_rec(
        &mut self,
        lane: usize,
        time_ms: u64,
        prefix: Prefix,
        path: &AsPath,
        comms: &[Community],
        kind: UpdateKind,
        path_id: Option<u32>,
    ) {
        let prefix = intern(&mut self.seg.prefixes, &mut self.prefix_ids, &prefix);
        let path = intern(&mut self.seg.paths, &mut self.path_ids, path);
        let comms = intern(&mut self.seg.comm_sets, &mut self.comm_ids, comms);
        self.seg.lanes[lane].recs.push(SegmentRec {
            time_ms,
            prefix,
            path,
            comms,
            kind,
            path_id,
        });
    }

    /// Total records pushed so far.
    pub fn rec_count(&self) -> usize {
        self.seg.lanes.iter().map(|l| l.recs.len()).sum()
    }

    /// Finishes the segment.
    pub fn finish(self) -> Segment {
        self.seg
    }
}

fn intern<T, Q>(table: &mut Vec<T>, ids: &mut HashMap<T, u32>, value: &Q) -> u32
where
    T: Clone + std::hash::Hash + Eq + std::borrow::Borrow<Q>,
    Q: std::hash::Hash + Eq + ToOwned<Owned = T> + ?Sized,
{
    if let Some(&id) = ids.get(value) {
        return id;
    }
    let id = table.len() as u32;
    table.push(value.to_owned());
    ids.insert(value.to_owned(), id);
    id
}

impl Segment {
    /// Serializes the segment (with trailing CRC) into `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V2);
        buf.extend_from_slice(&self.seq.to_le_bytes());

        put_len(&mut buf, self.vp_order.len())?;
        for vp in &self.vp_order {
            buf.extend_from_slice(&vp.asn.0.to_le_bytes());
            buf.extend_from_slice(&vp.router.to_le_bytes());
        }

        put_len(&mut buf, self.prefixes.len())?;
        for p in &self.prefixes {
            buf.push(p.is_ipv6() as u8);
            buf.push(p.len());
            buf.extend_from_slice(&p.raw_bits().to_be_bytes());
        }

        put_len(&mut buf, self.paths.len())?;
        for path in &self.paths {
            put_len(&mut buf, path.hop_count())?;
            for hop in path.hops() {
                buf.extend_from_slice(&hop.0.to_le_bytes());
            }
        }

        put_len(&mut buf, self.comm_sets.len())?;
        for set in &self.comm_sets {
            put_len(&mut buf, set.len())?;
            for c in set {
                buf.extend_from_slice(&c.raw().to_le_bytes());
            }
        }

        put_len(&mut buf, self.lanes.len())?;
        for lane in &self.lanes {
            buf.extend_from_slice(&lane.vp.to_le_bytes());
            buf.extend_from_slice(&lane.start.to_le_bytes());
            put_len(&mut buf, lane.recs.len())?;
            for r in &lane.recs {
                buf.extend_from_slice(&r.time_ms.to_le_bytes());
                buf.extend_from_slice(&r.prefix.to_le_bytes());
                buf.extend_from_slice(&r.path.to_le_bytes());
                buf.extend_from_slice(&r.comms.to_le_bytes());
                let kind_bit = match r.kind {
                    UpdateKind::Announce => 0,
                    UpdateKind::Withdraw => 1,
                };
                match r.path_id {
                    None => buf.push(kind_bit),
                    Some(id) => {
                        buf.push(kind_bit | 2);
                        buf.extend_from_slice(&id.to_le_bytes());
                    }
                }
            }
        }

        let crc = crc32(&buf);
        w.write_all(&buf)?;
        w.write_all(&crc.to_le_bytes())
    }

    /// Reads and validates a segment from `r`.
    pub fn read_from(r: &mut impl Read) -> io::Result<Segment> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        if data.len() < MAGIC_V2.len() + 8 + 4 {
            return Err(bad("segment file truncated"));
        }
        let (body, tail) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32(body) != stored {
            return Err(bad("segment CRC mismatch"));
        }

        let mut c = Cursor { buf: body, pos: 0 };
        let magic = c.bytes(8)?;
        let v2 = match magic {
            m if m == MAGIC_V2 => true,
            m if m == MAGIC_V1 => false,
            _ => return Err(bad("bad segment magic")),
        };
        let seq = c.u64()?;

        let n = c.len()?;
        let mut vp_order = Vec::with_capacity(n);
        for _ in 0..n {
            let asn = Asn(c.u32()?);
            let router = c.u16()?;
            vp_order.push(VpId::new(asn, router));
        }

        let n = c.len()?;
        let mut prefixes = Vec::with_capacity(n);
        for _ in 0..n {
            let v6 = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("bad prefix family byte")),
            };
            let len = c.u8()?;
            let bits = u128::from_be_bytes(c.bytes(16)?.try_into().expect("16-byte prefix"));
            prefixes.push(if v6 {
                if len > 128 {
                    return Err(bad("bad IPv6 prefix length"));
                }
                Prefix::v6(Ipv6Addr::from(bits), len)
            } else {
                if len > 32 || bits > u32::MAX as u128 {
                    return Err(bad("bad IPv4 prefix"));
                }
                Prefix::v4(Ipv4Addr::from(bits as u32), len)
            });
        }

        let n = c.len()?;
        let mut paths = Vec::with_capacity(n);
        for _ in 0..n {
            let hops = c.len()?;
            let mut v = Vec::with_capacity(hops);
            for _ in 0..hops {
                v.push(Asn(c.u32()?));
            }
            paths.push(AsPath::new(v));
        }

        let n = c.len()?;
        let mut comm_sets = Vec::with_capacity(n);
        for _ in 0..n {
            let m = c.len()?;
            let mut v = Vec::with_capacity(m);
            for _ in 0..m {
                v.push(Community(c.u32()?));
            }
            comm_sets.push(v);
        }

        let n = c.len()?;
        let mut lanes = Vec::with_capacity(n);
        for _ in 0..n {
            let vp = c.u32()?;
            if vp as usize >= vp_order.len() {
                return Err(bad("lane VP index out of range"));
            }
            let start = c.u64()?;
            let m = c.len()?;
            let mut recs = Vec::with_capacity(m);
            for _ in 0..m {
                let time_ms = c.u64()?;
                let prefix = c.u32()?;
                let path = c.u32()?;
                let comms = c.u32()?;
                if prefix as usize >= prefixes.len()
                    || path as usize >= paths.len()
                    || comms as usize >= comm_sets.len()
                {
                    return Err(bad("record table index out of range"));
                }
                let kind_byte = c.u8()?;
                let kind = match kind_byte & 1 {
                    0 => UpdateKind::Announce,
                    _ => UpdateKind::Withdraw,
                };
                let path_id = match kind_byte {
                    0 | 1 => None,
                    // the path-id flag only exists in the v2 format
                    2 | 3 if v2 => Some(c.u32()?),
                    _ => return Err(bad("bad record kind byte")),
                };
                recs.push(SegmentRec {
                    time_ms,
                    prefix,
                    path,
                    comms,
                    kind,
                    path_id,
                });
            }
            lanes.push(SegmentLane { vp, start, recs });
        }

        if c.pos != c.buf.len() {
            return Err(bad("trailing bytes after segment body"));
        }
        Ok(Segment {
            seq,
            vp_order,
            prefixes,
            paths,
            comm_sets,
            lanes,
        })
    }

    /// Reconstructs the sealed updates, lane by lane in lane order.
    ///
    /// `Lw`/`Cw` are left empty — re-ingesting through the store re-derives
    /// them exactly as the original ingest did.
    pub fn updates(&self) -> Vec<BgpUpdate> {
        let mut out = Vec::with_capacity(self.lanes.iter().map(|l| l.recs.len()).sum());
        for lane in &self.lanes {
            let vp = self.vp_order[lane.vp as usize];
            for r in &lane.recs {
                out.push(BgpUpdate {
                    vp,
                    time: Timestamp::from_millis(r.time_ms),
                    prefix: self.prefixes[r.prefix as usize],
                    path_id: r.path_id,
                    kind: r.kind,
                    path: self.paths[r.path as usize].clone(),
                    communities: self.comm_sets[r.comms as usize].iter().copied().collect(),
                    withdrawn_links: Default::default(),
                    withdrawn_communities: Default::default(),
                });
            }
        }
        out
    }
}

fn put_len(buf: &mut Vec<u8>, n: usize) -> io::Result<()> {
    let n: u32 = n
        .try_into()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "segment table too large"))?;
    buf.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("segment file truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn len(&mut self) -> io::Result<usize> {
        Ok(self.u32()? as usize)
    }
}

/// CRC-32/IEEE (the zlib polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// File name for segment `seq`: `seg-000042.gseg`.
pub fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:06}.gseg")
}

/// Lists `*.gseg` files under `dir` as `(seq, path)`, sorted by sequence
/// number. Unparseable names are ignored.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".gseg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, path));
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        let vps = vec![VpId::from_asn(Asn(65_000)), VpId::new(Asn(65_001), 2)];
        let mut b = SegmentBuilder::new(7, vps);
        let lane0 = b.add_lane(0, 0);
        let lane1 = b.add_lane(1, 40);
        let p1: Prefix = "10.0.0.0/8".parse().unwrap();
        let p2: Prefix = "2001:db8::/32".parse().unwrap();
        let path = AsPath::from_u32s([65_000, 20, 30]);
        let comms = vec![Community::new(65_000, 100), Community::new(65_000, 200)];
        b.push_rec(lane0, 1_000, p1, &path, &comms, UpdateKind::Announce, None);
        b.push_rec(lane0, 2_000, p2, &path, &[], UpdateKind::Announce, Some(7));
        // same attrs again: must dedup into the same local ids
        b.push_rec(lane0, 3_000, p1, &path, &comms, UpdateKind::Announce, None);
        b.push_rec(
            lane1,
            2_500,
            p1,
            &AsPath::empty(),
            &[],
            UpdateKind::Withdraw,
            None,
        );
        assert_eq!(b.rec_count(), 4);
        b.finish()
    }

    #[test]
    fn round_trip_is_identity() {
        let seg = sample();
        // builder dedup: 2 prefixes, 2 paths (incl. empty), 2 comm sets
        assert_eq!(seg.prefixes.len(), 2);
        assert_eq!(seg.paths.len(), 2);
        assert_eq!(seg.comm_sets.len(), 2);
        let mut buf = Vec::new();
        seg.write_to(&mut buf).unwrap();
        let back = Segment::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn updates_reconstruct_exactly() {
        let seg = sample();
        let ups = seg.updates();
        assert_eq!(ups.len(), 4);
        assert_eq!(ups[0].vp, VpId::from_asn(Asn(65_000)));
        assert_eq!(ups[0].time.as_millis(), 1_000);
        assert_eq!(ups[0].path, AsPath::from_u32s([65_000, 20, 30]));
        assert_eq!(ups[0].communities.len(), 2);
        assert_eq!(ups[3].kind, UpdateKind::Withdraw);
        assert!(ups[3].path.is_empty());
        assert_eq!(ups[0].prefix, "10.0.0.0/8".parse().unwrap());
        assert!(ups[1].prefix.is_ipv6());
        assert_eq!(ups[0].path_id, None);
        assert_eq!(ups[1].path_id, Some(7));
    }

    #[test]
    fn v1_segments_still_load() {
        // hand-build a v1 file: same layout, old magic, kind bytes 0/1
        // only, no trailing path ids
        let seg = sample();
        let mut buf = Vec::new();
        seg.write_to(&mut buf).unwrap();
        // rebuild the body v1-style
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        let body = &buf[8..buf.len() - 4];
        let mut pos = 0usize;
        // everything up to the lanes table is format-identical; re-walk
        // the records to drop the path-id bytes and clear the flag bit
        // seq
        v1.extend_from_slice(&body[pos..pos + 8]);
        pos += 8;
        // vps
        let n = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        v1.extend_from_slice(&body[pos..pos + 4 + n * 6]);
        pos += 4 + n * 6;
        // prefixes
        let n = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        v1.extend_from_slice(&body[pos..pos + 4 + n * 18]);
        pos += 4 + n * 18;
        // paths
        let n = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        v1.extend_from_slice(&body[pos..pos + 4]);
        pos += 4;
        for _ in 0..n {
            let hops = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            v1.extend_from_slice(&body[pos..pos + 4 + hops * 4]);
            pos += 4 + hops * 4;
        }
        // comm sets
        let n = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        v1.extend_from_slice(&body[pos..pos + 4]);
        pos += 4;
        for _ in 0..n {
            let m = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            v1.extend_from_slice(&body[pos..pos + 4 + m * 4]);
            pos += 4 + m * 4;
        }
        // lanes: strip the v2 path-id extension
        let n = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        v1.extend_from_slice(&body[pos..pos + 4]);
        pos += 4;
        for _ in 0..n {
            v1.extend_from_slice(&body[pos..pos + 12]);
            pos += 12;
            let m = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            v1.extend_from_slice(&body[pos..pos + 4]);
            pos += 4;
            for _ in 0..m {
                v1.extend_from_slice(&body[pos..pos + 20]);
                pos += 20;
                let kind = body[pos];
                v1.push(kind & 1);
                pos += 1;
                if kind & 2 != 0 {
                    pos += 4; // drop the path id
                }
            }
        }
        assert_eq!(pos, body.len());
        let crc = crc32(&v1);
        v1.extend_from_slice(&crc.to_le_bytes());
        let back = Segment::read_from(&mut &v1[..]).unwrap();
        assert_eq!(back.seq, seg.seq);
        assert_eq!(back.prefixes, seg.prefixes);
        assert!(back
            .lanes
            .iter()
            .flat_map(|l| &l.recs)
            .all(|r| r.path_id.is_none()));
    }

    #[test]
    fn v1_files_reject_path_id_kind_bytes() {
        // a v1-magic file using kind byte 2 must be rejected, not
        // silently misread
        let seg = sample();
        let mut buf = Vec::new();
        seg.write_to(&mut buf).unwrap();
        let mut body = buf[..buf.len() - 4].to_vec();
        body[..8].copy_from_slice(MAGIC_V1);
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let err = Segment::read_from(&mut &body[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corruption_is_detected() {
        let seg = sample();
        let mut buf = Vec::new();
        seg.write_to(&mut buf).unwrap();
        // flip one byte in the middle of the body
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = Segment::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_is_detected() {
        let seg = sample();
        let mut buf = Vec::new();
        seg.write_to(&mut buf).unwrap();
        for cut in [0, 3, buf.len() / 2, buf.len() - 1] {
            let err = Segment::read_from(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn file_names_sort_by_seq() {
        assert_eq!(segment_file_name(0), "seg-000000.gseg");
        assert_eq!(segment_file_name(42), "seg-000042.gseg");
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
