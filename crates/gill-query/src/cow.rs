//! Copy-on-write persistent RIB over interned entries.
//!
//! The reference store clones a full `Rib` (a `HashMap` of owned entries)
//! for every cadence snapshot; with thousands of snapshot windows that
//! dominates steady-state RSS. [`CowRib`] replaces it with a hash-array
//! mapped trie (16-way, `Arc`-linked nodes): a snapshot is an O(1) root
//! clone, and consecutive snapshots share every unchanged subtree.
//!
//! Between snapshots the live table is usually the *sole* owner of its
//! nodes, and mutation goes through [`Arc::make_mut`] — which mutates in
//! place when the refcount is 1 — so ingest throughput stays close to a
//! plain hash map. Only the first write after a snapshot along each path
//! pays the path-copy.
//!
//! Keys are [`RouteKey`]s — an interned [`PrefixId`] plus the optional
//! RFC 7911 ADD-PATH identifier — not owned `Prefix`es: the id pins the
//! prefix in the store's arena, and the compact key keeps the `Node` enum —
//! and therefore *every* trie allocation, branches included — small.
//! Structural order depends on id assignment and is NOT part of the
//! store's externally visible contract; every consumer of [`CowRib::for_each`]
//! re-sorts (or hashes) downstream.

use bgp_types::{CommSetId, PathId, PrefixId};
use std::sync::Arc;

/// A route identity: the prefix plus the ADD-PATH id (`None` on sessions
/// without the capability). Distinct path ids under one prefix are distinct
/// routes, per RFC 7911.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteKey {
    /// Interned prefix.
    pub prefix: PrefixId,
    /// ADD-PATH identifier, if the announcing session negotiated it.
    pub path: Option<u32>,
}

impl RouteKey {
    /// A key with no ADD-PATH id (the classic single-route-per-prefix case).
    pub fn classic(prefix: PrefixId) -> Self {
        RouteKey { prefix, path: None }
    }
}

impl From<PrefixId> for RouteKey {
    fn from(prefix: PrefixId) -> Self {
        RouteKey::classic(prefix)
    }
}

/// A best route in interned form: arena ids plus the raw announcement
/// timestamp (what `RibEntry::time` carries).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompactEntry {
    /// Interned AS path.
    pub path: PathId,
    /// Interned community set.
    pub comms: CommSetId,
    /// Raw (arrival) announcement time in milliseconds.
    pub time_ms: u64,
}

const BITS: u32 = 4;
const MAX_DEPTH: u32 = 64 / BITS;

#[inline]
fn nibble(hash: u64, depth: u32) -> u32 {
    ((hash >> (depth * BITS)) & 0xf) as u32
}

/// splitmix64 over the key. The path id is folded in as `id + 1` in u64
/// space (so `None` ≠ `Some(u32::MAX)` — the add cannot wrap) times an odd
/// constant, which is injective in the path word; the combined 65-bit key
/// space cannot be bijective into u64, so the collision arm below is live
/// in principle, though unreachable for any realistic table.
#[inline]
fn hash_key(k: RouteKey) -> u64 {
    let path_word = match k.path {
        None => 0u64,
        Some(id) => (id as u64) + 1,
    };
    let mut z = (k.prefix.0 as u64)
        .wrapping_add(path_word.wrapping_mul(0x6c62_272e_07bb_0142))
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[derive(Clone)]
enum Node {
    Leaf(RouteKey, CompactEntry),
    /// Entries whose full 64-bit hashes collide (astronomically unlikely
    /// for the hash above; kept so the structure is safe under any hash).
    Collision(Vec<(RouteKey, CompactEntry)>),
    /// 16-way branch: `bitmap` marks populated nibbles, `children` packs
    /// them in nibble order.
    Branch(u16, Vec<Arc<Node>>),
}

/// A persistent [`RouteKey`] → [`CompactEntry`] map with O(1) snapshots.
#[derive(Clone, Default)]
pub struct CowRib {
    root: Option<Arc<Node>>,
    len: usize,
}

impl CowRib {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current route for `key`.
    pub fn get(&self, key: RouteKey) -> Option<&CompactEntry> {
        let mut node = self.root.as_deref()?;
        let hash = hash_key(key);
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf(q, e) => return (*q == key).then_some(e),
                Node::Collision(items) => {
                    return items.iter().find(|(q, _)| *q == key).map(|(_, e)| e)
                }
                Node::Branch(bitmap, children) => {
                    let bit = 1u16 << nibble(hash, depth);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let idx = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[idx];
                    depth += 1;
                }
            }
        }
    }

    /// Installs (or replaces) the route for `key`, returning the previous
    /// entry if any. Shared nodes along the path are copied; exclusively
    /// owned nodes are mutated in place.
    pub fn insert(&mut self, key: RouteKey, e: CompactEntry) -> Option<CompactEntry> {
        let old = match &mut self.root {
            None => {
                self.root = Some(Arc::new(Node::Leaf(key, e)));
                None
            }
            Some(root) => insert_rec(root, hash_key(key), 0, key, e),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the route for `key`, returning it if present.
    pub fn remove(&mut self, key: RouteKey) -> Option<CompactEntry> {
        // Probe first: a miss must not path-copy shared nodes.
        self.get(key)?;
        let root = self.root.as_mut().expect("probe hit implies a root");
        let (removed, prune) = remove_rec(root, hash_key(key), 0, key);
        debug_assert!(removed.is_some());
        if prune {
            self.root = None;
        }
        self.len -= 1;
        removed
    }

    /// Visits every `(key, entry)` pair in structural (hash) order.
    pub fn for_each(&self, mut f: impl FnMut(RouteKey, &CompactEntry)) {
        fn walk(node: &Node, f: &mut impl FnMut(RouteKey, &CompactEntry)) {
            match node {
                Node::Leaf(key, e) => f(*key, e),
                Node::Collision(items) => {
                    for (key, e) in items {
                        f(*key, e);
                    }
                }
                Node::Branch(_, children) => {
                    for c in children {
                        walk(c, f);
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut f);
        }
    }
}

fn insert_rec(
    node: &mut Arc<Node>,
    hash: u64,
    depth: u32,
    key: RouteKey,
    e: CompactEntry,
) -> Option<CompactEntry> {
    match Arc::make_mut(node) {
        Node::Leaf(q, old) if *q == key => Some(std::mem::replace(old, e)),
        n @ Node::Leaf(..) => {
            let (q, old_e) = match n {
                Node::Leaf(q, e) => (*q, *e),
                _ => unreachable!(),
            };
            *n = split_leaf((q, old_e), (key, e), depth);
            None
        }
        Node::Collision(items) => match items.iter_mut().find(|(q, _)| *q == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, e)),
            None => {
                items.push((key, e));
                None
            }
        },
        Node::Branch(bitmap, children) => {
            let bit = 1u16 << nibble(hash, depth);
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit != 0 {
                insert_rec(&mut children[idx], hash, depth + 1, key, e)
            } else {
                children.insert(idx, Arc::new(Node::Leaf(key, e)));
                *bitmap |= bit;
                None
            }
        }
    }
}

/// Builds the minimal subtree holding two distinct entries whose paths
/// diverge at or below `depth`.
fn split_leaf(a: (RouteKey, CompactEntry), b: (RouteKey, CompactEntry), depth: u32) -> Node {
    if depth >= MAX_DEPTH {
        return Node::Collision(vec![a, b]);
    }
    let na = nibble(hash_key(a.0), depth);
    let nb = nibble(hash_key(b.0), depth);
    if na == nb {
        let child = split_leaf(a, b, depth + 1);
        Node::Branch(1 << na, vec![Arc::new(child)])
    } else {
        let (lo, hi) = if na < nb { (a, b) } else { (b, a) };
        Node::Branch(
            (1 << na) | (1 << nb),
            vec![
                Arc::new(Node::Leaf(lo.0, lo.1)),
                Arc::new(Node::Leaf(hi.0, hi.1)),
            ],
        )
    }
}

/// Removes `key` from the subtree; the bool asks the parent to drop this
/// child entirely (it became empty). The caller guarantees `key` is present.
fn remove_rec(
    node: &mut Arc<Node>,
    hash: u64,
    depth: u32,
    key: RouteKey,
) -> (Option<CompactEntry>, bool) {
    match Arc::make_mut(node) {
        Node::Leaf(q, e) => {
            debug_assert_eq!(*q, key);
            (Some(*e), true)
        }
        Node::Collision(items) => {
            let pos = items.iter().position(|(q, _)| *q == key);
            match pos {
                Some(i) => {
                    let (_, e) = items.swap_remove(i);
                    (Some(e), items.is_empty())
                }
                None => (None, false),
            }
        }
        Node::Branch(bitmap, children) => {
            let bit = 1u16 << nibble(hash, depth);
            if *bitmap & bit == 0 {
                return (None, false);
            }
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            let (removed, prune) = remove_rec(&mut children[idx], hash, depth + 1, key);
            if prune {
                children.remove(idx);
                *bitmap &= !bit;
            }
            (removed, children.is_empty())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn entry(n: u32) -> CompactEntry {
        CompactEntry {
            path: PathId(n),
            comms: CommSetId(n % 7),
            time_ms: n as u64 * 100,
        }
    }

    fn key(n: u32) -> RouteKey {
        RouteKey::classic(PrefixId(n))
    }

    /// Deterministic xorshift (no rand dep in unit tests).
    struct Rng(u64);
    impl Rng {
        fn below(&mut self, n: u64) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x % n
        }
    }

    #[test]
    fn node_stays_small() {
        // Compact keys keep every trie allocation one small enum (the
        // ADD-PATH id widened the pre-RFC7911 32-byte bound slightly).
        assert!(std::mem::size_of::<Node>() <= 40);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = CowRib::new();
        let p = key(42);
        assert!(m.get(p).is_none());
        assert_eq!(m.insert(p, entry(1)), None);
        assert_eq!(m.get(p), Some(&entry(1)));
        assert_eq!(m.insert(p, entry(2)), Some(entry(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(p), Some(entry(2)));
        assert!(m.is_empty());
        assert_eq!(m.remove(p), None);
    }

    #[test]
    fn path_ids_are_distinct_routes() {
        // RFC 7911: (prefix, path-id) is the route identity. None and
        // Some(0) must also stay distinct, as must Some(u32::MAX).
        let mut m = CowRib::new();
        let p = PrefixId(7);
        let keys = [
            RouteKey {
                prefix: p,
                path: None,
            },
            RouteKey {
                prefix: p,
                path: Some(0),
            },
            RouteKey {
                prefix: p,
                path: Some(1),
            },
            RouteKey {
                prefix: p,
                path: Some(u32::MAX),
            },
        ];
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(m.insert(*k, entry(i as u32)), None, "key {k:?}");
        }
        assert_eq!(m.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(m.get(*k), Some(&entry(i as u32)), "key {k:?}");
        }
        assert_eq!(m.remove(keys[1]), Some(entry(1)));
        assert_eq!(
            m.get(keys[0]),
            Some(&entry(0)),
            "None survives Some(0) removal"
        );
        assert_eq!(m.len(), keys.len() - 1);
    }

    #[test]
    fn model_checked_against_hashmap() {
        let mut m = CowRib::new();
        let mut model: HashMap<RouteKey, CompactEntry> = HashMap::new();
        let mut rng = Rng(0xdeadbeefcafe1234);
        for step in 0..20_000u32 {
            let path = match rng.below(3) {
                0 => None,
                _ => Some(rng.below(4) as u32),
            };
            let p = RouteKey {
                prefix: PrefixId(rng.below(500) as u32),
                path,
            };
            match rng.below(3) {
                0 | 1 => {
                    let e = entry(step);
                    assert_eq!(m.insert(p, e), model.insert(p, e), "step {step}");
                }
                _ => {
                    assert_eq!(m.remove(p), model.remove(&p), "step {step}");
                }
            }
            assert_eq!(m.len(), model.len(), "step {step}");
        }
        // final contents identical
        let mut got: Vec<(RouteKey, CompactEntry)> = Vec::new();
        m.for_each(|p, e| got.push((p, *e)));
        assert_eq!(got.len(), model.len());
        for (p, e) in got {
            assert_eq!(model.get(&p), Some(&e));
        }
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let mut m = CowRib::new();
        for i in 0..300u32 {
            m.insert(key(i), entry(i));
        }
        let snap = m.clone();
        // mutate heavily after the snapshot
        for i in 0..300u32 {
            if i % 3 == 0 {
                m.remove(key(i));
            } else {
                m.insert(key(i), entry(i + 1_000));
            }
        }
        m.insert(key(900), entry(900));
        // snapshot still sees the original contents
        assert_eq!(snap.len(), 300);
        for i in 0..300u32 {
            assert_eq!(snap.get(key(i)), Some(&entry(i)), "prefix {i}");
        }
        assert!(snap.get(key(900)).is_none());
        // and the live map sees the new state
        assert_eq!(m.get(key(3)), None);
        assert_eq!(m.get(key(1)), Some(&entry(1_001)));
    }

    #[test]
    fn structural_iteration_is_insertion_order_independent() {
        let mut a = CowRib::new();
        let mut b = CowRib::new();
        for i in 0..100u32 {
            a.insert(key(i), entry(i));
        }
        for i in (0..100u32).rev() {
            b.insert(key(i), entry(i));
        }
        let mut va = Vec::new();
        let mut vb = Vec::new();
        a.for_each(|p, e| va.push((p, *e)));
        b.for_each(|p, e| vb.push((p, *e)));
        assert_eq!(va, vb, "same key set must iterate identically");
    }
}
