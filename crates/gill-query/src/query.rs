//! Query parameter types and the engine that renders store answers as JSON.
//!
//! The HTTP layer parses URLs into a [`RouteQuery`]/[`UpdateQuery`] and the
//! engine executes it against a [`RouteStore`], producing [`Json`] the
//! server serializes. Keeping this separate from HTTP means the same query
//! surface is testable (and usable by other frontends) without sockets.

use crate::json::Json;
use crate::store::{RouteStore, RouteView};
use bgp_types::{Asn, Prefix, Timestamp, UpdateKind, VpId};

/// How a queried prefix selects stored route-table entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// Only the exact prefix.
    Exact,
    /// The most specific stored prefix covering the query (route lookup).
    Longest,
    /// Every stored prefix covered by the query (sub-prefix enumeration).
    MoreSpecific,
}

impl MatchMode {
    /// Parses the `match=` query parameter.
    pub fn parse(s: &str) -> Option<MatchMode> {
        match s {
            "exact" => Some(MatchMode::Exact),
            "lpm" | "longest" => Some(MatchMode::Longest),
            "ms" | "more-specific" | "more_specifics" => Some(MatchMode::MoreSpecific),
            _ => None,
        }
    }
}

/// Prefix joining for update-log queries (shard scans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinMode {
    /// Updates whose prefix equals the query.
    Exact,
    /// Updates whose prefix is covered by the query.
    Covered,
}

/// A looking-glass route query.
#[derive(Clone, Debug)]
pub struct RouteQuery {
    /// The queried prefix.
    pub prefix: Prefix,
    /// Match semantics (default LPM, the looking-glass default).
    pub mode: MatchMode,
    /// Restrict to one VP (`None` = all VPs).
    pub vp: Option<VpId>,
    /// Historical point-in-time (`None` = live table).
    pub at: Option<Timestamp>,
}

/// An update-log query over the time shards.
#[derive(Clone, Debug)]
pub struct UpdateQuery {
    /// Restrict to a prefix (`None` = everything in range).
    pub prefix: Option<Prefix>,
    /// Exact vs covered prefix matching.
    pub join: JoinMode,
    /// Restrict to one VP.
    pub vp: Option<VpId>,
    /// Range start (inclusive).
    pub from: Timestamp,
    /// Range end (inclusive).
    pub to: Timestamp,
    /// Cap on returned records.
    pub limit: usize,
}

/// Executes queries against a store and renders JSON.
pub struct QueryEngine;

impl QueryEngine {
    /// `/routes` — looking-glass lookup.
    pub fn routes(store: &RouteStore, q: &RouteQuery) -> Json {
        let views = match q.at {
            None => store.lookup(&q.prefix, q.mode, q.vp),
            Some(t) => store.lookup_at(&q.prefix, q.mode, q.vp, t),
        };
        Json::obj([
            ("query", Json::str(q.prefix.to_string())),
            (
                "match",
                Json::str(match q.mode {
                    MatchMode::Exact => "exact",
                    MatchMode::Longest => "lpm",
                    MatchMode::MoreSpecific => "ms",
                }),
            ),
            (
                "at",
                q.at.map(|t| Json::U64(t.as_millis())).unwrap_or(Json::Null),
            ),
            ("count", Json::U64(views.len() as u64)),
            ("routes", Json::Arr(views.iter().map(route_json).collect())),
        ])
    }

    /// `/rib` — one VP's full table (live or at a point in time).
    pub fn rib(store: &RouteStore, vp: VpId, at: Option<Timestamp>) -> Option<Json> {
        let render = |entries: Vec<(Prefix, bgp_types::RibEntry)>| {
            let mut entries = entries;
            entries.sort_by_key(|(p, _)| *p);
            Json::obj([
                ("vp", Json::str(vp.to_string())),
                (
                    "at",
                    at.map(|t| Json::U64(t.as_millis())).unwrap_or(Json::Null),
                ),
                ("count", Json::U64(entries.len() as u64)),
                (
                    "routes",
                    Json::Arr(entries.iter().map(|(p, e)| entry_json(*p, e)).collect()),
                ),
            ])
        };
        match at {
            None => {
                let rib = store.rib_now(vp)?;
                Some(render(rib.iter().map(|(p, e)| (*p, e.clone())).collect()))
            }
            Some(t) => {
                let rib = store.rib_at(vp, t)?;
                Some(render(rib.iter().map(|(p, e)| (*p, e.clone())).collect()))
            }
        }
    }

    /// `/updates` — the time-ranged update log.
    pub fn updates(store: &RouteStore, q: &UpdateQuery) -> Json {
        let all = store.updates_in_range(q.prefix.as_ref(), q.join, q.vp, q.from, q.to);
        let truncated = all.len() > q.limit;
        let shown = &all[..all.len().min(q.limit)];
        Json::obj([
            ("from", Json::U64(q.from.as_millis())),
            ("to", Json::U64(q.to.as_millis())),
            ("count", Json::U64(shown.len() as u64)),
            ("truncated", Json::Bool(truncated)),
            (
                "updates",
                Json::Arr(shown.iter().map(update_json).collect()),
            ),
        ])
    }

    /// `/origin` — prefixes currently originated by an AS.
    pub fn origin(store: &RouteStore, asn: Asn) -> Json {
        let prefixes = store.originated(asn);
        Json::obj([
            ("asn", Json::U64(asn.value() as u64)),
            ("count", Json::U64(prefixes.len() as u64)),
            (
                "prefixes",
                Json::Arr(
                    prefixes
                        .iter()
                        .map(|(p, vps)| {
                            Json::obj([
                                ("prefix", Json::str(p.to_string())),
                                ("vps", Json::U64(*vps as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// `/vps` — the vantage points feeding the store.
    pub fn vps(store: &RouteStore) -> Json {
        Json::obj([(
            "vps",
            Json::Arr(
                store
                    .vps()
                    .iter()
                    .map(|(vp, n)| {
                        Json::obj([
                            ("vp", Json::str(vp.to_string())),
                            ("asn", Json::U64(vp.asn.value() as u64)),
                            ("updates", Json::U64(*n as u64)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// `/store/stats` — memory, arena and persistence counters.
    pub fn store_stats(store: &RouteStore) -> Json {
        let st = store.stats();
        let m = store.mem_stats();
        Json::obj([
            ("updates", Json::U64(st.updates as u64)),
            ("shards", Json::U64(st.shards as u64)),
            ("snapshots", Json::U64(st.snapshots as u64)),
            ("bytes_resident", Json::U64(m.bytes_resident)),
            ("arena_paths", Json::U64(m.arena_paths as u64)),
            ("arena_comm_sets", Json::U64(m.arena_comm_sets as u64)),
            ("arena_link_sets", Json::U64(m.arena_link_sets as u64)),
            ("arena_prefixes", Json::U64(m.arena_prefixes as u64)),
            ("attr_refs", Json::U64(m.attr_refs)),
            (
                "dedup_ratio",
                Json::F64((m.dedup_ratio * 1000.0).round() / 1000.0),
            ),
            ("sealed_segments", Json::U64(m.sealed_segments as u64)),
            ("sealed_updates", Json::U64(m.sealed_updates as u64)),
            ("shed_updates", Json::U64(m.shed_updates as u64)),
        ])
    }

    /// `/health` — liveness plus store counters.
    pub fn health(store: &RouteStore) -> Json {
        let st = store.stats();
        Json::obj([
            ("status", Json::str("ok")),
            ("updates", Json::U64(st.updates as u64)),
            ("vps", Json::U64(st.vps as u64)),
            ("shards", Json::U64(st.shards as u64)),
            ("snapshots", Json::U64(st.snapshots as u64)),
            ("live_prefixes", Json::U64(st.live_prefixes as u64)),
        ])
    }
}

fn route_json(v: &RouteView) -> Json {
    let mut obj = match entry_json(v.prefix, &v.entry) {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("entry_json returns an object"),
    };
    obj.insert(0, ("vp".to_string(), Json::str(v.vp.to_string())));
    Json::Obj(obj)
}

fn entry_json(prefix: Prefix, e: &bgp_types::RibEntry) -> Json {
    Json::obj([
        ("prefix", Json::str(prefix.to_string())),
        (
            "path",
            Json::Arr(
                e.path
                    .hops()
                    .iter()
                    .map(|a| Json::U64(a.value() as u64))
                    .collect(),
            ),
        ),
        (
            "origin",
            e.path
                .origin()
                .map(|a| Json::U64(a.value() as u64))
                .unwrap_or(Json::Null),
        ),
        (
            "communities",
            Json::Arr(
                e.communities
                    .iter()
                    .map(|c| Json::str(c.to_string()))
                    .collect(),
            ),
        ),
        ("time", Json::U64(e.time.as_millis())),
    ])
}

fn update_json(u: &bgp_types::BgpUpdate) -> Json {
    let mut fields = vec![
        ("vp", Json::str(u.vp.to_string())),
        ("time", Json::U64(u.time.as_millis())),
        ("prefix", Json::str(u.prefix.to_string())),
        (
            "kind",
            Json::str(match u.kind {
                UpdateKind::Announce => "announce",
                UpdateKind::Withdraw => "withdraw",
            }),
        ),
        (
            "path",
            Json::Arr(
                u.path
                    .hops()
                    .iter()
                    .map(|a| Json::U64(a.value() as u64))
                    .collect(),
            ),
        ),
        (
            "communities",
            Json::Arr(
                u.communities
                    .iter()
                    .map(|c| Json::str(c.to_string()))
                    .collect(),
            ),
        ),
    ];
    // only ADD-PATH-tagged updates carry the key; classic responses
    // stay byte-identical (the store-persist cmp depends on that)
    if let Some(id) = u.path_id {
        fields.push(("path_id", Json::U64(id as u64)));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::UpdateBuilder;

    fn store_with_routes() -> RouteStore {
        let mut s = RouteStore::default();
        s.ingest(
            UpdateBuilder::announce(VpId::from_asn(Asn(65001)), "10.0.0.0/8".parse().unwrap())
                .at(Timestamp::from_secs(1))
                .path([65001, 2, 3])
                .community(65001, 100)
                .build(),
        );
        s
    }

    #[test]
    fn routes_json_shape() {
        let s = store_with_routes();
        let q = RouteQuery {
            prefix: "10.0.0.0/8".parse().unwrap(),
            mode: MatchMode::Exact,
            vp: None,
            at: None,
        };
        let out = QueryEngine::routes(&s, &q).encode().unwrap();
        assert_eq!(
            out,
            "{\"query\":\"10.0.0.0/8\",\"match\":\"exact\",\"at\":null,\"count\":1,\
             \"routes\":[{\"vp\":\"vp(AS65001)\",\"prefix\":\"10.0.0.0/8\",\
             \"path\":[65001,2,3],\"origin\":3,\"communities\":[\"65001:100\"],\
             \"time\":1000}]}"
        );
    }

    #[test]
    fn update_json_tags_path_id_only_when_present() {
        let classic =
            UpdateBuilder::announce(VpId::from_asn(Asn(65001)), "10.0.0.0/8".parse().unwrap())
                .at(Timestamp::from_secs(1))
                .path([65001, 2])
                .build();
        assert!(!update_json(&classic).encode().unwrap().contains("path_id"));

        let tagged =
            UpdateBuilder::announce(VpId::from_asn(Asn(65001)), "2001:db8::/32".parse().unwrap())
                .at(Timestamp::from_secs(1))
                .path([65001, 2])
                .path_id(7)
                .build();
        assert!(update_json(&tagged)
            .encode()
            .unwrap()
            .contains("\"path_id\":7"));
    }

    #[test]
    fn health_counts() {
        let s = store_with_routes();
        let out = QueryEngine::health(&s).encode().unwrap();
        assert!(out.contains("\"status\":\"ok\""));
        assert!(out.contains("\"updates\":1"));
        assert!(out.contains("\"live_prefixes\":1"));
    }

    #[test]
    fn match_mode_parse() {
        assert_eq!(MatchMode::parse("exact"), Some(MatchMode::Exact));
        assert_eq!(MatchMode::parse("lpm"), Some(MatchMode::Longest));
        assert_eq!(MatchMode::parse("ms"), Some(MatchMode::MoreSpecific));
        assert_eq!(MatchMode::parse("bogus"), None);
    }

    #[test]
    fn rib_of_unknown_vp_is_none() {
        let s = store_with_routes();
        assert!(QueryEngine::rib(&s, VpId::from_asn(Asn(9)), None).is_none());
    }
}
