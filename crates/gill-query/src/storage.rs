//! Bridges the collector's storage trait into the route store.
//!
//! Plugging a [`QueryableStorage`] into `DaemonPool::drain_into` turns a
//! running collector into a live looking glass: every retained update is
//! ingested into a shared [`RouteStore`] that the HTTP layer queries
//! concurrently. The store sits behind a `parking_lot::RwLock` — ingest is
//! a short exclusive write, queries take shared reads, and the lock is
//! never held across I/O.

use crate::store::{RouteStore, StoreConfig};
use gill_collector::storage::{Storage, StoredUpdate};
use parking_lot::RwLock;
use std::sync::Arc;

/// A [`Storage`] backend that indexes every update into a shared
/// [`RouteStore`].
pub struct QueryableStorage {
    store: Arc<RwLock<RouteStore>>,
    stored: usize,
}

impl Default for QueryableStorage {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl QueryableStorage {
    /// A fresh store with the given tuning.
    pub fn new(cfg: StoreConfig) -> Self {
        QueryableStorage {
            store: Arc::new(RwLock::new(RouteStore::new(cfg))),
            stored: 0,
        }
    }

    /// Wraps an existing shared store (e.g. one pre-loaded from MRT).
    pub fn with_store(store: Arc<RwLock<RouteStore>>) -> Self {
        QueryableStorage { store, stored: 0 }
    }

    /// The shared store handle, for the query/HTTP side.
    pub fn handle(&self) -> Arc<RwLock<RouteStore>> {
        self.store.clone()
    }
}

impl Storage for QueryableStorage {
    fn store(&mut self, rec: StoredUpdate) {
        self.store.write().ingest(rec.update);
        self.stored += 1;
    }

    fn stored(&self) -> usize {
        self.stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchMode;
    use bgp_types::{Asn, Prefix, Timestamp, UpdateBuilder, VpId};

    #[test]
    fn stored_updates_become_queryable() {
        let mut s = QueryableStorage::default();
        let handle = s.handle();
        for i in 0..3u32 {
            let u = UpdateBuilder::announce(VpId::from_asn(Asn(65000 + i)), Prefix::synthetic(i))
                .at(Timestamp::from_secs(i as u64))
                .path([65000 + i, 2, 3])
                .build();
            s.store(StoredUpdate { update: u });
        }
        assert_eq!(s.stored(), 3);
        let store = handle.read();
        assert_eq!(store.stats().updates, 3);
        assert_eq!(
            store
                .lookup(&Prefix::synthetic(1), MatchMode::Exact, None)
                .len(),
            1
        );
    }
}
