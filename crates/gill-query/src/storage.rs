//! Bridges the collector's storage trait into the route store.
//!
//! Plugging a [`QueryableStorage`] into `DaemonPool::drain_into` turns a
//! running collector into a live looking glass: every retained update is
//! ingested into a shared [`RouteStore`] that the HTTP layer queries
//! concurrently. The store sits behind a `parking_lot::RwLock` — ingest is
//! a short exclusive write, queries take shared reads, and the lock is
//! never held across I/O.
//!
//! With a data directory attached, the backend also drives persistence:
//! complete (aged-out) shards are sealed into segment files periodically
//! during ingest, and [`Storage::flush`] seals the remaining tail so a
//! clean shutdown loses nothing.

use crate::store::{RouteStore, StoreConfig};
use gill_collector::storage::{Storage, StoredUpdate};
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::Arc;

/// Seal aged-out shards every this many stored updates (cheap no-op when
/// nothing new has aged out).
const SEAL_CHECK_EVERY: usize = 5_000;

/// A [`Storage`] backend that indexes every update into a shared
/// [`RouteStore`].
pub struct QueryableStorage {
    store: Arc<RwLock<RouteStore>>,
    stored: usize,
    data_dir: Option<PathBuf>,
}

impl Default for QueryableStorage {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl QueryableStorage {
    /// A fresh store with the given tuning.
    pub fn new(cfg: StoreConfig) -> Self {
        QueryableStorage {
            store: Arc::new(RwLock::new(RouteStore::new(cfg))),
            stored: 0,
            data_dir: None,
        }
    }

    /// Wraps an existing shared store (e.g. one pre-loaded from MRT).
    pub fn with_store(store: Arc<RwLock<RouteStore>>) -> Self {
        QueryableStorage {
            store,
            stored: 0,
            data_dir: None,
        }
    }

    /// Enables segment persistence under `dir`: aged-out shards seal during
    /// ingest, and `flush` seals the tail.
    pub fn persist_to(mut self, dir: PathBuf) -> Self {
        self.data_dir = Some(dir);
        self
    }

    /// The shared store handle, for the query/HTTP side.
    pub fn handle(&self) -> Arc<RwLock<RouteStore>> {
        self.store.clone()
    }

    fn seal(&self, all: bool) {
        let Some(dir) = &self.data_dir else {
            return;
        };
        let result = {
            let mut store = self.store.write();
            if all {
                store.seal_all_into(dir)
            } else {
                store.seal_complete_into(dir)
            }
        };
        if let Err(e) = result {
            eprintln!("gill-query: sealing to {} failed: {e}", dir.display());
        }
    }
}

impl Storage for QueryableStorage {
    fn store(&mut self, rec: StoredUpdate) {
        self.store.write().ingest(rec.update);
        self.stored += 1;
        if self.stored.is_multiple_of(SEAL_CHECK_EVERY) {
            self.seal(false);
        }
    }

    fn stored(&self) -> usize {
        self.stored
    }

    fn flush(&mut self) {
        self.seal(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchMode;
    use bgp_types::{Asn, Prefix, Timestamp, UpdateBuilder, VpId};

    #[test]
    fn stored_updates_become_queryable() {
        let mut s = QueryableStorage::default();
        let handle = s.handle();
        for i in 0..3u32 {
            let u = UpdateBuilder::announce(VpId::from_asn(Asn(65000 + i)), Prefix::synthetic(i))
                .at(Timestamp::from_secs(i as u64))
                .path([65000 + i, 2, 3])
                .build();
            s.store(StoredUpdate { update: u });
        }
        assert_eq!(s.stored(), 3);
        let store = handle.read();
        assert_eq!(store.stats().updates, 3);
        assert_eq!(
            store
                .lookup(&Prefix::synthetic(1), MatchMode::Exact, None)
                .len(),
            1
        );
    }

    #[test]
    fn flush_seals_tail_to_data_dir() {
        let dir = std::env::temp_dir().join(format!("gill-qs-flush-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = QueryableStorage::default().persist_to(dir.clone());
        for i in 0..5u32 {
            let u = UpdateBuilder::announce(VpId::from_asn(Asn(65000)), Prefix::synthetic(i))
                .at(Timestamp::from_secs(i as u64))
                .path([65000, 2, 3])
                .build();
            s.store(StoredUpdate { update: u });
        }
        s.flush();
        let segs = crate::segment::list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1, "flush writes exactly one tail segment");
        let mut reloaded = RouteStore::default();
        assert_eq!(reloaded.load_dir(&dir).unwrap(), 5);
        assert_eq!(reloaded.stats().updates, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
