//! The looking-glass endpoint router.
//!
//! Maps URLs onto [`QueryEngine`] calls against a shared [`RouteStore`] and
//! serves the result over the [`http`](crate::http) layer. JSON endpoints
//! answer interactive queries; the `/mrt/*` endpoints export the same data
//! in the archive format (BGP4MP update streams, TABLE_DUMP_V2 RIB
//! snapshots) so downstream tooling can consume a live store exactly like
//! a published dump.
//!
//! | endpoint        | parameters                                        |
//! |-----------------|---------------------------------------------------|
//! | `/health`       | —                                                 |
//! | `/vps`          | —                                                 |
//! | `/routes`       | `prefix` (req), `match=exact|lpm|ms`, `vp`, `at`  |
//! | `/rib`          | `vp` (req), `at`                                  |
//! | `/updates`      | `from`, `to`, `prefix`, `join=exact|covered`, `vp`, `limit` |
//! | `/origin`       | `asn` (req)                                       |
//! | `/mrt/updates`  | `vp` (req)                                        |
//! | `/mrt/rib`      | `at` (default: latest)                            |
//! | `/filters`      | `format=json|text` (default: json)                |
//!
//! Timestamps are milliseconds since the epoch; `vp` is `65001` /
//! `AS65001` / `65001#2`. `/filters` publishes the collector's live filter
//! state (GILL §9): JSON describes the current epoch, `format=text` serves
//! the exact published `anchor`/`drop` rule file, byte-for-byte what
//! [`FilterSet::from_text`](gill_core::FilterSet::from_text) re-ingests.

use crate::http::{HttpServer, Request, Response, ServerConfig};
use crate::query::{QueryEngine, RouteQuery, UpdateQuery};
use crate::store::RouteStore;
use crate::{JoinMode, MatchMode};
use bgp_types::{Asn, BgpUpdate, Prefix, Timestamp, VpId};
use bgp_wire::{BgpMessage, MrtRecord, MrtWriter, TableDump, UpdateMessage};
use gill_core::{FilterGranularity, FilterHandle};
use parking_lot::RwLock;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// The store handle shared between ingest and serving.
pub type SharedStore = Arc<RwLock<RouteStore>>;

/// Default cap on `/updates` results when `limit` is absent.
const DEFAULT_UPDATE_LIMIT: usize = 10_000;

/// Starts the looking-glass server on `addr` over `store`.
pub fn serve(addr: &str, cfg: ServerConfig, store: SharedStore) -> std::io::Result<HttpServer> {
    serve_with(addr, cfg, store, None)
}

/// Starts the looking-glass server with collector filter state attached,
/// enabling `/filters` (reads always see the live epoch — the handle is
/// the same one the collector's sessions judge against).
pub fn serve_with(
    addr: &str,
    cfg: ServerConfig,
    store: SharedStore,
    filters: Option<Arc<FilterHandle>>,
) -> std::io::Result<HttpServer> {
    HttpServer::start(addr, cfg, move |req| {
        route_with(req, &store, filters.as_deref())
    })
}

/// Dispatches one parsed request against the store (no filter state).
pub fn route(req: &Request, store: &SharedStore) -> Response {
    route_with(req, store, None)
}

/// Dispatches one parsed request against the store and optional filter
/// state.
pub fn route_with(req: &Request, store: &SharedStore, filters: Option<&FilterHandle>) -> Response {
    match req.path.as_str() {
        "/health" => json_ok(QueryEngine::health(&store.read())),
        "/store/stats" => json_ok(QueryEngine::store_stats(&store.read())),
        "/vps" => json_ok(QueryEngine::vps(&store.read())),
        "/routes" => routes(req, store),
        "/rib" => rib(req, store),
        "/updates" => updates(req, store),
        "/origin" => origin(req, store),
        "/mrt/updates" => mrt_updates(req, store),
        "/mrt/rib" => mrt_rib(req, store),
        "/filters" => filters_endpoint(req, filters),
        _ => Response::error(404, "unknown endpoint"),
    }
}

/// `/filters`: the live filter state. JSON by default; `format=text`
/// serves the §9 published rule file exactly as
/// [`CompiledFilters::to_text`](gill_core::CompiledFilters::to_text)
/// renders it.
fn filters_endpoint(req: &Request, filters: Option<&FilterHandle>) -> Response {
    use crate::Json;
    let Some(handle) = filters else {
        return Response::error(404, "no filter state attached");
    };
    let compiled = handle.snapshot();
    match req.param("format") {
        Some("text") => match compiled.to_text() {
            Ok(text) => Response::text(text),
            Err(e) => Response::error(400, e),
        },
        None | Some("json") => {
            let granularity = match compiled.granularity() {
                FilterGranularity::VpPrefix => "vp-prefix",
                FilterGranularity::VpPrefixPath => "vp-prefix-path",
                FilterGranularity::VpPrefixPathComms => "vp-prefix-path-comms",
            };
            let anchors = compiled
                .anchors()
                .iter()
                .map(|vp| {
                    Json::str(if vp.router == 0 {
                        format!("{}", vp.asn.value())
                    } else {
                        format!("{}#{}", vp.asn.value(), vp.router)
                    })
                })
                .collect();
            let meta = compiled.meta();
            json_ok(Json::obj([
                ("epoch", Json::U64(compiled.epoch())),
                ("granularity", Json::str(granularity)),
                ("rules", Json::U64(compiled.num_rules() as u64)),
                ("anchors", Json::Arr(anchors)),
                (
                    "build",
                    Json::obj([
                        ("rules", Json::U64(meta.rules as u64)),
                        ("anchors", Json::U64(meta.anchors as u64)),
                        ("build_us", Json::U64(meta.build.as_micros() as u64)),
                    ]),
                ),
            ]))
        }
        Some(other) => Response::error(400, &format!("bad format parameter: {other:?}")),
    }
}

fn json_ok(j: crate::Json) -> Response {
    match j.encode() {
        Ok(body) => Response::json(body),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// Parses `65001`, `AS65001`, or `65001#2` into a VP id.
pub fn parse_vp(s: &str) -> Option<VpId> {
    let (asn, router) = match s.split_once('#') {
        Some((a, r)) => (a, r.parse::<u16>().ok()?),
        None => (s, 0),
    };
    Some(VpId::new(asn.parse::<Asn>().ok()?, router))
}

fn parse_time(s: &str) -> Option<Timestamp> {
    s.parse::<u64>().ok().map(Timestamp::from_millis)
}

/// Extracts an optional parameter, distinguishing absent from malformed.
fn opt_param<T>(
    req: &Request,
    key: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, Response> {
    match req.param(key) {
        None => Ok(None),
        Some(raw) => parse(raw)
            .map(Some)
            .ok_or_else(|| Response::error(400, &format!("bad {key} parameter: {raw:?}"))),
    }
}

fn routes(req: &Request, store: &SharedStore) -> Response {
    let Some(prefix_raw) = req.param("prefix") else {
        return Response::error(400, "missing prefix parameter");
    };
    let Ok(prefix) = prefix_raw.parse::<Prefix>() else {
        return Response::error(400, &format!("bad prefix parameter: {prefix_raw:?}"));
    };
    let mode = match opt_param(req, "match", MatchMode::parse) {
        Ok(m) => m.unwrap_or(MatchMode::Longest),
        Err(resp) => return resp,
    };
    let vp = match opt_param(req, "vp", parse_vp) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let at = match opt_param(req, "at", parse_time) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let q = RouteQuery {
        prefix,
        mode,
        vp,
        at,
    };
    json_ok(QueryEngine::routes(&store.read(), &q))
}

fn rib(req: &Request, store: &SharedStore) -> Response {
    let vp = match opt_param(req, "vp", parse_vp) {
        Ok(Some(v)) => v,
        Ok(None) => return Response::error(400, "missing vp parameter"),
        Err(resp) => return resp,
    };
    let at = match opt_param(req, "at", parse_time) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    match QueryEngine::rib(&store.read(), vp, at) {
        Some(j) => json_ok(j),
        None => Response::error(404, &format!("unknown vp {vp}")),
    }
}

fn updates(req: &Request, store: &SharedStore) -> Response {
    let prefix = match opt_param(req, "prefix", |s| s.parse::<Prefix>().ok()) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let join = match req.param("join") {
        None | Some("exact") => JoinMode::Exact,
        Some("covered") => JoinMode::Covered,
        Some(other) => return Response::error(400, &format!("bad join parameter: {other:?}")),
    };
    let vp = match opt_param(req, "vp", parse_vp) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let from = match opt_param(req, "from", parse_time) {
        Ok(t) => t.unwrap_or(Timestamp::ZERO),
        Err(resp) => return resp,
    };
    let store_guard = store.read();
    let to = match opt_param(req, "to", parse_time) {
        Ok(t) => t.unwrap_or_else(|| store_guard.latest_time()),
        Err(resp) => return resp,
    };
    let limit = match opt_param(req, "limit", |s| s.parse::<usize>().ok()) {
        Ok(l) => l.unwrap_or(DEFAULT_UPDATE_LIMIT),
        Err(resp) => return resp,
    };
    let q = UpdateQuery {
        prefix,
        join,
        vp,
        from,
        to,
        limit,
    };
    json_ok(QueryEngine::updates(&store_guard, &q))
}

fn origin(req: &Request, store: &SharedStore) -> Response {
    let asn = match opt_param(req, "asn", |s| s.parse::<Asn>().ok()) {
        Ok(Some(a)) => a,
        Ok(None) => return Response::error(400, "missing asn parameter"),
        Err(resp) => return resp,
    };
    json_ok(QueryEngine::origin(&store.read(), asn))
}

/// Encodes updates as MRT BGP4MP_MESSAGE_AS4 bytes (the archive format).
fn encode_updates_mrt(updates: &[BgpUpdate]) -> std::io::Result<Vec<u8>> {
    let mut w = MrtWriter::new(Vec::new());
    for u in updates {
        let msg = UpdateMessage::from_domain(u)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            .without_path_ids();
        // record addresses follow the route's family: v6 updates export as
        // AFI-2 BGP4MP records, exactly like the collector's archive path
        let (peer_ip, local_ip) = if u.prefix.is_ipv6() {
            (
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 1)),
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 0xfe)),
            )
        } else {
            (
                IpAddr::V4(Ipv4Addr::new(10, 255, 0, 1)),
                IpAddr::V4(Ipv4Addr::new(10, 255, 0, 254)),
            )
        };
        w.write_record(&MrtRecord {
            time: u.time,
            peer_as: u.vp.asn,
            local_as: Asn(65535),
            peer_ip,
            local_ip,
            message: BgpMessage::Update(msg),
        })?;
    }
    w.into_inner()
}

fn mrt_updates(req: &Request, store: &SharedStore) -> Response {
    let vp = match opt_param(req, "vp", parse_vp) {
        Ok(Some(v)) => v,
        Ok(None) => return Response::error(400, "missing vp parameter"),
        Err(resp) => return resp,
    };
    let store = store.read();
    let Some(updates) = store.lane_updates(vp) else {
        return Response::error(404, &format!("unknown vp {vp}"));
    };
    match encode_updates_mrt(&updates) {
        Ok(bytes) => Response::octets(bytes),
        Err(e) => Response::error(400, &format!("mrt encode failed: {e}")),
    }
}

fn mrt_rib(req: &Request, store: &SharedStore) -> Response {
    let store = store.read();
    let at = match opt_param(req, "at", parse_time) {
        Ok(t) => t.unwrap_or_else(|| store.latest_time()),
        Err(resp) => return resp,
    };
    let ribs = store.ribs_at(at);
    let dump = TableDump::from_ribs(ribs.iter());
    let mut bytes = Vec::new();
    match dump.write_mrt(&mut bytes, at) {
        Ok(_) => Response::octets(bytes),
        Err(e) => Response::error(400, &format!("mrt encode failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::UpdateBuilder;
    use bgp_wire::MrtReader;

    fn filled_store() -> SharedStore {
        let mut s = RouteStore::default();
        for (i, (vp, pfx)) in [(65001u32, "10.0.0.0/8"), (65002, "10.1.0.0/16")]
            .iter()
            .enumerate()
        {
            s.ingest(
                UpdateBuilder::announce(VpId::from_asn(Asn(*vp)), pfx.parse().unwrap())
                    .at(Timestamp::from_secs(i as u64 + 1))
                    .path([*vp, 2, 3])
                    .build(),
            );
        }
        Arc::new(RwLock::new(s))
    }

    fn get(store: &SharedStore, target: &str) -> Response {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let params = query
            .split('&')
            .filter(|s| !s.is_empty())
            .map(|p| {
                let (k, v) = p.split_once('=').unwrap_or((p, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        let req = Request {
            method: "GET".to_string(),
            path: path.to_string(),
            params,
            headers: Vec::new(),
        };
        route(&req, store)
    }

    #[test]
    fn json_endpoints_respond() {
        let store = filled_store();
        for target in [
            "/health",
            "/store/stats",
            "/vps",
            "/routes?prefix=10.0.0.0/8&match=exact",
            "/routes?prefix=10.1.2.3/32&match=lpm",
            "/rib?vp=65001",
            "/updates?from=0&to=99999999",
            "/origin?asn=3",
        ] {
            let resp = get(&store, target);
            assert_eq!(resp.status, 200, "{target}");
            let body = String::from_utf8(resp.body).unwrap();
            assert!(body.starts_with('{'), "{target}: {body}");
        }
    }

    #[test]
    fn bad_parameters_are_400() {
        let store = filled_store();
        for target in [
            "/routes",
            "/routes?prefix=not-a-prefix",
            "/routes?prefix=10.0.0.0/8&match=bogus",
            "/routes?prefix=10.0.0.0/8&at=yesterday",
            "/rib",
            "/updates?join=sideways",
            "/origin",
        ] {
            assert_eq!(get(&store, target).status, 400, "{target}");
        }
        assert_eq!(get(&store, "/nope").status, 404);
        assert_eq!(get(&store, "/rib?vp=99").status, 404);
    }

    #[test]
    fn mrt_updates_roundtrip() {
        let store = filled_store();
        let resp = get(&store, "/mrt/updates?vp=65001");
        assert_eq!(resp.status, 200);
        let mut r = MrtReader::new(&resp.body[..]);
        let mut n = 0;
        while let Some(rec) = r.next_record().unwrap() {
            assert_eq!(rec.peer_as, Asn(65001));
            n += 1;
        }
        assert_eq!(n, 1);
    }

    #[test]
    fn mrt_rib_parses_as_table_dump() {
        let store = filled_store();
        let resp = get(&store, "/mrt/rib");
        assert_eq!(resp.status, 200);
        let dump = TableDump::read_mrt(&resp.body).unwrap();
        let ribs = dump.to_ribs();
        assert_eq!(ribs.len(), 2);
    }

    #[test]
    fn dual_stack_endpoints_serve_v6() {
        let mut s = RouteStore::default();
        let vp1 = VpId::from_asn(Asn(65001));
        s.ingest(
            UpdateBuilder::announce(vp1, "10.0.0.0/8".parse().unwrap())
                .at(Timestamp::from_secs(1))
                .path([65001, 2, 3])
                .build(),
        );
        s.ingest(
            UpdateBuilder::announce(vp1, "2001:db8::/32".parse().unwrap())
                .at(Timestamp::from_secs(2))
                .path([65001, 2, 6])
                .path_id(7)
                .build(),
        );
        let store: SharedStore = Arc::new(RwLock::new(s));

        // JSON route lookups answer for v6 prefixes
        let resp = get(&store, "/routes?prefix=2001:db8::/32&match=exact");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("2001:db8::/32"), "{body}");

        // /mrt/updates carries the v6 update as an AFI-2 BGP4MP record
        let resp = get(&store, "/mrt/updates?vp=65001");
        assert_eq!(resp.status, 200);
        let mut r = MrtReader::new(&resp.body[..]);
        let (mut n, mut v6) = (0, 0);
        while let Some(rec) = r.next_record().unwrap() {
            if rec.peer_ip.is_ipv6() {
                v6 += 1;
            }
            n += 1;
        }
        assert_eq!((n, v6), (2, 1));

        // /mrt/rib exports the v6 route in a RIB_IPV6_UNICAST entry
        let resp = get(&store, "/mrt/rib");
        assert_eq!(resp.status, 200);
        let dump = TableDump::read_mrt(&resp.body).unwrap();
        let ribs = dump.to_ribs();
        let rib = ribs.get(&vp1).expect("vp present");
        assert!(rib.iter().any(|(p, _)| p.is_ipv6()));
        assert!(rib.iter().any(|(p, _)| !p.is_ipv6()));
    }

    #[test]
    fn filters_endpoint_serves_live_state() {
        use gill_core::FilterSet;
        let store = filled_store();
        let drop =
            UpdateBuilder::announce(VpId::from_asn(Asn(65002)), "10.9.0.0/16".parse().unwrap())
                .path([65002, 2])
                .build();
        let fs = FilterSet::generate(
            [VpId::from_asn(Asn(65001)), VpId::new(Asn(65003), 2)],
            [&drop],
            FilterGranularity::VpPrefix,
        );
        let handle = FilterHandle::new(&fs);
        let getf = |target: &str| {
            let (path, query) = target.split_once('?').unwrap_or((target, ""));
            let params = query
                .split('&')
                .filter(|s| !s.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap_or((p, ""));
                    (k.to_string(), v.to_string())
                })
                .collect();
            let req = Request {
                method: "GET".to_string(),
                path: path.to_string(),
                params,
                headers: Vec::new(),
            };
            route_with(&req, &store, Some(&handle))
        };

        let resp = getf("/filters");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"epoch\":0"), "{body}");
        assert!(body.contains("\"granularity\":\"vp-prefix\""), "{body}");
        assert!(body.contains("\"rules\":1"), "{body}");
        assert!(body.contains("\"65001\""), "{body}");
        assert!(body.contains("\"65003#2\""), "{body}");

        // format=text serves the §9 file byte-for-byte
        let resp = getf("/filters?format=text");
        assert_eq!(resp.status, 200);
        assert_eq!(String::from_utf8(resp.body).unwrap(), fs.to_text().unwrap());

        // a published refresh is visible on the next request
        handle.install(&FilterSet::default());
        let body = String::from_utf8(getf("/filters").body).unwrap();
        assert!(body.contains("\"epoch\":1"), "{body}");
        assert!(body.contains("\"rules\":0"), "{body}");

        assert_eq!(getf("/filters?format=xml").status, 400);
        // without attached state the endpoint reports, not 404-unknown
        let no_state = get(&store, "/filters");
        assert_eq!(no_state.status, 404);
        assert!(String::from_utf8(no_state.body)
            .unwrap()
            .contains("no filter state"));
    }

    #[test]
    fn vp_parsing_accepts_all_forms() {
        assert_eq!(parse_vp("65001"), Some(VpId::from_asn(Asn(65001))));
        assert_eq!(parse_vp("AS65001"), Some(VpId::from_asn(Asn(65001))));
        assert_eq!(parse_vp("65001#2"), Some(VpId::new(Asn(65001), 2)));
        assert_eq!(parse_vp("nope"), None);
        assert_eq!(parse_vp("1#x"), None);
    }

    #[test]
    fn served_end_to_end_over_tcp() {
        use std::io::{Read as _, Write as _};
        let store = filled_store();
        let mut srv = serve("127.0.0.1:0", ServerConfig::default(), store).unwrap();
        let mut sock = std::net::TcpStream::connect(srv.local_addr()).unwrap();
        write!(sock, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = String::new();
        sock.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200"));
        assert!(buf.contains("\"status\":\"ok\""));
        srv.stop();
    }
}
