//! A minimal blocking HTTP/1.1 server.
//!
//! No async runtime exists in the offline dependency set, so the serving
//! layer is a classic bounded thread pool over `std::net::TcpListener`:
//! the acceptor pushes connections into a bounded crossbeam channel and a
//! fixed set of workers parse one request each (GET only, headers ignored
//! beyond framing) under a per-connection read deadline, so a stalled
//! client can never pin a worker. Connections are `Connection: close` —
//! looking-glass queries are one-shot, and closing keeps the parser to a
//! single request per socket.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Pending-connection queue bound (beyond it, connections are refused
    /// with 503 by the acceptor itself).
    pub backlog: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Maximum request head (request line + headers) size in bytes.
    pub max_head_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_head_bytes: 8 * 1024,
        }
    }
}

/// A parsed request: method, path, and decoded query parameters.
#[derive(Clone, Debug)]
pub struct Request {
    /// The HTTP method (`GET` for every supported endpoint).
    pub method: String,
    /// The path component, percent-decoded.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub params: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A response the handler returns.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A `200 OK` plain-text response (the §9 published filter format).
    pub fn text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// A binary (MRT download) response.
    pub fn octets(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type: "application/octet-stream",
            body,
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = crate::json::Json::obj([("error", crate::json::Json::str(msg))])
            .encode()
            .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Serving counters (exposed for tests and shutdown logging).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicUsize,
    /// Requests answered (any status).
    pub served: AtomicUsize,
    /// Connections refused because the queue was full.
    pub refused: AtomicUsize,
    /// Connections dropped on read timeout / parse failure.
    pub bad_requests: AtomicUsize,
}

/// The running server: owns the acceptor and worker threads.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 = ephemeral) and starts serving; `handler`
    /// maps a parsed request to a response and must be `Send + Sync`
    /// (workers share it).
    pub fn start<H>(addr: &str, cfg: ServerConfig, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let handler = Arc::new(handler);
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(cfg.backlog);

        let mut threads = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let rx = rx.clone();
            let stop = stop.clone();
            let stats = stats.clone();
            let handler = handler.clone();
            let cfg = cfg.clone();
            threads.push(std::thread::spawn(move || loop {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(stream) => serve_connection(stream, &cfg, &*handler, &stats),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }));
        }

        {
            let stop = stop.clone();
            let stats = stats.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(mut stream)) => {
                                    stats.refused.fetch_add(1, Ordering::Relaxed);
                                    let _ = stream.write_all(
                                        b"HTTP/1.1 503 Service Unavailable\r\n\
                                          Content-Length: 0\r\nConnection: close\r\n\r\n",
                                    );
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(HttpServer {
            addr: local,
            stop,
            stats,
            threads,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drains workers, joins all threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    cfg: &ServerConfig,
    handler: &(dyn Fn(&Request) -> Response + Send + Sync),
    stats: &ServerStats,
) {
    stream.set_read_timeout(Some(cfg.read_timeout)).ok();
    stream.set_write_timeout(Some(cfg.write_timeout)).ok();
    let response = match read_head(&mut stream, cfg.max_head_bytes) {
        Ok(head) => match parse_request(&head) {
            Some(req) if req.method == "GET" => handler(&req),
            Some(_) => Response::error(405, "only GET is supported"),
            None => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                Response::error(400, "malformed request")
            }
        },
        Err(HeadError::TooLarge) => {
            stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::error(413, "request head too large")
        }
        Err(HeadError::TimedOut) => {
            stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::error(408, "read deadline exceeded")
        }
        Err(HeadError::Io) => {
            stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            return; // peer vanished; nothing to write to
        }
    };
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream
        .write_all(header.as_bytes())
        .and_then(|_| stream.write_all(&response.body));
    stats.served.fetch_add(1, Ordering::Relaxed);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

enum HeadError {
    TooLarge,
    TimedOut,
    Io,
}

/// Reads until the `\r\n\r\n` head terminator (bounded).
fn read_head(stream: &mut TcpStream, max: usize) -> Result<Vec<u8>, HeadError> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HeadError::Io),
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.len() > max {
                    return Err(HeadError::TooLarge);
                }
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    return Ok(head);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(HeadError::TimedOut)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(HeadError::Io),
        }
    }
}

/// Parses the request line of `head`: `GET /path?query HTTP/1.1`.
fn parse_request(head: &[u8]) -> Option<Request> {
    let head = std::str::from_utf8(head).ok()?;
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return None;
    }
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw)?;
    let mut params = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            params.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Some(Request {
        method,
        path,
        params,
    })
}

/// Percent-decoding with `+` as space (query-string convention).
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head_end = buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("complete head");
        let head = std::str::from_utf8(&buf[..head_end]).unwrap();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        (status, buf[head_end + 4..].to_vec())
    }

    fn echo_server() -> HttpServer {
        HttpServer::start("127.0.0.1:0", ServerConfig::default(), |req| {
            if req.path == "/missing" {
                return Response::error(404, "nope");
            }
            Response::json(format!(
                "{{\"path\":\"{}\",\"q\":\"{}\"}}",
                req.path,
                req.param("q").unwrap_or("")
            ))
        })
        .unwrap()
    }

    #[test]
    fn serves_parsed_requests() {
        let mut srv = echo_server();
        let (code, body) = get(srv.local_addr(), "/routes?q=10.0.0.0%2F8");
        assert_eq!(code, 200);
        assert_eq!(body, b"{\"path\":\"/routes\",\"q\":\"10.0.0.0/8\"}");
        let (code, _) = get(srv.local_addr(), "/missing");
        assert_eq!(code, 404);
        srv.stop();
        assert!(srv.stats().served.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let mut srv = echo_server();
        let addr = srv.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf)
            .unwrap()
            .starts_with("HTTP/1.1 405"));

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"complete garbage\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf)
            .unwrap()
            .starts_with("HTTP/1.1 400"));
        srv.stop();
    }

    #[test]
    fn read_deadline_times_out_stalled_clients() {
        let cfg = ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let mut srv =
            HttpServer::start("127.0.0.1:0", cfg, |_| Response::json("{}".to_string())).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        // send half a request and stall
        s.write_all(b"GET / HT").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(
            std::str::from_utf8(&buf)
                .unwrap()
                .starts_with("HTTP/1.1 408"),
            "stalled client must get 408, got {:?}",
            std::str::from_utf8(&buf)
        );
        srv.stop();
        assert_eq!(srv.stats().bad_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_requests_across_workers() {
        let mut srv = echo_server();
        let addr = srv.local_addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let (code, body) = get(addr, &format!("/p{i}?q=v{i}"));
                    assert_eq!(code, 200);
                    assert!(!body.is_empty());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        srv.stop();
        assert_eq!(srv.stats().served.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c").unwrap(), "a/b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
    }
}
