//! A minimal blocking HTTP/1.1 server.
//!
//! No async runtime exists in the offline dependency set, so the serving
//! layer is a classic bounded thread pool over `std::net::TcpListener`:
//! the acceptor pushes connections into a bounded crossbeam channel and a
//! fixed set of workers parse requests (GET only) under a per-connection
//! read deadline, so a stalled client can never pin a worker forever.
//!
//! Connections are **keep-alive**: a worker serves up to
//! [`ServerConfig::max_requests_per_conn`] sequential requests per socket
//! (pipelined requests are handled — bytes read past one request's head
//! carry over to the next parse) before answering `Connection: close`.
//! Clients that go idle between requests are closed silently at the read
//! deadline; clients that stall **mid-request** still get `408`.
//!
//! Handlers that need the raw socket — the `/stream/*` endpoints — return
//! [`Handled::Takeover`]: the connection leaves the worker pool onto a
//! dedicated streamer thread (long-lived streams must not occupy the
//! bounded pool). Takeover closures receive the server's stop flag and
//! must poll it; [`HttpServer::stop`] joins streamer threads too.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Pending-connection queue bound (beyond it, connections are refused
    /// with 503 by the acceptor itself).
    pub backlog: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Maximum request head (request line + headers) size in bytes.
    pub max_head_bytes: usize,
    /// Requests served on one keep-alive connection before the server
    /// forces `Connection: close` (bounds how long one client can hold a
    /// pool worker).
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_head_bytes: 8 * 1024,
            max_requests_per_conn: 32,
        }
    }
}

/// A parsed request: method, path, headers, and decoded query parameters.
#[derive(Clone, Debug)]
pub struct Request {
    /// The HTTP method (`GET` for every supported endpoint).
    pub method: String,
    /// The path component, percent-decoded.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub params: Vec<(String, String)>,
    /// Headers in order of appearance; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header (`name` is matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response the handler returns.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A `200 OK` plain-text response (the §9 published filter format).
    pub fn text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// A binary (MRT download) response.
    pub fn octets(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type: "application/octet-stream",
            body,
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = crate::json::Json::obj([("error", crate::json::Json::str(msg))])
            .encode()
            .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

/// What a raw handler did with a request.
pub enum Handled {
    /// An ordinary response; the worker writes it and (keep-alive
    /// permitting) parses the next request.
    Response(Response),
    /// The handler takes the socket: the closure runs on a **dedicated
    /// streamer thread** outside the bounded worker pool, receives the
    /// stream plus the server's stop flag, and must poll the flag so
    /// [`HttpServer::stop`] can join it. It writes its own response bytes
    /// (status line, headers, body) from scratch.
    Takeover(Box<dyn FnOnce(TcpStream, Arc<AtomicBool>) + Send>),
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Serving counters (exposed for tests and shutdown logging).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicUsize,
    /// Requests answered (any status).
    pub served: AtomicUsize,
    /// Connections refused because the queue was full.
    pub refused: AtomicUsize,
    /// Connections dropped on read timeout / parse failure.
    pub bad_requests: AtomicUsize,
    /// Connections handed off to streamer threads.
    pub takeovers: AtomicUsize,
}

/// The running server: owns the acceptor, worker, and streamer threads.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    threads: Vec<std::thread::JoinHandle<()>>,
    streamers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 = ephemeral) and starts serving; `handler`
    /// maps a parsed request to a response and must be `Send + Sync`
    /// (workers share it).
    pub fn start<H>(addr: &str, cfg: ServerConfig, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        HttpServer::start_with(addr, cfg, move |req| Handled::Response(handler(req)))
    }

    /// Like [`HttpServer::start`] but the handler may also claim the raw
    /// socket with [`Handled::Takeover`] (streaming endpoints).
    pub fn start_with<H>(addr: &str, cfg: ServerConfig, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Handled + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let handler = Arc::new(handler);
        let streamers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(cfg.backlog);

        let mut threads = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let rx = rx.clone();
            let stop = stop.clone();
            let stats = stats.clone();
            let handler = handler.clone();
            let cfg = cfg.clone();
            let streamers = streamers.clone();
            threads.push(std::thread::spawn(move || loop {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(stream) => {
                        serve_connection(stream, &cfg, &*handler, &stats, &streamers, &stop)
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }));
        }

        {
            let stop = stop.clone();
            let stats = stats.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(mut stream)) => {
                                    stats.refused.fetch_add(1, Ordering::Relaxed);
                                    let _ = stream.write_all(
                                        b"HTTP/1.1 503 Service Unavailable\r\n\
                                          Content-Length: 0\r\nConnection: close\r\n\r\n",
                                    );
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(HttpServer {
            addr: local,
            stop,
            stats,
            threads,
            streamers,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drains workers, joins all threads (streamers
    /// included — takeover closures observe the stop flag and exit).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<_> = self
            .streamers
            .lock()
            .map(|mut v| v.drain(..).collect())
            .unwrap_or_default();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    cfg: &ServerConfig,
    handler: &(dyn Fn(&Request) -> Handled + Send + Sync),
    stats: &ServerStats,
    streamers: &Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: &Arc<AtomicBool>,
) {
    stream.set_read_timeout(Some(cfg.read_timeout)).ok();
    stream.set_write_timeout(Some(cfg.write_timeout)).ok();
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut served_here = 0usize;
    loop {
        let head = match next_head(&mut stream, &mut buf, cfg.max_head_bytes) {
            Ok(head) => head,
            Err(HeadError::Closed) => return, // clean EOF between requests
            Err(HeadError::TooLarge) => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                finish(
                    &mut stream,
                    Response::error(413, "request head too large"),
                    stats,
                );
                return;
            }
            Err(HeadError::TimedOut) => {
                if served_here > 0 && buf.is_empty() {
                    // idle keep-alive connection: close silently
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                finish(
                    &mut stream,
                    Response::error(408, "read deadline exceeded"),
                    stats,
                );
                return;
            }
            Err(HeadError::Io) => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                return; // peer vanished; nothing to write to
            }
        };
        let req = match parse_request(&head) {
            Some(req) if req.method == "GET" => req,
            Some(_) => {
                finish(
                    &mut stream,
                    Response::error(405, "only GET is supported"),
                    stats,
                );
                return;
            }
            None => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                finish(
                    &mut stream,
                    Response::error(400, "malformed request"),
                    stats,
                );
                return;
            }
        };
        served_here += 1;
        let keep_alive = served_here < cfg.max_requests_per_conn
            && !req
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        match handler(&req) {
            Handled::Response(response) => {
                let ok = write_response(&mut stream, &response, keep_alive);
                stats.served.fetch_add(1, Ordering::Relaxed);
                if !ok || !keep_alive {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
            Handled::Takeover(run) => {
                stats.served.fetch_add(1, Ordering::Relaxed);
                stats.takeovers.fetch_add(1, Ordering::Relaxed);
                let stop = stop.clone();
                let handle = std::thread::spawn(move || run(stream, stop));
                if let Ok(mut v) = streamers.lock() {
                    v.push(handle);
                }
                return;
            }
        }
    }
}

fn finish(stream: &mut TcpStream, response: Response, stats: &ServerStats) {
    let _ = write_response(stream, &response, false);
    stats.served.fetch_add(1, Ordering::Relaxed);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream
        .write_all(header.as_bytes())
        .and_then(|_| stream.write_all(&response.body))
        .is_ok()
}

enum HeadError {
    TooLarge,
    TimedOut,
    Io,
    /// Clean EOF with no buffered bytes (keep-alive peer went away).
    Closed,
}

/// Extracts the next request head (through `\r\n\r\n`) from `buf`,
/// reading more from `stream` as needed. Bytes past the terminator —
/// pipelined requests — stay in `buf` for the next call.
fn next_head(stream: &mut TcpStream, buf: &mut Vec<u8>, max: usize) -> Result<Vec<u8>, HeadError> {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let rest = buf.split_off(pos + 4);
            let head = std::mem::replace(buf, rest);
            return Ok(head);
        }
        if buf.len() > max {
            return Err(HeadError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    HeadError::Closed
                } else {
                    HeadError::Io
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(HeadError::TimedOut)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(HeadError::Io),
        }
    }
}

/// Parses a request head: request line `GET /path?query HTTP/1.1` plus
/// header lines (names lowercased).
fn parse_request(head: &[u8]) -> Option<Request> {
    let head = std::str::from_utf8(head).ok()?;
    let mut lines = head.lines();
    let line = lines.next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return None;
    }
    let mut headers = Vec::new();
    for l in lines {
        if l.is_empty() {
            break;
        }
        let (name, value) = l.split_once(':')?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw)?;
    let mut params = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            params.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Some(Request {
        method,
        path,
        params,
        headers,
    })
}

/// Percent-decoding with `+` as space (query-string convention).
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot request: sends `Connection: close` so the server releases
    /// the worker immediately (one-shot clients should do the same).
    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head_end = buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("complete head");
        let head = std::str::from_utf8(&buf[..head_end]).unwrap();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        (status, buf[head_end + 4..].to_vec())
    }

    /// Reads exactly one response off a keep-alive socket (parses
    /// Content-Length instead of waiting for EOF). `carry` holds bytes
    /// read past this response — pipelined follow-ups — for the next call.
    fn read_response(s: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, Vec<u8>, bool) {
        let mut buf = std::mem::take(carry);
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&buf[..head_end]).unwrap().to_string();
        let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        let keep_alive = head
            .lines()
            .any(|l| l.eq_ignore_ascii_case("connection: keep-alive"));
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response body");
            body.extend_from_slice(&chunk[..n]);
        }
        *carry = body.split_off(content_length);
        (status, body, keep_alive)
    }

    fn echo_server() -> HttpServer {
        HttpServer::start("127.0.0.1:0", ServerConfig::default(), |req| {
            if req.path == "/missing" {
                return Response::error(404, "nope");
            }
            Response::json(format!(
                "{{\"path\":\"{}\",\"q\":\"{}\"}}",
                req.path,
                req.param("q").unwrap_or("")
            ))
        })
        .unwrap()
    }

    #[test]
    fn serves_parsed_requests() {
        let mut srv = echo_server();
        let (code, body) = get(srv.local_addr(), "/routes?q=10.0.0.0%2F8");
        assert_eq!(code, 200);
        assert_eq!(body, b"{\"path\":\"/routes\",\"q\":\"10.0.0.0/8\"}");
        let (code, _) = get(srv.local_addr(), "/missing");
        assert_eq!(code, 404);
        srv.stop();
        assert!(srv.stats().served.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let mut srv = echo_server();
        let addr = srv.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf)
            .unwrap()
            .starts_with("HTTP/1.1 405"));

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"complete garbage\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf)
            .unwrap()
            .starts_with("HTTP/1.1 400"));
        srv.stop();
    }

    #[test]
    fn read_deadline_times_out_stalled_clients() {
        let cfg = ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let mut srv =
            HttpServer::start("127.0.0.1:0", cfg, |_| Response::json("{}".to_string())).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        // send half a request and stall
        s.write_all(b"GET / HT").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(
            std::str::from_utf8(&buf)
                .unwrap()
                .starts_with("HTTP/1.1 408"),
            "stalled client must get 408, got {:?}",
            std::str::from_utf8(&buf)
        );
        srv.stop();
        assert_eq!(srv.stats().bad_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let mut srv = echo_server();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        let mut carry = Vec::new();
        for i in 0..3 {
            write!(s, "GET /r{i}?q=v{i} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let (code, body, keep_alive) = read_response(&mut s, &mut carry);
            assert_eq!(code, 200);
            assert_eq!(
                body,
                format!("{{\"path\":\"/r{i}\",\"q\":\"v{i}\"}}").into_bytes()
            );
            assert!(keep_alive, "request {i} should keep the connection open");
        }
        srv.stop();
        assert_eq!(srv.stats().served.load(Ordering::Relaxed), 3);
        assert_eq!(
            srv.stats().accepted.load(Ordering::Relaxed),
            1,
            "all three requests used one connection"
        );
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let mut srv = echo_server();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        // both requests in one write; second asks to close
        s.write_all(
            b"GET /a HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /b HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut carry = Vec::new();
        let (code_a, body_a, _) = read_response(&mut s, &mut carry);
        let (code_b, body_b, keep_b) = read_response(&mut s, &mut carry);
        assert_eq!((code_a, code_b), (200, 200));
        assert_eq!(body_a, b"{\"path\":\"/a\",\"q\":\"\"}");
        assert_eq!(body_b, b"{\"path\":\"/b\",\"q\":\"\"}");
        assert!(!keep_b, "Connection: close must be honored");
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection closed after second response");
        srv.stop();
        assert_eq!(srv.stats().served.load(Ordering::Relaxed), 2);
        assert_eq!(srv.stats().accepted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn request_cap_forces_connection_close() {
        let cfg = ServerConfig {
            max_requests_per_conn: 2,
            ..ServerConfig::default()
        };
        let mut srv =
            HttpServer::start("127.0.0.1:0", cfg, |_| Response::json("{}".to_string())).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "GET /1 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut carry = Vec::new();
        let (_, _, keep1) = read_response(&mut s, &mut carry);
        assert!(keep1);
        write!(s, "GET /2 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (_, _, keep2) = read_response(&mut s, &mut carry);
        assert!(!keep2, "second request hits the per-connection cap");
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        srv.stop();
    }

    #[test]
    fn idle_keep_alive_connection_closes_silently() {
        let cfg = ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let mut srv =
            HttpServer::start("127.0.0.1:0", cfg, |_| Response::json("{}".to_string())).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "GET / HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (code, _, keep_alive) = read_response(&mut s, &mut Vec::new());
        assert_eq!(code, 200);
        assert!(keep_alive);
        // go idle; the server must close without writing a 408
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "idle close writes nothing, got {rest:?}");
        srv.stop();
        assert_eq!(
            srv.stats().bad_requests.load(Ordering::Relaxed),
            0,
            "idle keep-alive close is not a bad request"
        );
    }

    #[test]
    fn takeover_runs_on_streamer_thread_and_joins_on_stop() {
        let cfg = ServerConfig::default();
        let mut srv = HttpServer::start_with("127.0.0.1:0", cfg, |req| {
            if req.path == "/stream" {
                Handled::Takeover(Box::new(|mut stream: TcpStream, stop| {
                    let _ = stream.write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\
                          Connection: close\r\nContent-Length: 2\r\n\r\nok",
                    );
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    // hold the thread until the server stops to prove
                    // stop() joins streamers
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }))
            } else {
                Handled::Response(Response::json("{}".to_string()))
            }
        })
        .unwrap();
        let (code, body) = get(srv.local_addr(), "/stream");
        assert_eq!(code, 200);
        assert_eq!(body, b"ok");
        // workers stay free while the streamer holds its thread
        let (code, _) = get(srv.local_addr(), "/other");
        assert_eq!(code, 200);
        assert_eq!(srv.stats().takeovers.load(Ordering::Relaxed), 1);
        srv.stop();
    }

    #[test]
    fn concurrent_requests_across_workers() {
        let mut srv = echo_server();
        let addr = srv.local_addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let (code, body) = get(addr, &format!("/p{i}?q=v{i}"));
                    assert_eq!(code, 200);
                    assert!(!body.is_empty());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        srv.stop();
        assert_eq!(srv.stats().served.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c").unwrap(), "a/b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
    }

    #[test]
    fn headers_are_parsed_case_insensitively() {
        let head = b"GET /x HTTP/1.1\r\nHost: h\r\nX-Thing:  spaced  \r\n\r\n";
        let req = parse_request(head).unwrap();
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("X-THING"), Some("spaced"));
        assert_eq!(req.header("absent"), None);
    }
}
