//! Refcounted, dedup-hashed interning arenas for BGP attributes.
//!
//! Real VP streams are massively redundant: the same AS paths, community
//! sets and implicit-withdrawal sets recur across updates and across VPs.
//! The interned [`RouteStore`](crate::RouteStore) exploits that by storing
//! each distinct attribute value exactly once, in an append-only arena, and
//! keeping `u32` ids in its per-update records. Every arena fronts its
//! slots with a dedup hash table (fingerprint → candidate ids, resolved by
//! exact comparison), so interning is one hash + one equality check in the
//! common hit case, and values round-trip exactly — the arena hands back
//! the very bytes that went in.
//!
//! Id `0` is reserved at construction for the empty value in every arena,
//! matching the `EMPTY` constants on the id types in `bgp_types::internid`.

use bgp_types::{
    AsPath, CommSetId, Community, Link, LinkSetId, PathId, Prefix, PrefixId, PrefixTrie,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

fn fingerprint<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// One interned AS path, with its link set precomputed so implicit
/// withdrawal derivation is a sorted-slice difference instead of a
/// `BTreeSet` build per update.
struct PathSlot {
    path: AsPath,
    /// `path.links()` materialized: sorted, deduplicated, self-loops
    /// skipped — exactly what `AsPath::links` yields.
    links: Box<[Link]>,
    refs: u64,
}

/// Dedup arena for AS paths.
pub struct PathArena {
    slots: Vec<PathSlot>,
    dedup: HashMap<u64, Vec<u32>>,
}

impl PathArena {
    fn new() -> Self {
        let mut a = PathArena {
            slots: Vec::new(),
            dedup: HashMap::new(),
        };
        let id = a.intern(&AsPath::empty());
        debug_assert_eq!(id, PathId::EMPTY);
        a
    }

    /// Interns `path`, returning the id of the canonical copy (allocating a
    /// slot only on first sight) and bumping its refcount.
    pub fn intern(&mut self, path: &AsPath) -> PathId {
        let fp = fingerprint(path);
        let candidates = self.dedup.entry(fp).or_default();
        for &id in candidates.iter() {
            if self.slots[id as usize].path == *path {
                self.slots[id as usize].refs += 1;
                return PathId(id);
            }
        }
        let id = self.slots.len() as u32;
        let links: Box<[Link]> = path.links().into_iter().collect();
        self.slots.push(PathSlot {
            path: path.clone(),
            links,
            refs: 1,
        });
        candidates.push(id);
        PathId(id)
    }

    /// The interned path (exact round-trip of what was interned).
    pub fn get(&self, id: PathId) -> &AsPath {
        &self.slots[id.0 as usize].path
    }

    /// The path's link set, sorted ascending (what `AsPath::links` yields).
    pub fn links(&self, id: PathId) -> &[Link] {
        &self.slots[id.0 as usize].links
    }

    /// Bumps the refcount of an already-interned path.
    pub fn bump(&mut self, id: PathId) {
        self.slots[id.0 as usize].refs += 1;
    }

    /// Number of distinct paths interned (including the empty path).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total references handed out across all slots.
    pub fn refs(&self) -> u64 {
        self.slots.iter().map(|s| s.refs).sum()
    }

    /// Approximate heap bytes held by the arena.
    pub fn bytes(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| 48 + s.path.hops().len() as u64 * 4 + s.links.len() as u64 * 8)
            .sum()
    }
}

/// Dedup arena for sorted sets of `Copy + Ord` values (community sets and
/// link sets). Stored as sorted boxed slices — the sorted order is the
/// `BTreeSet` iteration order, so reconstruction into a `BTreeSet` is an
/// exact round-trip.
pub struct SetArena<T> {
    slots: Vec<(Box<[T]>, u64)>,
    dedup: HashMap<u64, Vec<u32>>,
}

impl<T: Copy + Ord + Hash> SetArena<T> {
    fn new() -> Self {
        let mut a = SetArena {
            slots: Vec::new(),
            dedup: HashMap::new(),
        };
        a.intern_sorted(&[]);
        a
    }

    /// Interns a sorted, deduplicated slice; returns the raw arena id.
    ///
    /// Callers must pass sorted input (BTreeSet iteration order or a
    /// sorted-slice set difference) — debug builds assert it.
    pub fn intern_sorted(&mut self, items: &[T]) -> u32 {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "input must be sorted+dedup"
        );
        let fp = fingerprint(items);
        let candidates = self.dedup.entry(fp).or_default();
        for &id in candidates.iter() {
            if &*self.slots[id as usize].0 == items {
                self.slots[id as usize].1 += 1;
                return id;
            }
        }
        let id = self.slots.len() as u32;
        self.slots.push((items.to_vec().into_boxed_slice(), 1));
        candidates.push(id);
        id
    }

    /// The interned set, sorted ascending.
    pub fn get(&self, id: u32) -> &[T] {
        &self.slots[id as usize].0
    }

    /// Bumps the refcount of an already-interned set.
    pub fn bump(&mut self, id: u32) {
        self.slots[id as usize].1 += 1;
    }

    /// Number of distinct sets interned (including the empty set).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total references handed out across all slots.
    pub fn refs(&self) -> u64 {
        self.slots.iter().map(|s| s.1).sum()
    }

    /// Approximate heap bytes held by the arena.
    pub fn bytes(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| 40 + (s.0.len() * std::mem::size_of::<T>()) as u64)
            .sum()
    }
}

/// Dedup table for prefixes, with a side trie mapping every known prefix to
/// its id — the one prefix trie the whole store shares (the reference store
/// pays for one trie *per shard*).
pub struct PrefixArena {
    prefixes: Vec<Prefix>,
    ids: HashMap<Prefix, u32>,
    trie: PrefixTrie<u32>,
}

impl PrefixArena {
    fn new() -> Self {
        PrefixArena {
            prefixes: Vec::new(),
            ids: HashMap::new(),
            trie: PrefixTrie::new(),
        }
    }

    /// Interns `p`, allocating an id on first sight.
    pub fn intern(&mut self, p: Prefix) -> PrefixId {
        if let Some(&id) = self.ids.get(&p) {
            return PrefixId(id);
        }
        let id = self.prefixes.len() as u32;
        self.prefixes.push(p);
        self.ids.insert(p, id);
        self.trie.insert(p, id);
        PrefixId(id)
    }

    /// The prefix for an id.
    pub fn get(&self, id: PrefixId) -> Prefix {
        self.prefixes[id.0 as usize]
    }

    /// The id of a known prefix, if interned.
    pub fn lookup(&self, p: &Prefix) -> Option<PrefixId> {
        self.ids.get(p).map(|&id| PrefixId(id))
    }

    /// The shared prefix → id trie (covered-join enumeration).
    pub fn trie(&self) -> &PrefixTrie<u32> {
        &self.trie
    }

    /// Number of distinct prefixes seen.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Approximate heap bytes (table + the shared trie's per-bit nodes).
    pub fn bytes(&self) -> u64 {
        // ~24 B per prefix in the vec + map entry, plus an amortized trie
        // cost: dense prefix sets share upper nodes, so ~4 nodes/prefix.
        self.prefixes.len() as u64 * (24 + 64 + 4 * 56)
    }
}

/// The bundle of arenas the interned store runs on.
pub struct Interner {
    /// AS paths (with precomputed sorted link slices).
    pub paths: PathArena,
    /// Community sets (`C` and `Cw`).
    pub comm_sets: SetArena<Community>,
    /// Implicit-withdrawal link sets (`Lw`).
    pub link_sets: SetArena<Link>,
    /// Prefixes, with the shared prefix→id trie.
    pub prefixes: PrefixArena,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// Fresh arenas with the empty path/sets pre-interned as id 0.
    pub fn new() -> Self {
        Interner {
            paths: PathArena::new(),
            comm_sets: SetArena::new(),
            link_sets: SetArena::new(),
            prefixes: PrefixArena::new(),
        }
    }

    /// Interns a community `BTreeSet` (already sorted by iteration order).
    pub fn intern_comms(&mut self, comms: &std::collections::BTreeSet<Community>) -> CommSetId {
        let sorted: Vec<Community> = comms.iter().copied().collect();
        CommSetId(self.comm_sets.intern_sorted(&sorted))
    }

    /// Interns a link `BTreeSet` (already sorted by iteration order).
    pub fn intern_links(&mut self, links: &std::collections::BTreeSet<Link>) -> LinkSetId {
        let sorted: Vec<Link> = links.iter().copied().collect();
        LinkSetId(self.link_sets.intern_sorted(&sorted))
    }

    /// Total approximate heap bytes across all arenas.
    pub fn bytes(&self) -> u64 {
        self.paths.bytes() + self.comm_sets.bytes() + self.link_sets.bytes() + self.prefixes.bytes()
    }

    /// Total attribute references handed out (for the dedup ratio).
    pub fn refs(&self) -> u64 {
        self.paths.refs() + self.comm_sets.refs() + self.link_sets.refs()
    }

    /// Total distinct attribute entries across the dedup arenas.
    pub fn entries(&self) -> usize {
        self.paths.len() + self.comm_sets.len() + self.link_sets.len()
    }
}

/// Sorted-slice set difference `a \ b` (both inputs sorted ascending); the
/// slice analogue of `BTreeSet::difference`, so deriving `Lw`/`Cw` from
/// interned slices matches `Rib::apply` on owned sets exactly.
pub fn diff_sorted<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Asn;
    use std::collections::BTreeSet;

    #[test]
    fn paths_dedup_and_round_trip() {
        let mut a = PathArena::new();
        let p1 = AsPath::from_u32s([6, 2, 1, 4]);
        let p2 = AsPath::from_u32s([6, 3, 1, 4]);
        let id1 = a.intern(&p1);
        let id2 = a.intern(&p2);
        let id1b = a.intern(&p1);
        assert_eq!(id1, id1b, "same path interns to same id");
        assert_ne!(id1, id2);
        assert_eq!(a.get(id1), &p1);
        assert_eq!(a.get(id2), &p2);
        assert_eq!(a.len(), 3, "empty + two distinct");
        assert_eq!(a.refs(), 4, "empty once + p1 twice + p2 once");
        // links are the BTreeSet order, materialized
        let want: Vec<Link> = p1.links().into_iter().collect();
        assert_eq!(a.links(id1), &want[..]);
    }

    #[test]
    fn empty_values_are_id_zero() {
        let mut i = Interner::new();
        assert_eq!(i.paths.intern(&AsPath::empty()), PathId::EMPTY);
        assert_eq!(i.intern_comms(&BTreeSet::new()), CommSetId::EMPTY);
        assert_eq!(i.intern_links(&BTreeSet::new()), LinkSetId::EMPTY);
    }

    #[test]
    fn comm_sets_round_trip_btreeset_order() {
        let mut i = Interner::new();
        let set: BTreeSet<Community> = [Community::new(9, 1), Community::new(1, 2)]
            .into_iter()
            .collect();
        let id = i.intern_comms(&set);
        let back: BTreeSet<Community> = i.comm_sets.get(id.0).iter().copied().collect();
        assert_eq!(back, set);
        assert_eq!(i.intern_comms(&set), id);
    }

    #[test]
    fn prefix_arena_tracks_trie() {
        let mut a = PrefixArena::new();
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let id8 = a.intern(p8);
        let id16 = a.intern(p16);
        assert_eq!(a.intern(p8), id8);
        assert_eq!(a.get(id16), p16);
        assert_eq!(a.lookup(&p8), Some(id8));
        assert_eq!(a.lookup(&"11.0.0.0/8".parse().unwrap()), None);
        assert_eq!(a.trie().more_specifics(&p8).len(), 2);
    }

    #[test]
    fn diff_sorted_matches_btreeset_difference() {
        let a: BTreeSet<Link> = [
            Link::new(Asn(1), Asn(2)),
            Link::new(Asn(2), Asn(3)),
            Link::new(Asn(3), Asn(4)),
        ]
        .into_iter()
        .collect();
        let b: BTreeSet<Link> = [Link::new(Asn(2), Asn(3)), Link::new(Asn(9), Asn(9))]
            .into_iter()
            .collect();
        let av: Vec<Link> = a.iter().copied().collect();
        let bv: Vec<Link> = b.iter().copied().collect();
        let want: Vec<Link> = a.difference(&b).copied().collect();
        assert_eq!(diff_sorted(&av, &bv), want);
        assert_eq!(diff_sorted(&av, &[]), av);
        assert_eq!(diff_sorted(&[] as &[Link], &bv), Vec::<Link>::new());
    }
}
