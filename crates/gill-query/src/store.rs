//! The time-sharded route store (arena-interned, copy-on-write core).
//!
//! GILL's serving half must answer "what routes did VP `v` hold for prefix
//! `p` at time `t`?" without replaying the whole archive (PAPER §9: users
//! query bgproutes.io rather than grep MRT dumps). The store keeps three
//! coordinated indexes over one append-only update log:
//!
//! * **per-VP lanes** — each VP's updates in arrival order, with a live
//!   RIB maintained incrementally and periodic RIB *snapshots* taken at
//!   a configurable shard cadence, so [`RouteStore::rib_at`] is
//!   snapshot-clone + bounded replay instead of full-stream replay;
//! * **time shards** — fixed-width buckets over the time axis, each holding
//!   a per-prefix index of update references, so time-ranged
//!   "what happened to p between t₁ and t₂" queries touch only the shards
//!   that overlap the range;
//! * **live looking-glass table** — a cross-VP [`PrefixTrie`] of current
//!   best routes plus an origin-AS refcount index, serving the
//!   fernglas-style exact/LPM/more-specifics lookups in O(prefix length).
//!
//! This implementation differs from the behavioural oracle in
//! [`crate::refstore`] in three memory-focused ways, none visible through
//! the query API (the equivalence suite asserts byte-identical answers):
//!
//! 1. **Attribute interning** — AS paths, community sets, `Lw`/`Cw` sets
//!    and prefixes live once in refcounted [`Interner`] arenas; a stored
//!    record is a handful of `u32` ids ([`Rec`]) instead of an owned
//!    [`BgpUpdate`]. Full updates are rebuilt on demand, exactly.
//! 2. **Copy-on-write RIBs** — the per-lane live table and its cadence
//!    snapshots are [`CowRib`]s: a snapshot is an O(1) root clone sharing
//!    unchanged subtrees, not a full `Rib` copy.
//! 3. **Sealed segments** — aged-out records can be sealed into
//!    checksummed append-only files ([`crate::segment`]) and replayed on
//!    boot ([`RouteStore::load_dir`]), reproducing the store exactly.

use crate::arena::{diff_sorted, Interner};
use crate::cow::{CompactEntry, CowRib, RouteKey};
use crate::segment::{self, Segment, SegmentBuilder};
use crate::{JoinMode, MatchMode};
use bgp_types::{
    Asn, BgpUpdate, CommSetId, LinkSetId, PathId, Prefix, PrefixId, PrefixTrie, Rib, RibEntry,
    Timestamp, UpdateKind, VpId,
};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Width of one time shard in milliseconds.
    pub shard_width_ms: u64,
    /// Take a per-VP RIB snapshot every `snapshot_every_shards` shards.
    pub snapshot_every_shards: u64,
    /// Soft cap on resident bytes (estimated); `0` disables. Once the
    /// estimate reaches the cap, further updates are *shed* (dropped and
    /// counted) rather than ingested.
    pub mem_cap_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            // One-minute shards, snapshot every 4 shards: rib_at replays at
            // most ~4 minutes of one VP's updates.
            shard_width_ms: 60_000,
            snapshot_every_shards: 4,
            mem_cap_bytes: 0,
        }
    }
}

impl StoreConfig {
    /// Milliseconds between two snapshots of one VP.
    pub fn snapshot_cadence_ms(&self) -> u64 {
        self.shard_width_ms * self.snapshot_every_shards.max(1)
    }

    /// The config with degenerate zero widths clamped to 1.
    pub fn clamped(self) -> Self {
        StoreConfig {
            shard_width_ms: self.shard_width_ms.max(1),
            snapshot_every_shards: self.snapshot_every_shards.max(1),
            mem_cap_bytes: self.mem_cap_bytes,
        }
    }
}

/// Reference to one update in a VP lane (shard indexes point here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UpdateRef {
    vp: VpId,
    idx: u32,
}

/// One stored update in interned form: ~24 bytes of ids instead of an
/// owned [`BgpUpdate`] (~200+ bytes). `Lw`/`Cw` are stored (as set ids) so
/// rebuilt updates are annotated exactly like the originals.
#[derive(Clone, Copy, Debug)]
struct Rec {
    prefix: PrefixId,
    /// RFC 7911 ADD-PATH identifier (`None` on classic sessions). Distinct
    /// from `path`, which is the *interned AS-path* arena id.
    path_id: Option<u32>,
    path: PathId,
    comms: CommSetId,
    wlinks: LinkSetId,
    wcomms: CommSetId,
    kind: UpdateKind,
}

impl Rec {
    /// The route identity this record addresses in a RIB.
    fn route_key(&self) -> RouteKey {
        RouteKey {
            prefix: self.prefix,
            path: self.path_id,
        }
    }
}

/// A per-VP RIB snapshot: `rib` reflects exactly `lane.recs[..idx]`.
struct Snapshot {
    idx: usize,
    rib: CowRib,
}

/// One VP's slice of the log.
struct VpLane {
    /// Interned records in arrival order.
    recs: Vec<Rec>,
    /// Effective (monotone non-decreasing) timestamp per record: the
    /// running max of arrival timestamps, which keeps binary search sound
    /// even if a peer's clock steps backwards briefly.
    times: Vec<u64>,
    /// Raw arrival timestamps (what rebuilt updates carry).
    raw_times: Vec<u64>,
    /// RIB after every record in `recs`.
    rib: CowRib,
    /// Cadence snapshots, ascending by `idx`; O(1) clones of `rib`.
    snapshots: Vec<Snapshot>,
    /// Snapshot window (`shard_id / snapshot_every_shards`) of the last
    /// ingested update.
    last_window: Option<u64>,
    /// Records `recs[..sealed_upto]` are already persisted in a segment.
    sealed_upto: usize,
}

impl VpLane {
    fn new() -> Self {
        VpLane {
            recs: Vec::new(),
            times: Vec::new(),
            raw_times: Vec::new(),
            rib: CowRib::new(),
            snapshots: Vec::new(),
            last_window: None,
            sealed_upto: 0,
        }
    }

    /// Number of records with effective time <= `t_ms`.
    fn count_until(&self, t_ms: u64) -> usize {
        self.times.partition_point(|&t| t <= t_ms)
    }

    /// Latest snapshot covering at most the first `k` records.
    fn snapshot_before(&self, k: usize) -> Option<&Snapshot> {
        let i = self.snapshots.partition_point(|s| s.idx <= k);
        i.checked_sub(1).map(|i| &self.snapshots[i])
    }
}

/// One fixed-width time bucket: prefix id → references to the updates whose
/// (effective) timestamps fall inside it. A plain map keyed by interned
/// prefix id — covered joins go through the single shared trie in the
/// prefix arena instead of one trie per shard.
struct Shard {
    index: HashMap<u32, Vec<UpdateRef>>,
    count: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: HashMap::new(),
            count: 0,
        }
    }
}

/// A route in the live looking-glass table.
#[derive(Clone, Debug)]
pub struct RouteView {
    /// The vantage point holding the route.
    pub vp: VpId,
    /// The matched prefix (the stored one, which for LPM queries may be
    /// less specific than the query).
    pub prefix: Prefix,
    /// The best-route attributes.
    pub entry: RibEntry,
}

/// Counters the `/health` endpoint and tests read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total updates ingested.
    pub updates: usize,
    /// Number of distinct VPs seen.
    pub vps: usize,
    /// Number of non-empty time shards.
    pub shards: usize,
    /// Total RIB snapshots currently held.
    pub snapshots: usize,
    /// Prefixes with at least one live route.
    pub live_prefixes: usize,
}

/// Memory/persistence counters (`/store/stats` endpoint).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreMemStats {
    /// Estimated resident bytes (arenas + per-record overhead).
    pub bytes_resident: u64,
    /// Distinct AS paths interned.
    pub arena_paths: usize,
    /// Distinct community sets interned (`C` and `Cw` share the arena).
    pub arena_comm_sets: usize,
    /// Distinct withdrawn-link sets interned.
    pub arena_link_sets: usize,
    /// Distinct prefixes interned.
    pub arena_prefixes: usize,
    /// Attribute references handed out across all arenas.
    pub attr_refs: u64,
    /// `attr_refs / distinct entries` — how many times the average
    /// attribute value is reused.
    pub dedup_ratio: f64,
    /// Segments written (or loaded) so far.
    pub sealed_segments: usize,
    /// Updates covered by sealed segments.
    pub sealed_updates: usize,
    /// Updates dropped by the memory cap.
    pub shed_updates: usize,
}

/// Fixed per-record overhead charged to the resident-bytes estimate: the
/// `Rec` itself, the two timestamp lanes, the shard reference, and an
/// amortized share of COW node copies and live-table entries.
const REC_OVERHEAD_BYTES: u64 = 128;

/// The time-indexed route store.
pub struct RouteStore {
    cfg: StoreConfig,
    interner: Interner,
    lanes: HashMap<VpId, VpLane>,
    /// VPs in first-seen order (stable output for `/vps`).
    vp_order: Vec<VpId>,
    shards: BTreeMap<u64, Shard>,
    /// prefix → ((vp, ADD-PATH id) → live route), in interned form. The
    /// path-id key keeps concurrent RFC 7911 routes from one VP distinct;
    /// classic sessions collapse to a single `None` slot per VP.
    live: PrefixTrie<BTreeMap<(VpId, Option<u32>), CompactEntry>>,
    /// origin AS → (prefix → number of VPs currently routing it via that
    /// origin). Refcounted so withdrawals retract cleanly.
    origins: HashMap<Asn, BTreeMap<Prefix, usize>>,
    total: usize,
    /// Updates dropped by the memory cap.
    shed: usize,
    /// Per-record byte overhead accumulated so far.
    rec_bytes: u64,
    /// Sequence number for the next sealed segment.
    next_seq: u64,
    sealed_segments: usize,
    sealed_updates: usize,
}

impl Default for RouteStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl RouteStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        RouteStore {
            cfg: cfg.clamped(),
            interner: Interner::new(),
            lanes: HashMap::new(),
            vp_order: Vec::new(),
            shards: BTreeMap::new(),
            live: PrefixTrie::new(),
            origins: HashMap::new(),
            total: 0,
            shed: 0,
            rec_bytes: 0,
            next_seq: 0,
            sealed_segments: 0,
            sealed_updates: 0,
        }
    }

    /// The configuration the store runs with.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Ingests one update (arrival order per VP is replay order). When a
    /// memory cap is configured and the resident estimate has reached it,
    /// the update is shed (dropped and counted) instead.
    pub fn ingest(&mut self, update: BgpUpdate) {
        if self.cfg.mem_cap_bytes > 0 && self.approx_bytes() >= self.cfg.mem_cap_bytes {
            self.shed += 1;
            return;
        }
        self.ingest_unchecked(update);
    }

    /// The ingest path proper (no cap check — also used by segment replay,
    /// which must reload everything the original process held).
    fn ingest_unchecked(&mut self, update: BgpUpdate) {
        let BgpUpdate {
            vp,
            time,
            prefix,
            path_id,
            kind,
            path,
            communities,
            ..
        } = update;

        let lane = match self.lanes.entry(vp) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.vp_order.push(vp);
                e.insert(VpLane::new())
            }
        };

        let raw_ms = time.as_millis();
        let eff_ms = raw_ms.max(lane.times.last().copied().unwrap_or(0));
        let shard_id = eff_ms / self.cfg.shard_width_ms;
        let window = shard_id / self.cfg.snapshot_every_shards;

        // Snapshot *before* applying the first update of a new cadence
        // window: the snapshot then covers exactly the updates of earlier
        // windows, so rib_at(t) for t inside this window replays only the
        // window's own updates. With CowRib this is an O(1) root clone.
        if let Some(last) = lane.last_window {
            if window > last {
                lane.snapshots.push(Snapshot {
                    idx: lane.recs.len(),
                    rib: lane.rib.clone(),
                });
            }
        }
        lane.last_window = Some(window);

        // Intern the update's attributes and derive Lw/Cw from the previous
        // best route, matching `Rib::apply` on owned sets exactly: the
        // arenas hand back sorted slices and `diff_sorted` is the slice
        // analogue of `BTreeSet::difference`.
        let interner = &mut self.interner;
        let pid = interner.prefixes.intern(prefix);
        let rkey = RouteKey {
            prefix: pid,
            path: path_id,
        };
        let aspath_id = interner.paths.intern(&path);
        let comms_id = CommSetId(
            interner
                .comm_sets
                .intern_sorted(&communities.iter().copied().collect::<Vec<_>>()),
        );
        let prev = lane.rib.get(rkey).copied();
        let prev_origin = prev.map(|pe| interner.paths.get(pe.path).origin());
        let new_origin = interner.paths.get(aspath_id).origin();

        let (wlinks, wcomms, new_entry) = match kind {
            UpdateKind::Announce => {
                let (wl, wc) = match prev {
                    Some(pe) => {
                        let lw = diff_sorted(
                            interner.paths.links(pe.path),
                            interner.paths.links(aspath_id),
                        );
                        let cw = diff_sorted(
                            interner.comm_sets.get(pe.comms.0),
                            interner.comm_sets.get(comms_id.0),
                        );
                        (
                            LinkSetId(interner.link_sets.intern_sorted(&lw)),
                            CommSetId(interner.comm_sets.intern_sorted(&cw)),
                        )
                    }
                    None => {
                        interner.link_sets.bump(LinkSetId::EMPTY.0);
                        interner.comm_sets.bump(CommSetId::EMPTY.0);
                        (LinkSetId::EMPTY, CommSetId::EMPTY)
                    }
                };
                let e = CompactEntry {
                    path: aspath_id,
                    comms: comms_id,
                    time_ms: raw_ms,
                };
                lane.rib.insert(rkey, e);
                (wl, wc, Some(e))
            }
            UpdateKind::Withdraw => {
                let removed = lane.rib.remove(rkey);
                match removed {
                    Some(pe) => {
                        // Lw carries everything the withdrawn route had.
                        let links = interner.paths.links(pe.path).to_vec();
                        let wl = LinkSetId(interner.link_sets.intern_sorted(&links));
                        interner.comm_sets.bump(pe.comms.0);
                        (wl, pe.comms, None)
                    }
                    None => {
                        interner.link_sets.bump(LinkSetId::EMPTY.0);
                        interner.comm_sets.bump(CommSetId::EMPTY.0);
                        (LinkSetId::EMPTY, CommSetId::EMPTY, None)
                    }
                }
            }
        };

        let idx = lane.recs.len() as u32;
        lane.times.push(eff_ms);
        lane.raw_times.push(raw_ms);
        lane.recs.push(Rec {
            prefix: pid,
            path_id,
            path: aspath_id,
            comms: comms_id,
            wlinks,
            wcomms,
            kind,
        });

        // Looking-glass + origin indexes (lane borrow released above).
        match kind {
            UpdateKind::Announce => {
                let entry = new_entry.expect("announce installs a route");
                if let Some(po) = prev_origin {
                    retract_origin(&mut self.origins, po, prefix);
                }
                add_origin(&mut self.origins, new_origin, prefix);
                match self.live.get_mut(&prefix) {
                    Some(routes) => {
                        routes.insert((vp, path_id), entry);
                    }
                    None => {
                        self.live
                            .insert(prefix, BTreeMap::from([((vp, path_id), entry)]));
                    }
                }
            }
            UpdateKind::Withdraw => {
                if let Some(po) = prev_origin {
                    retract_origin(&mut self.origins, po, prefix);
                    if let Some(routes) = self.live.get_mut(&prefix) {
                        routes.remove(&(vp, path_id));
                        if routes.is_empty() {
                            self.live.remove(&prefix);
                        }
                    }
                }
            }
        }

        // Shard index.
        let shard = self.shards.entry(shard_id).or_insert_with(Shard::new);
        shard.count += 1;
        shard
            .index
            .entry(pid.0)
            .or_default()
            .push(UpdateRef { vp, idx });
        self.total += 1;
        self.rec_bytes += REC_OVERHEAD_BYTES;
    }

    /// VPs in first-seen order with their update counts.
    pub fn vps(&self) -> Vec<(VpId, usize)> {
        self.vp_order
            .iter()
            .map(|vp| (*vp, self.lanes[vp].recs.len()))
            .collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            updates: self.total,
            vps: self.lanes.len(),
            shards: self.shards.len(),
            snapshots: self.lanes.values().map(|l| l.snapshots.len()).sum(),
            live_prefixes: self.live.len(),
        }
    }

    /// Estimated resident bytes: arena heap (tracked incrementally by the
    /// arenas) plus a fixed per-record overhead. Deterministic for a given
    /// stream, so memory-cap shedding is reproducible.
    pub fn approx_bytes(&self) -> u64 {
        self.interner.bytes() + self.rec_bytes
    }

    /// Memory and persistence counters.
    pub fn mem_stats(&self) -> StoreMemStats {
        let entries = self.interner.entries();
        let refs = self.interner.refs();
        StoreMemStats {
            bytes_resident: self.approx_bytes(),
            arena_paths: self.interner.paths.len(),
            arena_comm_sets: self.interner.comm_sets.len(),
            arena_link_sets: self.interner.link_sets.len(),
            arena_prefixes: self.interner.prefixes.len(),
            attr_refs: refs,
            dedup_ratio: if entries > 0 {
                refs as f64 / entries as f64
            } else {
                0.0
            },
            sealed_segments: self.sealed_segments,
            sealed_updates: self.sealed_updates,
            shed_updates: self.shed,
        }
    }

    /// Rebuilds the full update for one lane record — the exact value the
    /// reference store would have kept (Lw/Cw included).
    fn rebuild(&self, vp: VpId, lane: &VpLane, idx: usize) -> BgpUpdate {
        let rec = &lane.recs[idx];
        let i = &self.interner;
        BgpUpdate {
            vp,
            time: Timestamp::from_millis(lane.raw_times[idx]),
            prefix: i.prefixes.get(rec.prefix),
            path_id: rec.path_id,
            kind: rec.kind,
            path: i.paths.get(rec.path).clone(),
            communities: i.comm_sets.get(rec.comms.0).iter().copied().collect(),
            withdrawn_links: i.link_sets.get(rec.wlinks.0).iter().copied().collect(),
            withdrawn_communities: i.comm_sets.get(rec.wcomms.0).iter().copied().collect(),
        }
    }

    /// Materializes an interned entry into the owned form queries return.
    fn entry(&self, e: &CompactEntry) -> RibEntry {
        RibEntry {
            path: self.interner.paths.get(e.path).clone(),
            communities: self
                .interner
                .comm_sets
                .get(e.comms.0)
                .iter()
                .copied()
                .collect(),
            time: Timestamp::from_millis(e.time_ms),
        }
    }

    /// Materializes a COW table into an owned [`Rib`].
    fn materialize(&self, rib: &CowRib) -> Rib {
        let mut entries = Vec::with_capacity(rib.len());
        rib.for_each(|key, e| {
            entries.push((
                self.interner.prefixes.get(key.prefix),
                key.path,
                self.entry(e),
            ))
        });
        Rib::from_path_entries(entries)
    }

    /// Replays one record into a COW table (the compact analogue of
    /// `Rib::apply`; Lw/Cw derivation already happened at ingest).
    fn apply_rec(rib: &mut CowRib, rec: &Rec, raw_ms: u64) {
        match rec.kind {
            UpdateKind::Announce => {
                rib.insert(
                    rec.route_key(),
                    CompactEntry {
                        path: rec.path,
                        comms: rec.comms,
                        time_ms: raw_ms,
                    },
                );
            }
            UpdateKind::Withdraw => {
                rib.remove(rec.route_key());
            }
        }
    }

    /// The RIB VP `vp` held at time `t`: latest snapshot at or before `t`,
    /// plus replay of the (bounded) tail. Returns `None` for an unknown VP.
    pub fn rib_at(&self, vp: VpId, t: Timestamp) -> Option<Rib> {
        let lane = self.lanes.get(&vp)?;
        let k = lane.count_until(t.as_millis());
        let (mut rib, start) = match lane.snapshot_before(k) {
            Some(s) => (s.rib.clone(), s.idx),
            None => (CowRib::new(), 0),
        };
        for i in start..k {
            Self::apply_rec(&mut rib, &lane.recs[i], lane.raw_times[i]);
        }
        Some(self.materialize(&rib))
    }

    /// Number of routes `vp` held at `t` — the reconstruction of [`rib_at`]
    /// without the final materialization into a [`Rib`], so its cost is the
    /// snapshot lookup plus the bounded replay alone.
    pub fn rib_len_at(&self, vp: VpId, t: Timestamp) -> Option<usize> {
        let lane = self.lanes.get(&vp)?;
        let k = lane.count_until(t.as_millis());
        let (mut rib, start) = match lane.snapshot_before(k) {
            Some(s) => (s.rib.clone(), s.idx),
            None => (CowRib::new(), 0),
        };
        for i in start..k {
            Self::apply_rec(&mut rib, &lane.recs[i], lane.raw_times[i]);
        }
        Some(rib.len())
    }

    /// Number of updates `rib_at` would replay after the snapshot (used by
    /// the benchmark to report bounded-replay depth).
    pub fn replay_depth(&self, vp: VpId, t: Timestamp) -> Option<usize> {
        let lane = self.lanes.get(&vp)?;
        let k = lane.count_until(t.as_millis());
        let start = lane.snapshot_before(k).map(|s| s.idx).unwrap_or(0);
        Some(k - start)
    }

    /// The latest RIB of `vp`, materialized.
    pub fn rib_now(&self, vp: VpId) -> Option<Rib> {
        self.lanes.get(&vp).map(|l| self.materialize(&l.rib))
    }

    /// Looking-glass lookup against the *live* table.
    ///
    /// `vp = None` queries across all VPs. LPM returns the most specific
    /// covering prefix that still has a route from the selected view;
    /// more-specifics enumerates the covered subtree.
    pub fn lookup(&self, prefix: &Prefix, mode: MatchMode, vp: Option<VpId>) -> Vec<RouteView> {
        let keep = |routes: &BTreeMap<(VpId, Option<u32>), CompactEntry>,
                    pfx: &Prefix,
                    out: &mut Vec<RouteView>| {
            for ((v, _path_id), entry) in routes {
                if vp.is_none_or(|want| *v == want) {
                    out.push(RouteView {
                        vp: *v,
                        prefix: *pfx,
                        entry: self.entry(entry),
                    });
                }
            }
        };
        let mut out = Vec::new();
        match mode {
            MatchMode::Exact => {
                if let Some(routes) = self.live.get(prefix) {
                    keep(routes, prefix, &mut out);
                }
            }
            MatchMode::Longest => {
                // walk up from the exact node: longest_match only sees the
                // best covering node, but that node may have no route from
                // the requested VP — so widen until one matches.
                let mut probe = *prefix;
                while let Some((pfx, routes)) = self.live.longest_match(&probe) {
                    keep(routes, pfx, &mut out);
                    if !out.is_empty() || pfx.is_empty() {
                        break;
                    }
                    // retry strictly above the rejected match
                    probe = truncate(pfx, pfx.len() - 1);
                }
            }
            MatchMode::MoreSpecific => {
                for (pfx, routes) in self.live.more_specifics(prefix) {
                    keep(routes, pfx, &mut out);
                }
            }
        }
        out.sort_by_key(|a| (a.prefix, a.vp));
        out
    }

    /// Historical lookup: like [`RouteStore::lookup`] but against the RIBs
    /// at time `t`, reconstructed per VP via snapshot + bounded replay.
    pub fn lookup_at(
        &self,
        prefix: &Prefix,
        mode: MatchMode,
        vp: Option<VpId>,
        t: Timestamp,
    ) -> Vec<RouteView> {
        let vps: Vec<VpId> = match vp {
            Some(v) => vec![v],
            None => self.vp_order.clone(),
        };
        let mut out = Vec::new();
        for v in vps {
            let Some(rib) = self.rib_at(v, t) else {
                continue;
            };
            // Group per prefix: an ADD-PATH table can hold several routes
            // under one prefix, and every one is part of the answer.
            let mut trie: PrefixTrie<Vec<RibEntry>> = PrefixTrie::new();
            for (p, e) in rib.iter() {
                match trie.get_mut(p) {
                    Some(v) => v.push(e.clone()),
                    None => {
                        trie.insert(*p, vec![e.clone()]);
                    }
                }
            }
            let push = |pfx: &Prefix, entries: &Vec<RibEntry>, out: &mut Vec<RouteView>| {
                for e in entries {
                    out.push(RouteView {
                        vp: v,
                        prefix: *pfx,
                        entry: e.clone(),
                    });
                }
            };
            match mode {
                MatchMode::Exact => {
                    if let Some(es) = trie.get(prefix) {
                        push(prefix, es, &mut out);
                    }
                }
                MatchMode::Longest => {
                    if let Some((pfx, es)) = trie.longest_match(prefix) {
                        push(pfx, es, &mut out);
                    }
                }
                MatchMode::MoreSpecific => {
                    for (pfx, es) in trie.more_specifics(prefix) {
                        push(pfx, es, &mut out);
                    }
                }
            }
        }
        out.sort_by_key(|a| (a.prefix, a.vp));
        out
    }

    /// Updates touching `prefix` in `[from, to]`, via the shard indexes.
    ///
    /// `join` controls prefix matching: exact, or any stored prefix covered
    /// by the query (more-specifics, resolved through the shared prefix
    /// trie). Results are rebuilt updates in (time, vp, prefix, lane order).
    pub fn updates_in_range(
        &self,
        prefix: Option<&Prefix>,
        join: JoinMode,
        vp: Option<VpId>,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<BgpUpdate> {
        let (from_ms, to_ms) = (from.as_millis(), to.as_millis());
        if from_ms > to_ms {
            return Vec::new();
        }
        // Resolve the prefix filter to interned ids once, up front.
        let pids: Option<Vec<u32>> = prefix.map(|p| match join {
            JoinMode::Exact => self
                .interner
                .prefixes
                .lookup(p)
                .map(|id| vec![id.0])
                .unwrap_or_default(),
            JoinMode::Covered => self
                .interner
                .prefixes
                .trie()
                .more_specifics(p)
                .into_iter()
                .map(|(_, id)| *id)
                .collect(),
        });
        let first = from_ms / self.cfg.shard_width_ms;
        let last = to_ms / self.cfg.shard_width_ms;
        let mut refs: Vec<UpdateRef> = Vec::new();
        for (_, shard) in self.shards.range(first..=last) {
            match &pids {
                Some(ids) => {
                    for id in ids {
                        if let Some(rs) = shard.index.get(id) {
                            refs.extend(rs.iter().copied());
                        }
                    }
                }
                None => {
                    for rs in shard.index.values() {
                        refs.extend(rs.iter().copied());
                    }
                }
            }
        }
        // Total sort key (time, vp, prefix, lane idx): within a tie group
        // the lane index ascends exactly like the reference store's stable
        // sort over shard-ordered refs, so output order is identical.
        let mut keyed: Vec<(u64, VpId, Prefix, u32)> = refs
            .into_iter()
            .filter(|r| vp.is_none_or(|want| r.vp == want))
            .filter_map(|r| {
                let lane = self.lanes.get(&r.vp)?;
                let t = *lane.times.get(r.idx as usize)?;
                (t >= from_ms && t <= to_ms).then(|| {
                    let raw = lane.raw_times[r.idx as usize];
                    let p = self.interner.prefixes.get(lane.recs[r.idx as usize].prefix);
                    (raw, r.vp, p, r.idx)
                })
            })
            .collect();
        keyed.sort_unstable();
        keyed
            .into_iter()
            .map(|(_, v, _, idx)| self.rebuild(v, &self.lanes[&v], idx as usize))
            .collect()
    }

    /// Prefixes currently originated by `asn`, with the number of VPs
    /// routing each via that origin.
    pub fn originated(&self, asn: Asn) -> Vec<(Prefix, usize)> {
        self.origins
            .get(&asn)
            .map(|m| m.iter().map(|(p, n)| (*p, *n)).collect())
            .unwrap_or_default()
    }

    /// All updates of one VP in arrival order (MRT export), rebuilt.
    pub fn lane_updates(&self, vp: VpId) -> Option<Vec<BgpUpdate>> {
        let lane = self.lanes.get(&vp)?;
        Some(
            (0..lane.recs.len())
                .map(|i| self.rebuild(vp, lane, i))
                .collect(),
        )
    }

    /// Per-VP RIBs at time `t` for every VP (TABLE_DUMP export).
    pub fn ribs_at(&self, t: Timestamp) -> HashMap<VpId, Rib> {
        self.vp_order
            .iter()
            .filter_map(|vp| self.rib_at(*vp, t).map(|r| (*vp, r)))
            .collect()
    }

    /// Occupancy per non-empty shard, ascending by shard id (diagnostics
    /// and the benchmark's shard-balance report).
    pub fn shard_counts(&self) -> Vec<(u64, usize)> {
        self.shards.iter().map(|(id, s)| (*id, s.count)).collect()
    }

    /// The latest effective timestamp ingested (ZERO when empty).
    pub fn latest_time(&self) -> Timestamp {
        Timestamp::from_millis(
            self.lanes
                .values()
                .filter_map(|l| l.times.last().copied())
                .max()
                .unwrap_or(0),
        )
    }

    // ---- sealed segments -------------------------------------------------

    /// Seals every record of every *complete* shard (strictly before the
    /// latest shard seen) that is not yet on disk into one new segment file
    /// under `dir`. Returns the file path, or `None` when nothing new aged
    /// out. Records stay resident for serving; sealing is durability.
    pub fn seal_complete_into(&mut self, dir: &Path) -> io::Result<Option<PathBuf>> {
        let Some((&latest, _)) = self.shards.last_key_value() else {
            return Ok(None);
        };
        let cutoff_ms = latest.saturating_mul(self.cfg.shard_width_ms);
        self.seal_until(dir, Some(cutoff_ms))
    }

    /// Seals *all* unsealed records into one new segment file under `dir`
    /// (shutdown flush). Returns the file path, or `None` if nothing new.
    pub fn seal_all_into(&mut self, dir: &Path) -> io::Result<Option<PathBuf>> {
        self.seal_until(dir, None)
    }

    /// Seals per-lane records with effective time `< cutoff_ms` (or all when
    /// `None`). Effective times are monotone per lane, so the sealed range
    /// is always a lane prefix and `sealed_upto` is a plain watermark.
    fn seal_until(&mut self, dir: &Path, cutoff_ms: Option<u64>) -> io::Result<Option<PathBuf>> {
        let mut builder = SegmentBuilder::new(self.next_seq, self.vp_order.clone());
        let mut new_upto: Vec<usize> = Vec::with_capacity(self.vp_order.len());
        for (vi, vp) in self.vp_order.iter().enumerate() {
            let lane = &self.lanes[vp];
            let upto = match cutoff_ms {
                Some(ms) => lane.times.partition_point(|&t| t < ms),
                None => lane.recs.len(),
            };
            new_upto.push(upto);
            let handle = builder.add_lane(vi as u32, lane.sealed_upto as u64);
            for i in lane.sealed_upto..upto {
                let rec = &lane.recs[i];
                builder.push_rec(
                    handle,
                    lane.raw_times[i],
                    self.interner.prefixes.get(rec.prefix),
                    self.interner.paths.get(rec.path),
                    self.interner.comm_sets.get(rec.comms.0),
                    rec.kind,
                    rec.path_id,
                );
            }
        }
        let count = builder.rec_count();
        if count == 0 {
            return Ok(None);
        }
        let seg = builder.finish();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(segment::segment_file_name(seg.seq));
        let tmp = dir.join(format!("{}.tmp", segment::segment_file_name(seg.seq)));
        {
            let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
            seg.write_to(&mut f)?;
            use io::Write as _;
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        for (vi, vp) in self.vp_order.iter().enumerate() {
            self.lanes.get_mut(vp).expect("lane exists").sealed_upto = new_upto[vi];
        }
        self.next_seq += 1;
        self.sealed_segments += 1;
        self.sealed_updates += count;
        Ok(Some(path))
    }

    /// Cold-start replay: loads every segment under `dir` in sequence order
    /// and re-ingests its lanes, reproducing the sealed portion of the
    /// store exactly (per-lane order is all that matters: Lw/Cw, shards,
    /// snapshots and the live table are re-derived deterministically).
    ///
    /// Returns the number of updates replayed. Replay bypasses the memory
    /// cap — what the original process held must come back.
    pub fn load_dir(&mut self, dir: &Path) -> io::Result<usize> {
        let mut replayed = 0;
        for (seq, path) in segment::list_segments(dir)? {
            let mut f = io::BufReader::new(std::fs::File::open(&path)?);
            let seg = Segment::read_from(&mut f)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
            // Reproduce VP registration order even for lanes that were
            // empty when this segment was written.
            for vp in &seg.vp_order {
                self.register_vp(*vp);
            }
            for lane in &seg.lanes {
                let vp = seg.vp_order[lane.vp as usize];
                let cur = self.lanes[&vp].recs.len() as u64;
                if lane.start != cur {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}: lane {vp} starts at {} but store holds {cur}",
                            path.display(),
                            lane.start
                        ),
                    ));
                }
            }
            for u in seg.updates() {
                self.ingest_unchecked(u);
                replayed += 1;
            }
            for lane in &seg.lanes {
                let vp = seg.vp_order[lane.vp as usize];
                let l = self.lanes.get_mut(&vp).expect("registered above");
                l.sealed_upto = l.recs.len();
            }
            self.next_seq = self.next_seq.max(seq + 1);
            self.sealed_segments += 1;
            self.sealed_updates += seg.lanes.iter().map(|l| l.recs.len()).sum::<usize>();
        }
        Ok(replayed)
    }

    /// Registers a VP with an empty lane (used by segment replay to pin the
    /// first-seen order recorded at seal time).
    fn register_vp(&mut self, vp: VpId) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.lanes.entry(vp) {
            self.vp_order.push(vp);
            e.insert(VpLane::new());
        }
    }
}

fn add_origin(
    origins: &mut HashMap<Asn, BTreeMap<Prefix, usize>>,
    origin: Option<Asn>,
    prefix: Prefix,
) {
    if let Some(o) = origin {
        *origins.entry(o).or_default().entry(prefix).or_insert(0) += 1;
    }
}

fn retract_origin(
    origins: &mut HashMap<Asn, BTreeMap<Prefix, usize>>,
    origin: Option<Asn>,
    prefix: Prefix,
) {
    if let Some(o) = origin {
        if let Some(prefixes) = origins.get_mut(&o) {
            if let Some(n) = prefixes.get_mut(&prefix) {
                *n -= 1;
                if *n == 0 {
                    prefixes.remove(&prefix);
                }
            }
            if prefixes.is_empty() {
                origins.remove(&o);
            }
        }
    }
}

/// `prefix` truncated to `len` bits (host bits re-masked).
fn truncate(p: &Prefix, len: u8) -> Prefix {
    match p.addr() {
        std::net::IpAddr::V4(a) => Prefix::v4(a, len.min(32)),
        std::net::IpAddr::V6(a) => Prefix::v6(a, len.min(128)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::UpdateBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn vp(n: u32) -> VpId {
        VpId::from_asn(Asn(n))
    }

    fn ann(v: u32, t_ms: u64, pfx: &str, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(vp(v), pfx.parse().unwrap())
            .at(Timestamp::from_millis(t_ms))
            .path(path.iter().copied())
            .build()
    }

    fn wd(v: u32, t_ms: u64, pfx: &str) -> BgpUpdate {
        UpdateBuilder::withdraw(vp(v), pfx.parse().unwrap())
            .at(Timestamp::from_millis(t_ms))
            .build()
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            shard_width_ms: 1_000,
            snapshot_every_shards: 2,
            ..StoreConfig::default()
        }
    }

    /// Unique scratch dir per test invocation (no tempfile dep).
    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "gill-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn live_lookup_exact_lpm_more_specific() {
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(ann(1, 20, "10.1.0.0/16", &[1, 2, 4]));
        s.ingest(ann(2, 30, "10.1.0.0/16", &[2, 9, 4]));

        let exact = s.lookup(&"10.1.0.0/16".parse().unwrap(), MatchMode::Exact, None);
        assert_eq!(exact.len(), 2);

        let lpm = s.lookup(&"10.1.2.0/24".parse().unwrap(), MatchMode::Longest, None);
        assert_eq!(lpm.len(), 2, "both VPs hold 10.1.0.0/16");
        assert!(lpm
            .iter()
            .all(|r| r.prefix == "10.1.0.0/16".parse().unwrap()));

        // VP 2 has no /16-covering route for 10.9.0.0 — LPM must fall back
        // to nothing (it never announced 10.0.0.0/8).
        let lpm2 = s.lookup(
            &"10.9.0.0/24".parse().unwrap(),
            MatchMode::Longest,
            Some(vp(2)),
        );
        assert!(lpm2.is_empty());
        let lpm1 = s.lookup(
            &"10.9.0.0/24".parse().unwrap(),
            MatchMode::Longest,
            Some(vp(1)),
        );
        assert_eq!(lpm1.len(), 1);
        assert_eq!(lpm1[0].prefix, "10.0.0.0/8".parse().unwrap());

        let ms = s.lookup(
            &"10.0.0.0/8".parse().unwrap(),
            MatchMode::MoreSpecific,
            None,
        );
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn withdraw_retracts_live_route_and_origin() {
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(ann(2, 11, "10.0.0.0/8", &[2, 3]));
        assert_eq!(
            s.originated(Asn(3)),
            vec![("10.0.0.0/8".parse().unwrap(), 2)]
        );

        s.ingest(wd(1, 20, "10.0.0.0/8"));
        let left = s.lookup(&"10.0.0.0/8".parse().unwrap(), MatchMode::Exact, None);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].vp, vp(2));
        assert_eq!(
            s.originated(Asn(3)),
            vec![("10.0.0.0/8".parse().unwrap(), 1)]
        );

        s.ingest(wd(2, 21, "10.0.0.0/8"));
        assert!(s
            .lookup(&"10.0.0.0/8".parse().unwrap(), MatchMode::Exact, None)
            .is_empty());
        assert!(s.originated(Asn(3)).is_empty());
        assert_eq!(s.stats().live_prefixes, 0);
    }

    #[test]
    fn origin_change_moves_the_index() {
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(ann(1, 20, "10.0.0.0/8", &[1, 9, 7])); // origin 3 → 7
        assert!(s.originated(Asn(3)).is_empty());
        assert_eq!(s.originated(Asn(7)).len(), 1);
    }

    #[test]
    fn add_path_routes_are_distinct() {
        let mut s = RouteStore::new(small_cfg());
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        let mk = |id: u32, path: &[u32], t: u64| {
            UpdateBuilder::announce(vp(1), p)
                .at(Timestamp::from_millis(t))
                .path(path.iter().copied())
                .path_id(id)
                .build()
        };
        s.ingest(mk(1, &[1, 2, 3], 10));
        s.ingest(mk(2, &[1, 9, 3], 20));
        // both RFC 7911 routes are live simultaneously
        assert_eq!(s.lookup(&p, MatchMode::Exact, None).len(), 2);
        let rib = s.rib_at(vp(1), Timestamp::from_millis(100)).unwrap();
        assert_eq!(rib.len(), 2);
        assert!(rib.get_path(&p, Some(1)).is_some());
        assert!(rib.get_path(&p, Some(2)).is_some());
        // withdrawing one path id retracts only that route
        s.ingest(
            UpdateBuilder::withdraw(vp(1), p)
                .at(Timestamp::from_millis(30))
                .path_id(1)
                .build(),
        );
        assert_eq!(s.lookup(&p, MatchMode::Exact, None).len(), 1);
        let rib = s.rib_at(vp(1), Timestamp::from_millis(100)).unwrap();
        assert!(rib.get_path(&p, Some(1)).is_none());
        assert!(rib.get_path(&p, Some(2)).is_some());
        // historical lookup before the withdrawal still sees both
        assert_eq!(
            s.lookup_at(&p, MatchMode::Exact, None, Timestamp::from_millis(25))
                .len(),
            2
        );
    }

    #[test]
    fn seal_and_reload_keeps_v6_and_path_ids() {
        let dir = scratch("reload-v6");
        let p6: Prefix = "2001:db8:1::/48".parse().unwrap();
        let mut a = RouteStore::new(small_cfg());
        a.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        a.ingest(
            UpdateBuilder::announce(vp(1), p6)
                .at(Timestamp::from_millis(20))
                .path([1, 5, 6])
                .path_id(9)
                .build(),
        );
        a.seal_all_into(&dir).unwrap().unwrap();

        let mut b = RouteStore::new(small_cfg());
        assert_eq!(b.load_dir(&dir).unwrap(), 2);
        assert_eq!(a.lane_updates(vp(1)), b.lane_updates(vp(1)));
        let rib = b.rib_at(vp(1), Timestamp::from_millis(100)).unwrap();
        assert!(rib.get_path(&p6, Some(9)).is_some());
        assert_eq!(
            b.lookup(&p6, MatchMode::Exact, None).len(),
            1,
            "v6 route survives the reload into the live table"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rib_at_equals_sequential_replay() {
        let mut s = RouteStore::new(small_cfg());
        let mut log = Vec::new();
        // 40 updates spanning 20 s → ~10 snapshot windows per VP
        for i in 0..40u64 {
            let u = if i % 7 == 3 {
                wd(
                    1,
                    i * 500,
                    if i % 2 == 0 {
                        "10.0.0.0/8"
                    } else {
                        "10.1.0.0/16"
                    },
                )
            } else {
                ann(
                    1,
                    i * 500,
                    if i % 2 == 0 {
                        "10.0.0.0/8"
                    } else {
                        "10.1.0.0/16"
                    },
                    &[1, (i % 5 + 2) as u32, 9],
                )
            };
            log.push(u.clone());
            s.ingest(u);
        }
        for probe_ms in [0, 499, 500, 3_200, 9_999, 20_000] {
            let got = s.rib_at(vp(1), Timestamp::from_millis(probe_ms)).unwrap();
            let mut want = Rib::new();
            for u in &log {
                if u.time.as_millis() <= probe_ms {
                    let mut u = u.clone();
                    want.apply(&mut u);
                }
            }
            assert_eq!(got.len(), want.len(), "at t={probe_ms}");
            for (p, e) in want.iter() {
                assert_eq!(got.get(p), Some(e), "at t={probe_ms} prefix {p}");
            }
        }
        // snapshots actually exist and bound the replay
        assert!(s.stats().snapshots >= 4);
        let depth = s
            .replay_depth(vp(1), Timestamp::from_millis(20_000))
            .unwrap();
        assert!(depth < 40, "replay depth {depth} must be bounded");
    }

    #[test]
    fn lookup_at_reads_history() {
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 1_000, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(wd(1, 5_000, "10.0.0.0/8"));
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(
            s.lookup_at(&p, MatchMode::Exact, None, Timestamp::from_millis(2_000))
                .len(),
            1
        );
        assert!(s
            .lookup_at(&p, MatchMode::Exact, None, Timestamp::from_millis(6_000))
            .is_empty());
        assert!(s.lookup(&p, MatchMode::Exact, None).is_empty());
    }

    #[test]
    fn updates_in_range_uses_shards() {
        let mut s = RouteStore::new(small_cfg());
        for i in 0..10u64 {
            s.ingest(ann(1, i * 1_000, "10.0.0.0/8", &[1, 2, 3]));
            s.ingest(ann(2, i * 1_000 + 1, "10.1.0.0/16", &[2, 3, 4]));
        }
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let all = s.updates_in_range(
            Some(&p8),
            JoinMode::Exact,
            None,
            Timestamp::ZERO,
            Timestamp::from_millis(u64::MAX / 2),
        );
        assert_eq!(all.len(), 10);
        let mid = s.updates_in_range(
            Some(&p8),
            JoinMode::Exact,
            None,
            Timestamp::from_millis(3_000),
            Timestamp::from_millis(5_000),
        );
        assert_eq!(mid.len(), 3);
        // covered join from the /8 catches the /16 updates too: the /8s at
        // 3000/4000/5000 plus the /16s at 3001/4001 (5001 is out of range)
        let cov = s.updates_in_range(
            Some(&p8),
            JoinMode::Covered,
            None,
            Timestamp::from_millis(3_000),
            Timestamp::from_millis(5_000),
        );
        assert_eq!(cov.len(), 5);
        // vp filter
        let v2 = s.updates_in_range(
            None,
            JoinMode::Exact,
            Some(vp(2)),
            Timestamp::ZERO,
            Timestamp::from_millis(u64::MAX / 2),
        );
        assert_eq!(v2.len(), 10);
        // times are ordered
        assert!(v2.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn out_of_order_timestamps_stay_queryable() {
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 5_000, "10.0.0.0/8", &[1, 2, 3]));
        // clock steps backwards; effective time clamps to 5 000
        s.ingest(ann(1, 4_000, "10.0.0.0/8", &[1, 9, 3]));
        let rib = s.rib_at(vp(1), Timestamp::from_millis(5_000)).unwrap();
        // replay order is arrival order: the second announce wins
        assert_eq!(
            rib.get(&"10.0.0.0/8".parse().unwrap()).unwrap().path,
            bgp_types::AsPath::from_u32s([1, 9, 3])
        );
    }

    #[test]
    fn stats_count_everything() {
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 0, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(ann(2, 2_500, "10.1.0.0/16", &[2, 3]));
        let st = s.stats();
        assert_eq!(st.updates, 2);
        assert_eq!(st.vps, 2);
        assert_eq!(st.shards, 2);
        assert_eq!(st.live_prefixes, 2);
        assert_eq!(s.vps().len(), 2);
    }

    #[test]
    fn interning_dedups_repeated_attributes() {
        let mut s = RouteStore::new(small_cfg());
        for i in 0..100u64 {
            s.ingest(ann(1, i * 10, "10.0.0.0/8", &[1, 2, 3]));
        }
        let m = s.mem_stats();
        // one distinct path (+ empty), one prefix, heavy reuse
        assert_eq!(m.arena_paths, 2);
        assert_eq!(m.arena_prefixes, 1);
        assert!(m.dedup_ratio > 10.0, "dedup ratio {}", m.dedup_ratio);
        assert!(m.bytes_resident > 0);
    }

    #[test]
    fn mem_cap_sheds_deterministically() {
        let cap = {
            // measure bytes after 10 updates, cap there, re-ingest longer
            let mut probe = RouteStore::new(small_cfg());
            for i in 0..10u64 {
                probe.ingest(ann(1, i * 10, "10.0.0.0/8", &[1, (i % 4) as u32 + 2, 9]));
            }
            probe.approx_bytes()
        };
        let mut s = RouteStore::new(StoreConfig {
            mem_cap_bytes: cap,
            ..small_cfg()
        });
        for i in 0..50u64 {
            s.ingest(ann(1, i * 10, "10.0.0.0/8", &[1, (i % 4) as u32 + 2, 9]));
        }
        let m = s.mem_stats();
        assert!(m.shed_updates > 0, "cap must shed");
        assert_eq!(s.stats().updates + m.shed_updates, 50);
        // the store still answers queries with what it kept
        assert_eq!(
            s.lookup(&"10.0.0.0/8".parse().unwrap(), MatchMode::Exact, None)
                .len(),
            1
        );
    }

    #[test]
    fn seal_and_reload_reproduces_store() {
        let dir = scratch("reload");
        let mk_stream = || {
            let mut v = Vec::new();
            for i in 0..60u64 {
                if i % 9 == 4 {
                    v.push(wd(1 + (i % 3) as u32, i * 400, "10.0.0.0/8"));
                } else {
                    v.push(ann(
                        1 + (i % 3) as u32,
                        i * 400,
                        if i % 2 == 0 {
                            "10.0.0.0/8"
                        } else {
                            "10.1.0.0/16"
                        },
                        &[1, (i % 5) as u32 + 2, 9],
                    ));
                }
            }
            v
        };
        let mut a = RouteStore::new(small_cfg());
        for u in mk_stream() {
            a.ingest(u);
        }
        // two seals: complete shards first, remainder on "shutdown"
        let p1 = a.seal_complete_into(&dir).unwrap();
        assert!(p1.is_some(), "aged-out shards must seal");
        let p2 = a.seal_all_into(&dir).unwrap();
        assert!(p2.is_some(), "tail must seal");
        assert!(a.seal_all_into(&dir).unwrap().is_none(), "nothing left");

        let mut b = RouteStore::new(small_cfg());
        let n = b.load_dir(&dir).unwrap();
        assert_eq!(n, 60);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.vps(), b.vps());
        assert_eq!(a.shard_counts(), b.shard_counts());
        for v in [vp(1), vp(2), vp(3)] {
            assert_eq!(a.lane_updates(v), b.lane_updates(v), "lane {v}");
            for t in [0, 5_000, 12_345, 24_000] {
                let (ra, rb) = (
                    a.rib_at(v, Timestamp::from_millis(t)).unwrap(),
                    b.rib_at(v, Timestamp::from_millis(t)).unwrap(),
                );
                assert_eq!(ra.len(), rb.len());
                for (p, e) in ra.iter() {
                    assert_eq!(rb.get(p), Some(e), "vp {v} t {t} prefix {p}");
                }
            }
        }
        let range = |s: &RouteStore| {
            s.updates_in_range(
                None,
                JoinMode::Exact,
                None,
                Timestamp::ZERO,
                Timestamp::from_millis(u64::MAX / 2),
            )
        };
        assert_eq!(range(&a), range(&b));
        // further ingest + seal continues the sequence
        b.ingest(ann(1, 30_000, "10.2.0.0/16", &[1, 7]));
        let p3 = b.seal_all_into(&dir).unwrap().unwrap();
        assert!(
            p3.file_name().unwrap().to_str().unwrap()
                > p2.unwrap().file_name().unwrap().to_str().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_fails_load() {
        let dir = scratch("corrupt");
        let mut s = RouteStore::new(small_cfg());
        s.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        let path = s.seal_all_into(&dir).unwrap().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = RouteStore::new(small_cfg()).load_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
