//! A small hand-rolled JSON encoder and parser.
//!
//! The serving layer returns JSON to looking-glass clients; no JSON crate
//! exists in the offline dependency set, and the value shapes we emit are
//! simple (objects, arrays, strings, integers, a few floats), so a ~100-line
//! encoder is cheaper than a shim. Encoding is strict RFC 8259: strings are
//! escaped, non-finite floats are rejected (JSON has no NaN/Infinity), and
//! integers are emitted verbatim up to the full `u64`/`i64` range.
//!
//! [`Json::parse`] is the matching strict decoder (the stream layer uses it
//! to verify frames round-trip): no trailing content, no unescaped control
//! characters, no leading zeros, surrogate pairs validated, and a recursion
//! depth cap so hostile input cannot blow the stack.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers timestamps, counters, ASNs).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; must be finite at encode time.
    F64(f64),
    /// A string (escaped on encode).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as given (deterministic output).
    Obj(Vec<(String, Json)>),
}

/// Error returned when a value cannot be represented in JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json encode error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes the value as a compact JSON string.
    pub fn encode(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Parses a JSON document (strict RFC 8259; the whole input must be one
    /// value plus optional surrounding whitespace). Non-negative integers
    /// parse as [`Json::U64`], negative ones as [`Json::I64`], and anything
    /// with a fraction or exponent as [`Json::F64`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing content at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn encode_into(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if !x.is_finite() {
                    return Err(JsonError(format!("non-finite float {x}")));
                }
                // `{}` on f64 never prints exponent notation for the
                // magnitudes we emit and round-trips the value.
                let s = format!("{x}");
                out.push_str(&s);
                // "1" would re-parse as an integer; keep floats floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

fn fmt_u64(n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

/// Nesting depth cap for the parser (far above any frame we emit).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // the input is a &str, so slices on char runs are valid UTF-8
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // high surrogate: require \uXXXX low surrogate
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character")),
                Some(_) => unreachable!("fast path consumes plain bytes"),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // integer part: "0" or nonzero digit followed by digits
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if float {
            let x: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
            if !x.is_finite() {
                return Err(self.err("number out of range"));
            }
            Ok(Json::F64(x))
        } else if neg {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    // Golden tests: every expectation is the exact byte sequence the
    // encoder must produce — clients (and the CI smoke test's well-formed
    // check) depend on the output being stable.

    #[test]
    fn golden_scalars() {
        assert_eq!(Json::Null.encode().unwrap(), "null");
        assert_eq!(Json::Bool(true).encode().unwrap(), "true");
        assert_eq!(Json::Bool(false).encode().unwrap(), "false");
        assert_eq!(Json::U64(0).encode().unwrap(), "0");
        assert_eq!(Json::I64(-42).encode().unwrap(), "-42");
        assert_eq!(Json::F64(1.5).encode().unwrap(), "1.5");
    }

    #[test]
    fn golden_u64_boundaries() {
        assert_eq!(
            Json::U64(u64::MAX).encode().unwrap(),
            "18446744073709551615"
        );
        assert_eq!(
            Json::U64(u64::MAX - 1).encode().unwrap(),
            "18446744073709551614"
        );
        assert_eq!(Json::U64(1).encode().unwrap(), "1");
        assert_eq!(
            Json::I64(i64::MIN).encode().unwrap(),
            "-9223372036854775808"
        );
        assert_eq!(Json::I64(i64::MAX).encode().unwrap(), "9223372036854775807");
    }

    #[test]
    fn golden_float_formatting() {
        // integral floats keep a decimal point so they re-parse as floats
        assert_eq!(Json::F64(2.0).encode().unwrap(), "2.0");
        assert_eq!(Json::F64(0.0).encode().unwrap(), "0.0");
        assert_eq!(Json::F64(-3.0).encode().unwrap(), "-3.0");
        assert_eq!(Json::F64(0.25).encode().unwrap(), "0.25");
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(Json::F64(f64::NAN).encode().is_err());
        assert!(Json::F64(f64::INFINITY).encode().is_err());
        assert!(Json::F64(f64::NEG_INFINITY).encode().is_err());
        // ... even when nested deep inside a structure
        let nested = Json::obj([("a", Json::Arr(vec![Json::F64(f64::NAN)]))]);
        assert!(nested.encode().is_err());
    }

    #[test]
    fn golden_string_escaping() {
        assert_eq!(Json::str("plain").encode().unwrap(), r#""plain""#);
        assert_eq!(Json::str("say \"hi\"").encode().unwrap(), r#""say \"hi\"""#);
        assert_eq!(Json::str("a\\b").encode().unwrap(), r#""a\\b""#);
        assert_eq!(
            Json::str("line\nbreak").encode().unwrap(),
            r#""line\nbreak""#
        );
        assert_eq!(Json::str("tab\there").encode().unwrap(), r#""tab\there""#);
        assert_eq!(Json::str("cr\rlf").encode().unwrap(), r#""cr\rlf""#);
        assert_eq!(Json::str("\u{08}\u{0c}").encode().unwrap(), r#""\b\f""#);
        // other control characters use \u00xx
        assert_eq!(
            Json::str("\u{01}\u{1f}").encode().unwrap(),
            r#""\u0001\u001f""#
        );
        // non-ASCII passes through unescaped (JSON is UTF-8)
        assert_eq!(
            Json::str("prefix→route").encode().unwrap(),
            "\"prefix→route\""
        );
    }

    #[test]
    fn golden_arrays_and_objects() {
        assert_eq!(Json::Arr(vec![]).encode().unwrap(), "[]");
        assert_eq!(Json::Obj(vec![]).encode().unwrap(), "{}");
        let v = Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)]);
        assert_eq!(v.encode().unwrap(), "[1,2,3]");
        let o = Json::obj([
            ("vp", Json::str("AS65001")),
            ("prefix", Json::str("10.0.0.0/24")),
            ("hops", Json::Arr(vec![Json::U64(65001), Json::U64(2)])),
        ]);
        assert_eq!(
            o.encode().unwrap(),
            r#"{"vp":"AS65001","prefix":"10.0.0.0/24","hops":[65001,2]}"#
        );
    }

    #[test]
    fn golden_nested_structures() {
        let v = Json::obj([
            (
                "routes",
                Json::Arr(vec![
                    Json::obj([("path", Json::Arr(vec![Json::U64(1)]))]),
                    Json::obj([("path", Json::Arr(vec![]))]),
                ]),
            ),
            ("count", Json::U64(2)),
            ("truncated", Json::Bool(false)),
            ("note", Json::Null),
        ]);
        assert_eq!(
            v.encode().unwrap(),
            r#"{"routes":[{"path":[1]},{"path":[]}],"count":2,"truncated":false,"note":null}"#
        );
    }

    #[test]
    fn object_key_order_is_preserved() {
        let a = Json::obj([("b", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(a.encode().unwrap(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("0").unwrap(), Json::U64(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::F64(-0.25));
    }

    #[test]
    fn parse_strings_and_escapes() {
        assert_eq!(Json::parse(r#""plain""#).unwrap(), Json::str("plain"));
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\te""#).unwrap(),
            Json::str("a\"b\\c\nd\te")
        );
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::str("A"));
        // surrogate pair → one astral char
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        assert_eq!(
            Json::parse("\"prefix→route\"").unwrap(),
            Json::str("prefix→route")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // lone high surrogate
        assert!(Json::parse(r#""\udc00""#).is_err()); // lone low surrogate
        assert!(Json::parse("\"raw\ncontrol\"").is_err());
        assert!(Json::parse(r#""\x""#).is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_structures() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(
            Json::parse("[1, 2 ,3]").unwrap(),
            Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)])
        );
        assert_eq!(
            Json::parse(r#"{"b":1,"a":[true,null]}"#).unwrap(),
            Json::Obj(vec![
                ("b".into(), Json::U64(1)),
                ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ])
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            " ",
            "{",
            "[1,",
            "[1,]",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "01",
            "1.",
            "1e",
            "+1",
            "truee",
            "[1] 2",
            "nul",
            "--1",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_depth_capped() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn encode_parse_roundtrip() {
        let v = Json::obj([
            ("vp", Json::str("AS65001")),
            ("n", Json::U64(7)),
            ("neg", Json::I64(-3)),
            ("f", Json::F64(2.5)),
            (
                "routes",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("a\"b")]),
            ),
        ]);
        let text = v.encode().unwrap();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
