//! A small hand-rolled JSON encoder.
//!
//! The serving layer returns JSON to looking-glass clients; no JSON crate
//! exists in the offline dependency set, and the value shapes we emit are
//! simple (objects, arrays, strings, integers, a few floats), so a ~100-line
//! encoder is cheaper than a shim. Encoding is strict RFC 8259: strings are
//! escaped, non-finite floats are rejected (JSON has no NaN/Infinity), and
//! integers are emitted verbatim up to the full `u64`/`i64` range.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers timestamps, counters, ASNs).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; must be finite at encode time.
    F64(f64),
    /// A string (escaped on encode).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as given (deterministic output).
    Obj(Vec<(String, Json)>),
}

/// Error returned when a value cannot be represented in JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json encode error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes the value as a compact JSON string.
    pub fn encode(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    fn encode_into(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if !x.is_finite() {
                    return Err(JsonError(format!("non-finite float {x}")));
                }
                // `{}` on f64 never prints exponent notation for the
                // magnitudes we emit and round-trips the value.
                let s = format!("{x}");
                out.push_str(&s);
                // "1" would re-parse as an integer; keep floats floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

fn fmt_u64(n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    // Golden tests: every expectation is the exact byte sequence the
    // encoder must produce — clients (and the CI smoke test's well-formed
    // check) depend on the output being stable.

    #[test]
    fn golden_scalars() {
        assert_eq!(Json::Null.encode().unwrap(), "null");
        assert_eq!(Json::Bool(true).encode().unwrap(), "true");
        assert_eq!(Json::Bool(false).encode().unwrap(), "false");
        assert_eq!(Json::U64(0).encode().unwrap(), "0");
        assert_eq!(Json::I64(-42).encode().unwrap(), "-42");
        assert_eq!(Json::F64(1.5).encode().unwrap(), "1.5");
    }

    #[test]
    fn golden_u64_boundaries() {
        assert_eq!(
            Json::U64(u64::MAX).encode().unwrap(),
            "18446744073709551615"
        );
        assert_eq!(
            Json::U64(u64::MAX - 1).encode().unwrap(),
            "18446744073709551614"
        );
        assert_eq!(Json::U64(1).encode().unwrap(), "1");
        assert_eq!(
            Json::I64(i64::MIN).encode().unwrap(),
            "-9223372036854775808"
        );
        assert_eq!(Json::I64(i64::MAX).encode().unwrap(), "9223372036854775807");
    }

    #[test]
    fn golden_float_formatting() {
        // integral floats keep a decimal point so they re-parse as floats
        assert_eq!(Json::F64(2.0).encode().unwrap(), "2.0");
        assert_eq!(Json::F64(0.0).encode().unwrap(), "0.0");
        assert_eq!(Json::F64(-3.0).encode().unwrap(), "-3.0");
        assert_eq!(Json::F64(0.25).encode().unwrap(), "0.25");
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(Json::F64(f64::NAN).encode().is_err());
        assert!(Json::F64(f64::INFINITY).encode().is_err());
        assert!(Json::F64(f64::NEG_INFINITY).encode().is_err());
        // ... even when nested deep inside a structure
        let nested = Json::obj([("a", Json::Arr(vec![Json::F64(f64::NAN)]))]);
        assert!(nested.encode().is_err());
    }

    #[test]
    fn golden_string_escaping() {
        assert_eq!(Json::str("plain").encode().unwrap(), r#""plain""#);
        assert_eq!(Json::str("say \"hi\"").encode().unwrap(), r#""say \"hi\"""#);
        assert_eq!(Json::str("a\\b").encode().unwrap(), r#""a\\b""#);
        assert_eq!(
            Json::str("line\nbreak").encode().unwrap(),
            r#""line\nbreak""#
        );
        assert_eq!(Json::str("tab\there").encode().unwrap(), r#""tab\there""#);
        assert_eq!(Json::str("cr\rlf").encode().unwrap(), r#""cr\rlf""#);
        assert_eq!(Json::str("\u{08}\u{0c}").encode().unwrap(), r#""\b\f""#);
        // other control characters use \u00xx
        assert_eq!(
            Json::str("\u{01}\u{1f}").encode().unwrap(),
            r#""\u0001\u001f""#
        );
        // non-ASCII passes through unescaped (JSON is UTF-8)
        assert_eq!(
            Json::str("prefix→route").encode().unwrap(),
            "\"prefix→route\""
        );
    }

    #[test]
    fn golden_arrays_and_objects() {
        assert_eq!(Json::Arr(vec![]).encode().unwrap(), "[]");
        assert_eq!(Json::Obj(vec![]).encode().unwrap(), "{}");
        let v = Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)]);
        assert_eq!(v.encode().unwrap(), "[1,2,3]");
        let o = Json::obj([
            ("vp", Json::str("AS65001")),
            ("prefix", Json::str("10.0.0.0/24")),
            ("hops", Json::Arr(vec![Json::U64(65001), Json::U64(2)])),
        ]);
        assert_eq!(
            o.encode().unwrap(),
            r#"{"vp":"AS65001","prefix":"10.0.0.0/24","hops":[65001,2]}"#
        );
    }

    #[test]
    fn golden_nested_structures() {
        let v = Json::obj([
            (
                "routes",
                Json::Arr(vec![
                    Json::obj([("path", Json::Arr(vec![Json::U64(1)]))]),
                    Json::obj([("path", Json::Arr(vec![]))]),
                ]),
            ),
            ("count", Json::U64(2)),
            ("truncated", Json::Bool(false)),
            ("note", Json::Null),
        ]);
        assert_eq!(
            v.encode().unwrap(),
            r#"{"routes":[{"path":[1]},{"path":[]}],"count":2,"truncated":false,"note":null}"#
        );
    }

    #[test]
    fn object_key_order_is_preserved() {
        let a = Json::obj([("b", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(a.encode().unwrap(), r#"{"b":1,"a":2}"#);
    }
}
