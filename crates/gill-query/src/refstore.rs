//! The reference route store: the original, straightforward implementation
//! kept as the behavioural oracle for the interned store.
//!
//! [`ReferenceStore`] stores every update as an owned [`BgpUpdate`], clones
//! full [`Rib`]s for snapshots, and indexes each time shard with its own
//! [`PrefixTrie`]. It is simple to audit but memory-hungry — exactly the
//! baseline the arena-interned [`RouteStore`](crate::RouteStore) is measured
//! against. The equivalence tests in `tests/store_equivalence.rs` assert
//! that both stores answer every query identically on the same stream, and
//! `bench_store` reports the updates-per-GB ratio between them.

use crate::store::{RouteView, StoreConfig, StoreStats};
use crate::{JoinMode, MatchMode};
use bgp_types::{Asn, BgpUpdate, Prefix, PrefixTrie, Rib, RibEntry, Timestamp, UpdateKind, VpId};
use std::collections::{BTreeMap, HashMap};

/// Reference to one update in a VP lane (shard indexes point here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UpdateRef {
    vp: VpId,
    idx: u32,
}

/// A per-VP RIB snapshot: `rib` reflects exactly `lane.updates[..idx]`.
struct Snapshot {
    idx: usize,
    rib: Rib,
}

/// One VP's slice of the log.
struct VpLane {
    /// Updates in arrival order; `Rib::apply` has annotated each one's
    /// implicit-withdrawal sets, so the log doubles as analysis input.
    updates: Vec<BgpUpdate>,
    /// Effective (monotone non-decreasing) timestamp per update: the
    /// running max of arrival timestamps, which keeps binary search sound
    /// even if a peer's clock steps backwards briefly.
    times: Vec<u64>,
    /// RIB after every update in `updates`.
    rib: Rib,
    /// Cadence snapshots, ascending by `idx`.
    snapshots: Vec<Snapshot>,
    /// Snapshot window (`shard_id / snapshot_every_shards`) of the last
    /// ingested update.
    last_window: Option<u64>,
}

impl VpLane {
    fn new() -> Self {
        VpLane {
            updates: Vec::new(),
            times: Vec::new(),
            rib: Rib::new(),
            snapshots: Vec::new(),
            last_window: None,
        }
    }

    /// Number of updates with effective time <= `t_ms`.
    fn count_until(&self, t_ms: u64) -> usize {
        self.times.partition_point(|&t| t <= t_ms)
    }

    /// Latest snapshot covering at most the first `k` updates.
    fn snapshot_before(&self, k: usize) -> Option<&Snapshot> {
        let i = self.snapshots.partition_point(|s| s.idx <= k);
        i.checked_sub(1).map(|i| &self.snapshots[i])
    }
}

/// One fixed-width time bucket: a per-prefix index of the updates whose
/// (effective) timestamps fall inside it.
struct Shard {
    index: PrefixTrie<Vec<UpdateRef>>,
    count: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: PrefixTrie::new(),
            count: 0,
        }
    }
}

/// The original owned-value route store, preserved as the oracle the
/// interned [`RouteStore`](crate::RouteStore) must stay bit-identical to.
pub struct ReferenceStore {
    cfg: StoreConfig,
    lanes: HashMap<VpId, VpLane>,
    /// VPs in first-seen order (stable output for `/vps`).
    vp_order: Vec<VpId>,
    shards: BTreeMap<u64, Shard>,
    /// prefix → (vp → live best route).
    live: PrefixTrie<BTreeMap<VpId, RibEntry>>,
    /// origin AS → (prefix → number of VPs currently routing it via that
    /// origin). Refcounted so withdrawals retract cleanly.
    origins: HashMap<Asn, BTreeMap<Prefix, usize>>,
    total: usize,
}

impl Default for ReferenceStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl ReferenceStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        ReferenceStore {
            cfg: cfg.clamped(),
            lanes: HashMap::new(),
            vp_order: Vec::new(),
            shards: BTreeMap::new(),
            live: PrefixTrie::new(),
            origins: HashMap::new(),
            total: 0,
        }
    }

    /// The configuration the store runs with.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Ingests one update (arrival order per VP is replay order).
    pub fn ingest(&mut self, update: BgpUpdate) {
        let vp = update.vp;
        let lane = match self.lanes.entry(vp) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.vp_order.push(vp);
                e.insert(VpLane::new())
            }
        };

        let eff_ms = update
            .time
            .as_millis()
            .max(lane.times.last().copied().unwrap_or(0));
        let shard_id = eff_ms / self.cfg.shard_width_ms;
        let window = shard_id / self.cfg.snapshot_every_shards;

        // Snapshot *before* applying the first update of a new cadence
        // window: the snapshot then covers exactly the updates of earlier
        // windows, so rib_at(t) for t inside this window replays only the
        // window's own updates.
        if let Some(last) = lane.last_window {
            if window > last {
                lane.snapshots.push(Snapshot {
                    idx: lane.updates.len(),
                    rib: lane.rib.clone(),
                });
            }
        }
        lane.last_window = Some(window);

        // Live RIB maintenance; `apply` also fills the update's
        // implicit-withdrawal sets, so the stored log is analysis-ready.
        let prev_entry = lane.rib.get(&update.prefix).cloned();
        let mut update = update;
        lane.rib.apply(&mut update);
        let new_entry = match update.kind {
            UpdateKind::Announce => lane.rib.get(&update.prefix).cloned(),
            UpdateKind::Withdraw => None,
        };
        let (prefix, kind) = (update.prefix, update.kind);
        let idx = lane.updates.len() as u32;
        lane.times.push(eff_ms);
        lane.updates.push(update);

        // Looking-glass + origin indexes (lane borrow released above).
        match kind {
            UpdateKind::Announce => {
                let entry = new_entry.expect("announce installs a route");
                if let Some(prev) = &prev_entry {
                    self.retract_origin(prev.path.origin(), prefix);
                }
                self.add_origin(entry.path.origin(), prefix);
                match self.live.get_mut(&prefix) {
                    Some(routes) => {
                        routes.insert(vp, entry);
                    }
                    None => {
                        self.live.insert(prefix, BTreeMap::from([(vp, entry)]));
                    }
                }
            }
            UpdateKind::Withdraw => {
                if let Some(prev) = &prev_entry {
                    self.retract_origin(prev.path.origin(), prefix);
                    if let Some(routes) = self.live.get_mut(&prefix) {
                        routes.remove(&vp);
                        if routes.is_empty() {
                            self.live.remove(&prefix);
                        }
                    }
                }
            }
        }

        // Shard index.
        let shard = self.shards.entry(shard_id).or_insert_with(Shard::new);
        shard.count += 1;
        match shard.index.get_mut(&prefix) {
            Some(refs) => refs.push(UpdateRef { vp, idx }),
            None => {
                shard.index.insert(prefix, vec![UpdateRef { vp, idx }]);
            }
        }
        self.total += 1;
    }

    fn add_origin(&mut self, origin: Option<Asn>, prefix: Prefix) {
        if let Some(o) = origin {
            *self
                .origins
                .entry(o)
                .or_default()
                .entry(prefix)
                .or_insert(0) += 1;
        }
    }

    fn retract_origin(&mut self, origin: Option<Asn>, prefix: Prefix) {
        if let Some(o) = origin {
            if let Some(prefixes) = self.origins.get_mut(&o) {
                if let Some(n) = prefixes.get_mut(&prefix) {
                    *n -= 1;
                    if *n == 0 {
                        prefixes.remove(&prefix);
                    }
                }
                if prefixes.is_empty() {
                    self.origins.remove(&o);
                }
            }
        }
    }

    /// VPs in first-seen order with their update counts.
    pub fn vps(&self) -> Vec<(VpId, usize)> {
        self.vp_order
            .iter()
            .map(|vp| (*vp, self.lanes[vp].updates.len()))
            .collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            updates: self.total,
            vps: self.lanes.len(),
            shards: self.shards.len(),
            snapshots: self.lanes.values().map(|l| l.snapshots.len()).sum(),
            live_prefixes: self.live.len(),
        }
    }

    /// The RIB VP `vp` held at time `t`: latest snapshot at or before `t`,
    /// plus replay of the (bounded) tail. Returns `None` for an unknown VP.
    pub fn rib_at(&self, vp: VpId, t: Timestamp) -> Option<Rib> {
        let lane = self.lanes.get(&vp)?;
        let k = lane.count_until(t.as_millis());
        let (mut rib, start) = match lane.snapshot_before(k) {
            Some(s) => (s.rib.clone(), s.idx),
            None => (Rib::new(), 0),
        };
        for u in &lane.updates[start..k] {
            let mut u = u.clone();
            rib.apply(&mut u);
        }
        Some(rib)
    }

    /// Number of routes `vp` held at `t` (see `RouteStore::rib_len_at`).
    pub fn rib_len_at(&self, vp: VpId, t: Timestamp) -> Option<usize> {
        self.rib_at(vp, t).map(|r| r.len())
    }

    /// Number of updates `rib_at` would replay after the snapshot (used by
    /// the benchmark to report bounded-replay depth).
    pub fn replay_depth(&self, vp: VpId, t: Timestamp) -> Option<usize> {
        let lane = self.lanes.get(&vp)?;
        let k = lane.count_until(t.as_millis());
        let start = lane.snapshot_before(k).map(|s| s.idx).unwrap_or(0);
        Some(k - start)
    }

    /// The latest RIB of `vp`.
    pub fn rib_now(&self, vp: VpId) -> Option<&Rib> {
        self.lanes.get(&vp).map(|l| &l.rib)
    }

    /// Looking-glass lookup against the *live* table.
    ///
    /// `vp = None` queries across all VPs. LPM returns the most specific
    /// covering prefix that still has a route from the selected view;
    /// more-specifics enumerates the covered subtree.
    pub fn lookup(&self, prefix: &Prefix, mode: MatchMode, vp: Option<VpId>) -> Vec<RouteView> {
        let keep = |routes: &BTreeMap<VpId, RibEntry>, pfx: &Prefix, out: &mut Vec<RouteView>| {
            for (v, entry) in routes {
                if vp.is_none_or(|want| *v == want) {
                    out.push(RouteView {
                        vp: *v,
                        prefix: *pfx,
                        entry: entry.clone(),
                    });
                }
            }
        };
        let mut out = Vec::new();
        match mode {
            MatchMode::Exact => {
                if let Some(routes) = self.live.get(prefix) {
                    keep(routes, prefix, &mut out);
                }
            }
            MatchMode::Longest => {
                // walk up from the exact node: longest_match only sees the
                // best covering node, but that node may have no route from
                // the requested VP — so widen until one matches.
                let mut probe = *prefix;
                while let Some((pfx, routes)) = self.live.longest_match(&probe) {
                    keep(routes, pfx, &mut out);
                    if !out.is_empty() || pfx.is_empty() {
                        break;
                    }
                    // retry strictly above the rejected match
                    probe = truncate(pfx, pfx.len() - 1);
                }
            }
            MatchMode::MoreSpecific => {
                for (pfx, routes) in self.live.more_specifics(prefix) {
                    keep(routes, pfx, &mut out);
                }
            }
        }
        out.sort_by_key(|a| (a.prefix, a.vp));
        out
    }

    /// Historical lookup: like [`ReferenceStore::lookup`] but against the
    /// RIBs at time `t`, reconstructed per VP via snapshot + bounded replay.
    pub fn lookup_at(
        &self,
        prefix: &Prefix,
        mode: MatchMode,
        vp: Option<VpId>,
        t: Timestamp,
    ) -> Vec<RouteView> {
        let vps: Vec<VpId> = match vp {
            Some(v) => vec![v],
            None => self.vp_order.clone(),
        };
        let mut out = Vec::new();
        for v in vps {
            let Some(rib) = self.rib_at(v, t) else {
                continue;
            };
            let trie: PrefixTrie<RibEntry> = rib.iter().map(|(p, e)| (*p, e.clone())).collect();
            match mode {
                MatchMode::Exact => {
                    if let Some(e) = trie.get(prefix) {
                        out.push(RouteView {
                            vp: v,
                            prefix: *prefix,
                            entry: e.clone(),
                        });
                    }
                }
                MatchMode::Longest => {
                    if let Some((pfx, e)) = trie.longest_match(prefix) {
                        out.push(RouteView {
                            vp: v,
                            prefix: *pfx,
                            entry: e.clone(),
                        });
                    }
                }
                MatchMode::MoreSpecific => {
                    for (pfx, e) in trie.more_specifics(prefix) {
                        out.push(RouteView {
                            vp: v,
                            prefix: *pfx,
                            entry: e.clone(),
                        });
                    }
                }
            }
        }
        out.sort_by_key(|a| (a.prefix, a.vp));
        out
    }

    /// Updates touching `prefix` in `[from, to]`, via the shard indexes.
    ///
    /// `join` controls prefix matching: exact, or any stored prefix covered
    /// by the query (more-specifics). Results are in (time, vp, lane order).
    pub fn updates_in_range(
        &self,
        prefix: Option<&Prefix>,
        join: JoinMode,
        vp: Option<VpId>,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&BgpUpdate> {
        let (from_ms, to_ms) = (from.as_millis(), to.as_millis());
        if from_ms > to_ms {
            return Vec::new();
        }
        let first = from_ms / self.cfg.shard_width_ms;
        let last = to_ms / self.cfg.shard_width_ms;
        let mut refs: Vec<UpdateRef> = Vec::new();
        for (_, shard) in self.shards.range(first..=last) {
            match prefix {
                Some(p) => match join {
                    JoinMode::Exact => {
                        if let Some(rs) = shard.index.get(p) {
                            refs.extend(rs.iter().copied());
                        }
                    }
                    JoinMode::Covered => {
                        for (_, rs) in shard.index.more_specifics(p) {
                            refs.extend(rs.iter().copied());
                        }
                    }
                },
                None => {
                    for (_, rs) in shard.index.iter() {
                        refs.extend(rs.iter().copied());
                    }
                }
            }
        }
        let mut out: Vec<&BgpUpdate> = refs
            .into_iter()
            .filter(|r| vp.is_none_or(|want| r.vp == want))
            .filter_map(|r| {
                let lane = self.lanes.get(&r.vp)?;
                let t = *lane.times.get(r.idx as usize)?;
                (t >= from_ms && t <= to_ms).then(|| &lane.updates[r.idx as usize])
            })
            .collect();
        out.sort_by_key(|u| (u.time, u.vp, u.prefix));
        out
    }

    /// Prefixes currently originated by `asn`, with the number of VPs
    /// routing each via that origin.
    pub fn originated(&self, asn: Asn) -> Vec<(Prefix, usize)> {
        self.origins
            .get(&asn)
            .map(|m| m.iter().map(|(p, n)| (*p, *n)).collect())
            .unwrap_or_default()
    }

    /// All updates of one VP in arrival order (MRT export).
    pub fn lane_updates(&self, vp: VpId) -> Option<&[BgpUpdate]> {
        self.lanes.get(&vp).map(|l| l.updates.as_slice())
    }

    /// Per-VP RIBs at time `t` for every VP (TABLE_DUMP export).
    pub fn ribs_at(&self, t: Timestamp) -> HashMap<VpId, Rib> {
        self.vp_order
            .iter()
            .filter_map(|vp| self.rib_at(*vp, t).map(|r| (*vp, r)))
            .collect()
    }

    /// Occupancy per non-empty shard, ascending by shard id.
    pub fn shard_counts(&self) -> Vec<(u64, usize)> {
        self.shards.iter().map(|(id, s)| (*id, s.count)).collect()
    }

    /// The latest effective timestamp ingested (ZERO when empty).
    pub fn latest_time(&self) -> Timestamp {
        Timestamp::from_millis(
            self.lanes
                .values()
                .filter_map(|l| l.times.last().copied())
                .max()
                .unwrap_or(0),
        )
    }
}

/// `prefix` truncated to `len` bits (host bits re-masked).
fn truncate(p: &Prefix, len: u8) -> Prefix {
    match p.addr() {
        std::net::IpAddr::V4(a) => Prefix::v4(a, len.min(32)),
        std::net::IpAddr::V6(a) => Prefix::v6(a, len.min(128)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::UpdateBuilder;

    fn vp(n: u32) -> VpId {
        VpId::from_asn(Asn(n))
    }

    fn ann(v: u32, t_ms: u64, pfx: &str, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(vp(v), pfx.parse().unwrap())
            .at(Timestamp::from_millis(t_ms))
            .path(path.iter().copied())
            .build()
    }

    fn wd(v: u32, t_ms: u64, pfx: &str) -> BgpUpdate {
        UpdateBuilder::withdraw(vp(v), pfx.parse().unwrap())
            .at(Timestamp::from_millis(t_ms))
            .build()
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            shard_width_ms: 1_000,
            snapshot_every_shards: 2,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn live_lookup_exact_lpm_more_specific() {
        let mut s = ReferenceStore::new(small_cfg());
        s.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(ann(1, 20, "10.1.0.0/16", &[1, 2, 4]));
        s.ingest(ann(2, 30, "10.1.0.0/16", &[2, 9, 4]));

        let exact = s.lookup(&"10.1.0.0/16".parse().unwrap(), MatchMode::Exact, None);
        assert_eq!(exact.len(), 2);

        let lpm = s.lookup(&"10.1.2.0/24".parse().unwrap(), MatchMode::Longest, None);
        assert_eq!(lpm.len(), 2, "both VPs hold 10.1.0.0/16");

        let lpm2 = s.lookup(
            &"10.9.0.0/24".parse().unwrap(),
            MatchMode::Longest,
            Some(vp(2)),
        );
        assert!(lpm2.is_empty());
        let lpm1 = s.lookup(
            &"10.9.0.0/24".parse().unwrap(),
            MatchMode::Longest,
            Some(vp(1)),
        );
        assert_eq!(lpm1.len(), 1);
        assert_eq!(lpm1[0].prefix, "10.0.0.0/8".parse().unwrap());

        let ms = s.lookup(
            &"10.0.0.0/8".parse().unwrap(),
            MatchMode::MoreSpecific,
            None,
        );
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn withdraw_retracts_live_route_and_origin() {
        let mut s = ReferenceStore::new(small_cfg());
        s.ingest(ann(1, 10, "10.0.0.0/8", &[1, 2, 3]));
        s.ingest(ann(2, 11, "10.0.0.0/8", &[2, 3]));
        s.ingest(wd(1, 20, "10.0.0.0/8"));
        let left = s.lookup(&"10.0.0.0/8".parse().unwrap(), MatchMode::Exact, None);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].vp, vp(2));

        s.ingest(wd(2, 21, "10.0.0.0/8"));
        assert!(s.originated(Asn(3)).is_empty());
        assert_eq!(s.stats().live_prefixes, 0);
    }

    #[test]
    fn rib_at_equals_sequential_replay() {
        let mut s = ReferenceStore::new(small_cfg());
        let mut log = Vec::new();
        for i in 0..40u64 {
            let u = if i % 7 == 3 {
                wd(
                    1,
                    i * 500,
                    if i % 2 == 0 {
                        "10.0.0.0/8"
                    } else {
                        "10.1.0.0/16"
                    },
                )
            } else {
                ann(
                    1,
                    i * 500,
                    if i % 2 == 0 {
                        "10.0.0.0/8"
                    } else {
                        "10.1.0.0/16"
                    },
                    &[1, (i % 5 + 2) as u32, 9],
                )
            };
            log.push(u.clone());
            s.ingest(u);
        }
        for probe_ms in [0, 499, 500, 3_200, 9_999, 20_000] {
            let got = s.rib_at(vp(1), Timestamp::from_millis(probe_ms)).unwrap();
            let mut want = Rib::new();
            for u in &log {
                if u.time.as_millis() <= probe_ms {
                    let mut u = u.clone();
                    want.apply(&mut u);
                }
            }
            assert_eq!(got.len(), want.len(), "at t={probe_ms}");
            for (p, e) in want.iter() {
                assert_eq!(got.get(p), Some(e), "at t={probe_ms} prefix {p}");
            }
        }
        assert!(s.stats().snapshots >= 4);
        let depth = s
            .replay_depth(vp(1), Timestamp::from_millis(20_000))
            .unwrap();
        assert!(depth < 40, "replay depth {depth} must be bounded");
    }

    #[test]
    fn updates_in_range_uses_shards() {
        let mut s = ReferenceStore::new(small_cfg());
        for i in 0..10u64 {
            s.ingest(ann(1, i * 1_000, "10.0.0.0/8", &[1, 2, 3]));
            s.ingest(ann(2, i * 1_000 + 1, "10.1.0.0/16", &[2, 3, 4]));
        }
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let mid = s.updates_in_range(
            Some(&p8),
            JoinMode::Exact,
            None,
            Timestamp::from_millis(3_000),
            Timestamp::from_millis(5_000),
        );
        assert_eq!(mid.len(), 3);
        let cov = s.updates_in_range(
            Some(&p8),
            JoinMode::Covered,
            None,
            Timestamp::from_millis(3_000),
            Timestamp::from_millis(5_000),
        );
        assert_eq!(cov.len(), 5);
    }
}
