//! gill-query: the serving half of GILL.
//!
//! The paper's platform does not stop at collection: §9's bgproutes.io
//! exposes the archive behind query APIs so users ask "routes for p at t"
//! instead of downloading MRT dumps. This crate reproduces that half:
//!
//! * [`store`] — a time-sharded, snapshot-accelerated route store over the
//!   update stream ([`RouteStore::rib_at`] is snapshot + bounded replay),
//!   built on interning arenas ([`arena`]), copy-on-write RIBs ([`cow`])
//!   and sealed on-disk segments ([`segment`]); [`refstore`] keeps the
//!   original owned-value implementation as the behavioural oracle;
//! * [`query`] — the looking-glass query surface (exact/LPM/more-specifics,
//!   per-VP and cross-VP, live and historical) rendered as JSON;
//! * [`http`] — a dependency-free blocking HTTP/1.1 server with a bounded
//!   worker pool and per-connection read deadlines;
//! * [`server`] — the endpoint router wiring HTTP onto a shared store,
//!   including raw-MRT download endpoints;
//! * [`storage`] — a collector storage backend that feeds a live store;
//! * [`json`] — the strict, hand-rolled JSON encoder behind it all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cow;
pub mod http;
pub mod json;
pub mod query;
pub mod refstore;
pub mod segment;
pub mod server;
pub mod storage;
pub mod store;

pub use http::{Handled, HttpServer, Request, Response, ServerConfig};
pub use json::{Json, JsonError};
pub use query::{JoinMode, MatchMode, QueryEngine, RouteQuery, UpdateQuery};
pub use refstore::ReferenceStore;
pub use server::{serve, serve_with, SharedStore};
pub use storage::QueryableStorage;
pub use store::{RouteStore, RouteView, StoreConfig, StoreMemStats, StoreStats};
