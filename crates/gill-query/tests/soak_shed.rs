//! Soak-derived regression: store shed accounting under `mem_cap_bytes`
//! while a scenario-engine burst (bursty background + withdrawal
//! avalanche) hammers the store. The cap must shed — and every shed
//! update must be *counted*, never silently lost:
//! `retained + shed == ingested`, exactly, on every seed.

use gill_query::{QueryEngine, RouteStore, StoreConfig};
use gill_scenario::{
    BackgroundConfig, CampaignConfig, CampaignKind, ScenarioConfig, ScenarioEngine, World,
};

fn burst_day(seed: u64) -> ScenarioConfig {
    let world = World {
        n_vps: 5,
        n_prefixes: 64,
        seed: seed ^ 0xb0b,
        dual_stack: false,
    };
    let background = BackgroundConfig::default();
    let duration_ms = background.duration_for(4_000);
    ScenarioConfig {
        world,
        background,
        duration_ms,
        campaigns: vec![CampaignConfig {
            kind: CampaignKind::WithdrawalAvalanche,
            start_ms: duration_ms / 3,
            duration_ms: duration_ms / 4,
            n_targets: 24,
            repeats: 4,
            actor: 64_100,
            seed: seed ^ 0xa7a,
        }],
        seed,
    }
}

fn capped_cfg(bytes: u64) -> StoreConfig {
    StoreConfig {
        shard_width_ms: 60_000,
        snapshot_every_shards: 4,
        mem_cap_bytes: bytes,
    }
}

fn run_capped(seed: u64, bytes: u64) -> (RouteStore, usize) {
    let mut store = RouteStore::new(capped_cfg(bytes));
    let mut ingested = 0usize;
    for item in ScenarioEngine::new(&burst_day(seed)) {
        store.ingest(item.update);
        ingested += 1;
    }
    (store, ingested)
}

#[test]
fn shed_counter_equals_dropped_updates_exactly() {
    for seed in [1u64, 7, 42] {
        let (store, ingested) = run_capped(seed, 48 << 10);
        let retained = store.stats().updates;
        let shed = store.mem_stats().shed_updates;
        assert!(shed > 0, "seed {seed}: cap never bit ({ingested} ingested)");
        assert!(retained > 0, "seed {seed}: everything shed");
        assert_eq!(
            retained + shed,
            ingested,
            "seed {seed}: shed accounting must be exact, never silent"
        );
    }
}

#[test]
fn shed_accounting_is_deterministic() {
    let (a, n1) = run_capped(9, 48 << 10);
    let (b, n2) = run_capped(9, 48 << 10);
    assert_eq!(n1, n2);
    assert_eq!(a.stats().updates, b.stats().updates);
    assert_eq!(a.mem_stats().shed_updates, b.mem_stats().shed_updates);
    assert_eq!(a.mem_stats().bytes_resident, b.mem_stats().bytes_resident);
}

#[test]
fn capped_store_still_answers_queries() {
    let (store, _) = run_capped(3, 48 << 10);
    // the shed store keeps serving: health, vps, and a full update scan
    // over whatever window survived the cap
    let health = QueryEngine::health(&store).encode().unwrap();
    assert!(health.contains("\"updates\""));
    let vps = QueryEngine::vps(&store).encode().unwrap();
    assert!(vps.contains("65000"), "vp listing must survive shedding");
    let uncapped = run_capped(3, 0).0;
    assert_eq!(uncapped.mem_stats().shed_updates, 0);
    assert!(
        uncapped.stats().updates > store.stats().updates,
        "cap must have reduced the resident window"
    );
}
