//! Acceptance test: `rib_at(vp, t)` over a 50k-update synthetic stream must
//! return RIBs identical to a from-scratch sequential `Rib::apply` replay.

use bgp_types::{Asn, BgpUpdate, Prefix, Rib, Timestamp, UpdateBuilder, UpdateKind, VpId};
use gill_query::{RouteStore, StoreConfig};

/// Deterministic xorshift so the stream is reproducible without a rand dep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// 50k updates: 8 VPs, 400 prefixes, mixed announces/withdrawals, slightly
/// jittered (sometimes backwards-stepping) clocks.
fn synthetic_stream(n: usize) -> Vec<BgpUpdate> {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut t_ms: u64 = 1_000_000;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // mostly forward, occasionally a small backwards step
        t_ms = if rng.below(50) == 0 {
            t_ms.saturating_sub(rng.below(2_000))
        } else {
            t_ms + rng.below(400)
        };
        let vp = VpId::from_asn(Asn(65_000 + (rng.below(8) as u32)));
        let prefix = Prefix::synthetic(rng.below(400) as u32);
        let u = if rng.below(5) == 0 {
            UpdateBuilder::withdraw(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .build()
        } else {
            let mid = (rng.below(900) + 100) as u32;
            UpdateBuilder::announce(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .path([vp.asn.value(), mid, mid + 1, (rng.below(50) + 1) as u32])
                .community((vp.asn.value() & 0xffff) as u16, rng.below(200) as u16)
                .build()
        };
        out.push(u);
    }
    out
}

/// Sequential oracle: apply every update of `vp` with arrival time <= `t`,
/// in arrival order, to a fresh RIB. Arrival-order timestamps are clamped
/// to the VP's running max, mirroring the store's effective timestamps.
fn oracle_rib(stream: &[BgpUpdate], vp: VpId, t: Timestamp) -> Rib {
    let mut rib = Rib::new();
    let mut eff = 0u64;
    for u in stream.iter().filter(|u| u.vp == vp) {
        eff = eff.max(u.time.as_millis());
        if eff <= t.as_millis() {
            let mut u = u.clone();
            rib.apply(&mut u);
        }
    }
    rib
}

fn assert_rib_eq(got: &Rib, want: &Rib, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: size mismatch");
    for (p, e) in want.iter() {
        let g = got.get(p).unwrap_or_else(|| panic!("{ctx}: missing {p}"));
        assert_eq!(g.path, e.path, "{ctx}: path for {p}");
        assert_eq!(g.communities, e.communities, "{ctx}: communities for {p}");
        assert_eq!(g.time, e.time, "{ctx}: time for {p}");
    }
}

#[test]
fn rib_at_matches_sequential_replay_over_50k_updates() {
    let stream = synthetic_stream(50_000);
    assert!(stream.iter().any(|u| u.kind == UpdateKind::Withdraw));

    let cfg = StoreConfig {
        shard_width_ms: 60_000,
        snapshot_every_shards: 4,
        ..StoreConfig::default()
    };
    let mut store = RouteStore::new(cfg);
    for u in &stream {
        store.ingest(u.clone());
    }
    assert_eq!(store.stats().updates, 50_000);
    assert!(
        store.stats().snapshots > 0,
        "the stream must span enough shards to trigger snapshots"
    );

    let t_max = store.latest_time().as_millis();
    let probes = [
        1_000_000,
        1_000_000 + (t_max - 1_000_000) / 4,
        1_000_000 + (t_max - 1_000_000) / 2,
        t_max - 60_000,
        t_max,
        t_max + 1_000_000,
    ];
    for vp_asn in 65_000..65_008u32 {
        let vp = VpId::from_asn(Asn(vp_asn));
        for &probe in &probes {
            let t = Timestamp::from_millis(probe);
            let got = store.rib_at(vp, t).expect("vp exists");
            let want = oracle_rib(&stream, vp, t);
            assert_rib_eq(&got, &want, &format!("vp {vp} at {probe}"));
        }
        // snapshots bound the replay: never more than one cadence window of
        // the VP's updates (loose upper bound: the whole lane is ~6250).
        let depth = store
            .replay_depth(vp, Timestamp::from_millis(t_max))
            .unwrap();
        let lane_len = store.lane_updates(vp).unwrap().len();
        assert!(
            depth < lane_len / 2,
            "vp {vp}: replay depth {depth} not bounded vs lane {lane_len}"
        );
    }
}

#[test]
fn rib_now_matches_final_oracle() {
    let stream = synthetic_stream(10_000);
    let mut store = RouteStore::new(StoreConfig::default());
    for u in &stream {
        store.ingest(u.clone());
    }
    for vp_asn in 65_000..65_008u32 {
        let vp = VpId::from_asn(Asn(vp_asn));
        let want = oracle_rib(&stream, vp, Timestamp::from_millis(u64::MAX));
        assert_rib_eq(
            &store.rib_now(vp).expect("vp exists"),
            &want,
            &format!("live rib of {vp}"),
        );
    }
}
