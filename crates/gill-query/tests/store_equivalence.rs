//! Acceptance tests for the interned/COW/sealed store: every read path must
//! be bit-identical to the uncompressed [`ReferenceStore`], and a store
//! reloaded from sealed segments must serve byte-identical HTTP responses
//! to the store that wrote them.

use bgp_types::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, UpdateKind, VpId};
use gill_query::server::route;
use gill_query::{
    JoinMode, MatchMode, ReferenceStore, Request, Response, RouteStore, RouteView, StoreConfig,
};
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::Arc;

/// Deterministic xorshift so the stream is reproducible without a rand dep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Mixed announce/withdraw stream: 8 VPs, 400 prefixes, jittered clocks —
/// the same shape the `rib_equivalence` oracle uses.
fn synthetic_stream(n: usize) -> Vec<BgpUpdate> {
    let mut rng = Rng(0x6a09e667f3bcc908);
    let mut t_ms: u64 = 1_000_000;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        t_ms = if rng.below(50) == 0 {
            t_ms.saturating_sub(rng.below(2_000))
        } else {
            t_ms + rng.below(400)
        };
        let vp = VpId::from_asn(Asn(65_000 + (rng.below(8) as u32)));
        let prefix = Prefix::synthetic(rng.below(400) as u32);
        let u = if rng.below(5) == 0 {
            UpdateBuilder::withdraw(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .build()
        } else {
            let mid = (rng.below(900) + 100) as u32;
            UpdateBuilder::announce(vp, prefix)
                .at(Timestamp::from_millis(t_ms))
                .path([vp.asn.value(), mid, mid + 1, (rng.below(50) + 1) as u32])
                .community((vp.asn.value() & 0xffff) as u16, rng.below(200) as u16)
                .build()
        };
        out.push(u);
    }
    out
}

fn small_cfg() -> StoreConfig {
    StoreConfig {
        shard_width_ms: 60_000,
        snapshot_every_shards: 4,
        ..StoreConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gill-store-eq-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn views_eq(got: &[RouteView], want: &[RouteView], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.vp, w.vp, "{ctx}: vp");
        assert_eq!(g.prefix, w.prefix, "{ctx}: prefix");
        assert_eq!(g.entry.path, w.entry.path, "{ctx}: path");
        assert_eq!(g.entry.communities, w.entry.communities, "{ctx}: comms");
        assert_eq!(g.entry.time, w.entry.time, "{ctx}: time");
    }
}

/// Probe times spread over the stream's span, plus the edges.
fn probe_times(latest_ms: u64) -> Vec<Timestamp> {
    let mut ts: Vec<u64> = (0..=8)
        .map(|i| 1_000_000 + (latest_ms - 1_000_000) * i / 8)
        .collect();
    ts.push(latest_ms + 500_000);
    ts.into_iter().map(Timestamp::from_millis).collect()
}

#[test]
fn interned_store_is_bit_identical_to_reference() {
    let stream = synthetic_stream(50_000);
    assert!(stream.iter().any(|u| u.kind == UpdateKind::Withdraw));

    let mut reference = ReferenceStore::new(small_cfg());
    let mut interned = RouteStore::new(small_cfg());
    for u in &stream {
        reference.ingest(u.clone());
        interned.ingest(u.clone());
    }

    assert_eq!(interned.stats(), reference.stats(), "stats diverge");
    assert_eq!(interned.vps(), reference.vps(), "vp lanes diverge");
    assert_eq!(
        interned.shard_counts(),
        reference.shard_counts(),
        "shards diverge"
    );
    assert!(
        interned.stats().snapshots > 0,
        "stream must trigger snapshots"
    );

    let probes = probe_times(interned.latest_time().as_millis());
    for vp_asn in 65_000..65_008u32 {
        let vp = VpId::from_asn(Asn(vp_asn));
        // Exact update round-trip: interning must preserve every byte of
        // every attribute, including withdraw link/community bookkeeping.
        let got = interned.lane_updates(vp).expect("vp exists");
        let want: Vec<BgpUpdate> = reference.lane_updates(vp).unwrap().to_vec();
        assert_eq!(got, want, "lane {vp} diverges");

        for &t in &probes {
            let got = interned.rib_at(vp, t).expect("vp exists");
            let want = reference.rib_at(vp, t).expect("vp exists");
            assert_eq!(got.len(), want.len(), "rib size for {vp} at {t}");
            for (p, e) in want.iter() {
                assert_eq!(got.get(p), Some(e), "rib entry {p} for {vp} at {t}");
            }
            assert_eq!(
                interned.rib_len_at(vp, t),
                reference.rib_len_at(vp, t),
                "rib_len_at for {vp} at {t}"
            );
            assert_eq!(
                interned.rib_len_at(vp, t),
                Some(got.len()),
                "rib_len_at must match materialized rib_at for {vp} at {t}"
            );
            assert_eq!(
                interned.replay_depth(vp, t),
                reference.replay_depth(vp, t),
                "replay depth for {vp} at {t}"
            );
        }
    }

    for q in 0..40u32 {
        let p = Prefix::synthetic(q * 10);
        for mode in [
            MatchMode::Exact,
            MatchMode::Longest,
            MatchMode::MoreSpecific,
        ] {
            views_eq(
                &interned.lookup(&p, mode, None),
                &reference.lookup(&p, mode, None),
                &format!("lookup {p} {mode:?}"),
            );
        }
        let mid = Timestamp::from_millis(interned.latest_time().as_millis() / 2);
        views_eq(
            &interned.lookup_at(&p, MatchMode::Exact, None, mid),
            &reference.lookup_at(&p, MatchMode::Exact, None, mid),
            &format!("lookup_at {p}"),
        );
        let got = interned.updates_in_range(Some(&p), JoinMode::Exact, None, Timestamp::ZERO, mid);
        let want: Vec<BgpUpdate> = reference
            .updates_in_range(Some(&p), JoinMode::Exact, None, Timestamp::ZERO, mid)
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(got, want, "updates_in_range {p} diverges");
    }
    for asn in [65_001u32, 100, 42] {
        assert_eq!(
            interned.originated(Asn(asn)),
            reference.originated(Asn(asn)),
            "originated {asn}"
        );
    }
}

fn get(store: &Arc<RwLock<RouteStore>>, target: &str) -> Response {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let params = query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|p| {
            let (k, v) = p.split_once('=').unwrap_or((p, ""));
            (k.to_string(), v.to_string())
        })
        .collect();
    let req = Request {
        method: "GET".to_string(),
        path: path.to_string(),
        params,
        headers: Vec::new(),
    };
    route(&req, store)
}

/// The endpoint matrix both sides of a restart must answer identically.
/// `/store/stats` is deliberately absent: sealed/resident counters reflect
/// process history, not route data.
fn request_matrix(latest_ms: u64) -> Vec<String> {
    let mid = 1_000_000 + (latest_ms - 1_000_000) / 2;
    let mut targets = vec![
        "/vps".to_string(),
        format!("/updates?from=0&to={latest_ms}&limit=100000"),
        format!(
            "/updates?prefix={}&join=covered&to={latest_ms}",
            Prefix::synthetic(7)
        ),
        format!("/mrt/rib?at={mid}"),
        "/origin?asn=65003".to_string(),
    ];
    for q in [3u32, 17, 250] {
        let p = Prefix::synthetic(q);
        targets.push(format!("/routes?prefix={p}&match=lpm"));
        targets.push(format!("/routes?prefix={p}&match=exact&at={mid}"));
    }
    for vp in 65_000..65_008u32 {
        targets.push(format!("/rib?vp={vp}&at={mid}"));
        targets.push(format!("/rib?vp={vp}"));
        targets.push(format!("/mrt/updates?vp={vp}"));
    }
    targets
}

fn assert_same_responses(a: &Arc<RwLock<RouteStore>>, b: &Arc<RwLock<RouteStore>>, ctx: &str) {
    let latest = a.read().latest_time().as_millis();
    for target in request_matrix(latest) {
        let ra = get(a, &target);
        let rb = get(b, &target);
        assert_eq!(ra.status, rb.status, "{ctx}: status for {target}");
        assert_eq!(
            ra.content_type, rb.content_type,
            "{ctx}: content type for {target}"
        );
        assert_eq!(ra.status, 200, "{ctx}: {target} must succeed");
        assert_eq!(ra.body, rb.body, "{ctx}: body bytes for {target}");
    }
}

#[test]
fn restart_from_sealed_segments_is_byte_identical() {
    let stream = synthetic_stream(50_000);
    let dir = scratch("restart");

    let mut store = RouteStore::new(small_cfg());
    for u in &stream {
        store.ingest(u.clone());
    }
    store.seal_all_into(&dir).unwrap().expect("segment written");

    let mut reloaded = RouteStore::new(small_cfg());
    assert_eq!(reloaded.load_dir(&dir).unwrap(), 50_000);

    let before = Arc::new(RwLock::new(store));
    let after = Arc::new(RwLock::new(reloaded));
    assert_same_responses(&before, &after, "restart");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_restart_with_incremental_seals_is_byte_identical() {
    let stream = synthetic_stream(50_000);
    let dir = scratch("crash");

    // A collector's life: aged-out shards seal while ingest continues, and
    // the final flush seals the tail — producing several segment files.
    let mut store = RouteStore::new(small_cfg());
    for (i, u) in stream.iter().enumerate() {
        store.ingest(u.clone());
        if i % 12_500 == 12_499 {
            store.seal_complete_into(&dir).unwrap();
        }
    }
    store.seal_all_into(&dir).unwrap();
    assert!(
        gill_query::segment::list_segments(&dir).unwrap().len() >= 2,
        "expected multiple incremental segments"
    );

    // "Crash" (drop the process state) and restart from the directory.
    let mut reloaded = RouteStore::new(small_cfg());
    assert_eq!(reloaded.load_dir(&dir).unwrap(), 50_000);
    assert_eq!(reloaded.mem_stats().sealed_updates, 50_000);

    let before = Arc::new(RwLock::new(store));
    let after = Arc::new(RwLock::new(reloaded));
    assert_same_responses(&before, &after, "crash-restart");

    // The reloaded store keeps collecting: new updates land after the
    // sealed ones and seal into the next segment in sequence.
    let next_seq_before = gill_query::segment::list_segments(&dir)
        .unwrap()
        .last()
        .unwrap()
        .0;
    {
        let mut s = after.write();
        let t = s.latest_time().as_millis() + 1_000;
        s.ingest(
            UpdateBuilder::announce(VpId::from_asn(Asn(65_000)), Prefix::synthetic(3))
                .at(Timestamp::from_millis(t))
                .path([65_000, 9, 9, 9])
                .build(),
        );
        s.seal_all_into(&dir).unwrap().expect("tail segment");
    }
    let segs = gill_query::segment::list_segments(&dir).unwrap();
    assert!(
        segs.last().unwrap().0 > next_seq_before,
        "sequence advances"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mem_capped_store_sheds_and_keeps_serving() {
    let stream = synthetic_stream(20_000);

    // Size the cap from a probe run so the test tracks REC_OVERHEAD changes.
    let mut probe = RouteStore::new(small_cfg());
    for u in &stream[..10_000] {
        probe.ingest(u.clone());
    }
    let cap = probe.mem_stats().bytes_resident;

    let mut store = RouteStore::new(StoreConfig {
        mem_cap_bytes: cap,
        ..small_cfg()
    });
    for u in &stream {
        store.ingest(u.clone());
    }
    let m = store.mem_stats();
    assert!(m.shed_updates > 0, "cap must shed some of the stream");
    assert_eq!(
        store.stats().updates + m.shed_updates,
        20_000,
        "every update is either stored or counted as shed"
    );
    assert!(
        m.bytes_resident <= cap + 4_096,
        "resident bytes stay at the cap (got {} vs cap {cap})",
        m.bytes_resident
    );
    // Reads still work on the retained prefix of the stream.
    let shared = Arc::new(RwLock::new(store));
    assert_eq!(get(&shared, "/vps").status, 200);
    assert_eq!(get(&shared, "/store/stats").status, 200);
}
