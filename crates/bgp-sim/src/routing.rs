//! Gao–Rexford path-vector route computation (the C-BGP substitute).
//!
//! For one prefix (one or more announcing sources), computes the best route
//! of *every* AS under the canonical Gao–Rexford model \[23\]:
//!
//! * **Preference**: customer-learned > peer-learned > provider-learned
//!   (local-pref dominates), then shortest AS path, then lowest next-hop
//!   ASN.
//! * **Export**: routes learned from a customer (or originated) are exported
//!   to everyone; routes learned from a peer or provider are exported only
//!   to customers — the valley-free rule.
//!
//! The computation runs in three phases (customer routes bottom-up, peer
//! routes one hop sideways, provider routes top-down), each a BFS/Dijkstra
//! over unit-weight edges, O(E) per prefix.

use as_topology::Topology;
use std::collections::{BinaryHeap, HashSet};

/// How an AS learned its best route (also the preference order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RouteClass {
    /// The AS originates the prefix itself (or forges an origination).
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// One announcing source for a prefix.
///
/// A legitimate origin has `initial_path = [origin]`. A forged-origin
/// Type-X hijacker announces `[attacker, f1, .., f_{X-1}, victim]` — the
/// hijacker's own node first, the victim's origin last (§3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceAnnouncement {
    /// Node index of the announcing AS.
    pub node: u32,
    /// The initial AS path the source attaches (node indices, announcer
    /// first). Must start with `node` and be non-empty.
    pub initial_path: Vec<u32>,
}

impl SourceAnnouncement {
    /// A legitimate origination by `node`.
    pub fn origin(node: u32) -> Self {
        SourceAnnouncement {
            node,
            initial_path: vec![node],
        }
    }

    /// A forged-origin hijack announcement: the attacker prepends itself
    /// (and `fillers` fake middle hops) to the victim's origin. For Type-1
    /// `fillers` is empty; Type-2 passes one filler hop, etc.
    pub fn forged(attacker: u32, fillers: &[u32], victim_origin: u32) -> Self {
        let mut p = Vec::with_capacity(fillers.len() + 2);
        p.push(attacker);
        p.extend_from_slice(fillers);
        p.push(victim_origin);
        SourceAnnouncement {
            node: attacker,
            initial_path: p,
        }
    }

    fn extra_len(&self) -> u32 {
        (self.initial_path.len() - 1) as u32
    }
}

const NO_ROUTE: u32 = u32::MAX;

/// The result of route computation for one prefix: every AS's best route.
#[derive(Clone, Debug)]
pub struct RouteTable {
    /// Per node: next hop toward the origin (NO_ROUTE if none / source).
    next_hop: Vec<u32>,
    /// Per node: class of the best route (None encoded via `dist == NO_ROUTE`).
    class: Vec<RouteClass>,
    /// Per node: AS-path length of the best route (hops, including the
    /// source's initial path length). NO_ROUTE when unreachable.
    dist: Vec<u32>,
    /// Which source each node's route ultimately leads to (index into the
    /// `sources` vec), NO_ROUTE when unreachable.
    source_of: Vec<u32>,
    /// The announcing sources.
    sources: Vec<SourceAnnouncement>,
}

impl RouteTable {
    /// AS-path of node `u`'s best route as node indices, `u` first and the
    /// (claimed) origin last; `None` if `u` has no route.
    pub fn path(&self, u: u32) -> Option<Vec<u32>> {
        if self.dist[u as usize] == NO_ROUTE {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[u as usize] as usize + 1);
        let mut cur = u;
        loop {
            path.push(cur);
            let nh = self.next_hop[cur as usize];
            if nh == NO_ROUTE {
                // `cur` is a source: splice in the rest of its initial path.
                let src = &self.sources[self.source_of[cur as usize] as usize];
                path.extend_from_slice(&src.initial_path[1..]);
                return Some(path);
            }
            cur = nh;
            if path.len() > self.next_hop.len() + 4 {
                unreachable!("routing loop in RouteTable::path");
            }
        }
    }

    /// Whether node `u` has any route.
    #[inline]
    pub fn has_route(&self, u: u32) -> bool {
        self.dist[u as usize] != NO_ROUTE
    }

    /// Class of `u`'s best route.
    pub fn class(&self, u: u32) -> Option<RouteClass> {
        if self.has_route(u) {
            Some(self.class[u as usize])
        } else {
            None
        }
    }

    /// Path length (hops) of `u`'s best route.
    pub fn path_len(&self, u: u32) -> Option<u32> {
        if self.has_route(u) {
            Some(self.dist[u as usize])
        } else {
            None
        }
    }

    /// Index (into the announcement list) of the source `u`'s route leads
    /// to. Useful to test whether a node routes to the hijacker.
    pub fn source_index(&self, u: u32) -> Option<usize> {
        if self.has_route(u) {
            Some(self.source_of[u as usize] as usize)
        } else {
            None
        }
    }

    /// The set of directed tree edges `(from, to)` used by any node's best
    /// route (next-hop edges only, not initial-path fillers).
    pub fn used_links(&self) -> HashSet<(u32, u32)> {
        let mut out = HashSet::new();
        for u in 0..self.next_hop.len() as u32 {
            let nh = self.next_hop[u as usize];
            if nh != NO_ROUTE {
                out.insert((u, nh));
            }
        }
        out
    }

    /// Whether any best route traverses the undirected link `{a, b}`.
    pub fn uses_link(&self, a: u32, b: u32) -> bool {
        for u in 0..self.next_hop.len() as u32 {
            let nh = self.next_hop[u as usize];
            if nh != NO_ROUTE && ((u == a && nh == b) || (u == b && nh == a)) {
                return true;
            }
        }
        false
    }
}

/// Computes every AS's best route toward `sources` on `topo`, ignoring any
/// link in `failed` (undirected `{a, b}` pairs, stored as `(min, max)`).
pub fn compute_routes(
    topo: &Topology,
    sources: &[SourceAnnouncement],
    failed: &HashSet<(u32, u32)>,
) -> RouteTable {
    let n = topo.num_ases();
    debug_assert!(sources.iter().all(|s| (s.node as usize) < n));
    let alive = |a: u32, b: u32| -> bool {
        let k = if a < b { (a, b) } else { (b, a) };
        !failed.contains(&k)
    };

    let mut dist = vec![NO_ROUTE; n];
    let mut next_hop = vec![NO_ROUTE; n];
    let mut class = vec![RouteClass::Origin; n];
    let mut source_of = vec![NO_ROUTE; n];
    // Locally originated announcements outrank anything learned (highest
    // local-pref), so a source node's route is never overridden — an
    // attacker keeps exporting its forged route even if it hears the
    // legitimate one.
    let mut is_source = vec![false; n];
    for s in sources {
        is_source[s.node as usize] = true;
    }

    // Reverse-ordered heap entries: (dist, tiebreak asn, node).
    #[derive(PartialEq, Eq)]
    struct Ent(u32, u32, u32);
    impl Ord for Ent {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap: reverse for min behaviour.
            other
                .0
                .cmp(&self.0)
                .then_with(|| other.1.cmp(&self.1))
                .then_with(|| other.2.cmp(&self.2))
        }
    }
    impl PartialOrd for Ent {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    // ---- Phase 1: customer routes (propagate from sources upward through
    //      provider links). A node's customer route comes from a customer
    //      whose best route is its customer route (always true when one
    //      exists) or that is a source.
    let mut heap: BinaryHeap<Ent> = BinaryHeap::new();
    for (i, s) in sources.iter().enumerate() {
        let d = s.extra_len();
        // Multiple sources at the same node: keep the shortest.
        if d < dist[s.node as usize] {
            dist[s.node as usize] = d;
            source_of[s.node as usize] = i as u32;
            class[s.node as usize] = RouteClass::Origin;
            next_hop[s.node as usize] = NO_ROUTE;
        }
    }
    for s in sources {
        heap.push(Ent(dist[s.node as usize], s.node, s.node));
    }
    // `cust_dist` snapshot: customer-phase distances (sources count).
    while let Some(Ent(d, _, u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        // export upward to providers
        for &p in topo.providers(u) {
            if !alive(u, p) || is_source[p as usize] {
                continue;
            }
            let nd = d + 1;
            let better = nd < dist[p as usize]
                || (nd == dist[p as usize]
                    && next_hop[p as usize] != NO_ROUTE
                    && u < next_hop[p as usize]);
            if better {
                dist[p as usize] = nd;
                next_hop[p as usize] = u;
                class[p as usize] = RouteClass::Customer;
                source_of[p as usize] = source_of[u as usize];
                heap.push(Ent(nd, p, p));
            }
        }
    }
    let cust_dist = dist.clone();

    // ---- Phase 2: peer routes — one hop across a peer link from any node
    //      with a customer route (or a source). Only improves nodes that
    //      have no customer route (class preference dominates length).
    let mut peer_updates: Vec<(u32, u32, u32, u32)> = Vec::new(); // (node, dist, via, src)
    for u in 0..n as u32 {
        if cust_dist[u as usize] == NO_ROUTE {
            continue;
        }
        for &q in topo.peers(u) {
            if !alive(u, q) || is_source[q as usize] {
                continue;
            }
            if cust_dist[q as usize] != NO_ROUTE {
                continue; // q prefers its customer route
            }
            let nd = cust_dist[u as usize] + 1;
            peer_updates.push((q, nd, u, source_of[u as usize]));
        }
    }
    for (q, nd, via, src) in peer_updates {
        let qi = q as usize;
        let better = dist[qi] == NO_ROUTE
            || nd < dist[qi]
            || (nd == dist[qi] && class[qi] == RouteClass::Peer && via < next_hop[qi]);
        if better {
            dist[qi] = nd;
            next_hop[qi] = via;
            class[qi] = RouteClass::Peer;
            source_of[qi] = src;
        }
    }

    // ---- Phase 3: provider routes — propagate downward through customer
    //      links from any routed node; a provider exports its best route to
    //      its customers. Only nodes without customer/peer routes accept,
    //      and provider routes chain downward.
    let mut heap: BinaryHeap<Ent> = BinaryHeap::new();
    for u in 0..n as u32 {
        if dist[u as usize] != NO_ROUTE {
            heap.push(Ent(dist[u as usize], u, u));
        }
    }
    while let Some(Ent(d, _, u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &c in topo.customers(u) {
            if !alive(u, c) || is_source[c as usize] {
                continue;
            }
            let ci = c as usize;
            // c accepts a provider route only if it has no customer/peer route.
            if dist[ci] != NO_ROUTE && class[ci] != RouteClass::Provider {
                continue;
            }
            let nd = d + 1;
            let better =
                dist[ci] == NO_ROUTE || nd < dist[ci] || (nd == dist[ci] && u < next_hop[ci]);
            if better {
                dist[ci] = nd;
                next_hop[ci] = u;
                class[ci] = RouteClass::Provider;
                source_of[ci] = source_of[u as usize];
                heap.push(Ent(nd, c, c));
            }
        }
    }

    RouteTable {
        next_hop,
        class,
        dist,
        source_of,
        sources: sources.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;

    fn no_fail() -> HashSet<(u32, u32)> {
        HashSet::new()
    }

    /// A hand-built diamond:
    ///        0 (tier1)      level 0
    ///       /  \
    ///      1    2           level 1, peers
    ///       \  /
    ///        3 (origin)     level 2
    fn diamond() -> Topology {
        let mut providers = vec![vec![]; 4];
        let mut customers = vec![vec![]; 4];
        let mut peers = vec![vec![]; 4];
        for (c, p) in [(1u32, 0u32), (2, 0), (3, 1), (3, 2)] {
            providers[c as usize].push(p);
            customers[p as usize].push(c);
        }
        peers[1].push(2);
        peers[2].push(1);
        Topology::from_parts(providers, customers, peers, vec![0, 1, 1, 2])
    }

    #[test]
    fn everyone_reaches_the_origin() {
        let t = diamond();
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(3)], &no_fail());
        for u in 0..4 {
            assert!(rt.has_route(u), "node {u} unreachable");
        }
        assert_eq!(rt.path(3), Some(vec![3]));
        assert_eq!(rt.class(3), Some(RouteClass::Origin));
    }

    #[test]
    fn customer_routes_preferred_and_tiebreak_lowest() {
        let t = diamond();
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(3)], &no_fail());
        // 0 hears 3 via customers 1 and 2 at equal length; lowest wins.
        assert_eq!(rt.class(0), Some(RouteClass::Customer));
        assert_eq!(rt.path(0), Some(vec![0, 1, 3]));
    }

    #[test]
    fn valley_free_export() {
        // Origin at 1's side: 2 must NOT route via peer 1's provider route.
        let t = diamond();
        // Prefix originated by 1: 3 is a customer of 1; 2 peers with 1.
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(1)], &no_fail());
        // 2 can reach 1 via the peer link (1 originates => exports to peers).
        assert_eq!(rt.path(2), Some(vec![2, 1]));
        assert_eq!(rt.class(2), Some(RouteClass::Peer));
        // 3 reaches via provider 1 directly.
        assert_eq!(rt.path(3), Some(vec![3, 1]));
        // 0 reaches via customer 1.
        assert_eq!(rt.class(0), Some(RouteClass::Customer));
    }

    #[test]
    fn peer_route_not_reexported_to_provider() {
        // Build: 0 tier1; 1,2 level-1 peers; origin 4 customer of 2 only.
        // 1 gets a peer route via 2; 1 must not export it to 0, so 0's
        // route must come via customer 2 directly.
        let mut providers = vec![vec![]; 5];
        let mut customers = vec![vec![]; 5];
        let mut peers = vec![vec![]; 5];
        for (c, p) in [(1u32, 0u32), (2, 0), (4, 2)] {
            providers[c as usize].push(p);
            customers[p as usize].push(c);
        }
        peers[1].push(2);
        peers[2].push(1);
        let t = Topology::from_parts(providers, customers, peers, vec![0, 1, 1, 0, 2]);
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(4)], &no_fail());
        assert_eq!(rt.path(1), Some(vec![1, 2, 4]));
        assert_eq!(rt.class(1), Some(RouteClass::Peer));
        assert_eq!(rt.path(0), Some(vec![0, 2, 4]));
        assert_eq!(rt.class(0), Some(RouteClass::Customer));
    }

    #[test]
    fn failed_link_reroutes() {
        let t = diamond();
        let mut failed = HashSet::new();
        failed.insert((1u32, 3u32));
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(3)], &failed);
        assert_eq!(rt.path(0), Some(vec![0, 2, 3]));
        // 1 lost its customer route; peer 2 has a customer route => peer route.
        assert_eq!(rt.path(1), Some(vec![1, 2, 3]));
        assert_eq!(rt.class(1), Some(RouteClass::Peer));
    }

    #[test]
    fn disconnection_yields_no_route() {
        let t = diamond();
        let mut failed = HashSet::new();
        failed.insert((1u32, 3u32));
        failed.insert((2u32, 3u32));
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(3)], &failed);
        assert!(!rt.has_route(0));
        assert!(!rt.has_route(1));
        assert!(!rt.has_route(2));
        assert!(rt.has_route(3)); // the origin itself
        assert_eq!(rt.path(0), None);
    }

    #[test]
    fn forged_origin_hijack_attracts_nearby_ases() {
        // Victim 3 announces; attacker 1 forges [1, 3] (Type-1).
        let t = diamond();
        let sources = vec![
            SourceAnnouncement::origin(3),
            SourceAnnouncement::forged(1, &[], 3),
        ];
        let rt = compute_routes(&t, &sources, &no_fail());
        // 0 hears legit [0,1,3]? No: 1 now "originates" with path len 1, so
        // 0 hears via customer 1 a 2-hop path [0,1,3] and via customer 2 a
        // 2-hop legit path [0,2,3]; tie -> lowest neighbor 1 -> hijacked.
        assert_eq!(rt.path(0), Some(vec![0, 1, 3]));
        assert_eq!(rt.source_index(0), Some(1)); // routed to the attacker
                                                 // The victim's own route is its origination.
        assert_eq!(rt.source_index(3), Some(0));
    }

    #[test]
    fn type2_hijack_is_less_attractive_than_type1() {
        let t = diamond();
        // Type-2: path [1, 2, 3] (one filler) => initial length 2.
        let sources = vec![
            SourceAnnouncement::origin(3),
            SourceAnnouncement::forged(1, &[2], 3),
        ];
        let rt = compute_routes(&t, &sources, &no_fail());
        // 0's options: customer 1 with forged len 3, customer 2 legit len 2.
        assert_eq!(rt.source_index(0), Some(0)); // legit wins
        let p = rt.path(0).unwrap();
        assert_eq!(p, vec![0, 2, 3]);
    }

    #[test]
    fn forged_path_appears_in_observed_route() {
        let t = diamond();
        let sources = vec![
            SourceAnnouncement::origin(3),
            SourceAnnouncement::forged(1, &[2], 3),
        ];
        let mut failed = HashSet::new();
        failed.insert((2u32, 3u32));
        failed.insert((1u32, 3u32));
        let rt = compute_routes(&t, &sources, &failed);
        // Only the forged announcement can reach anyone now.
        let p0 = rt.path(0).unwrap();
        assert_eq!(p0, vec![0, 1, 2, 3]); // forged fillers spliced in
        assert_eq!(rt.source_index(0), Some(1));
    }

    #[test]
    fn used_links_cover_routing_tree() {
        let t = diamond();
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(3)], &no_fail());
        let used = rt.used_links();
        assert!(used.contains(&(0, 1)));
        assert!(used.contains(&(1, 3)));
        assert!(used.contains(&(2, 3)));
        assert!(rt.uses_link(3, 1)); // undirected query
        assert!(!rt.uses_link(1, 2)); // peer link unused here
    }

    #[test]
    fn paths_are_valley_free_on_generated_topology() {
        let t = TopologyBuilder::artificial(400, 77).build();
        // pick a handful of origins and check all paths are valley-free
        for origin in [0u32, 50, 199, 399] {
            let rt = compute_routes(&t, &[SourceAnnouncement::origin(origin)], &no_fail());
            for u in 0..t.num_ases() as u32 {
                let Some(path) = rt.path(u) else { continue };
                assert_valley_free(&t, &path);
            }
        }
    }

    /// A path is valley-free iff it is a sequence of c2p steps, at most one
    /// p2p step, then p2c steps. Traversal here is VP -> origin, so the
    /// *route* travelled origin -> VP; check in route direction (reversed).
    fn assert_valley_free(t: &Topology, path_vp_first: &[u32]) {
        let mut phase = 0; // 0 = climbing (c2p in route dir), 1 = after peak
        let route: Vec<u32> = path_vp_first.iter().rev().copied().collect();
        for w in route.windows(2) {
            let (from, to) = (w[0], w[1]);
            // step from `from` to `to` in route direction means `to` learned
            // from `from`. Classify the link from `to`'s perspective:
            let rel = if t.providers(to).contains(&from) {
                // `to`'s provider gave it the route: downhill step
                2
            } else if t.peers(to).contains(&from) {
                1
            } else if t.customers(to).contains(&from) {
                // learned from customer: uphill step
                0
            } else {
                panic!("non-adjacent hop {from}->{to}");
            };
            match rel {
                0 => assert_eq!(phase, 0, "uphill after peak: {path_vp_first:?}"),
                1 => {
                    assert_eq!(phase, 0, "second peak: {path_vp_first:?}");
                    phase = 1;
                }
                _ => phase = 1,
            }
        }
    }

    #[test]
    fn full_reachability_on_generated_topology() {
        let t = TopologyBuilder::artificial(500, 88).build();
        let rt = compute_routes(&t, &[SourceAnnouncement::origin(123)], &no_fail());
        let unreachable = (0..t.num_ases() as u32)
            .filter(|&u| !rt.has_route(u))
            .count();
        assert_eq!(unreachable, 0, "Gao-Rexford must reach everyone");
    }

    #[test]
    fn deterministic_routes() {
        let t = TopologyBuilder::artificial(300, 99).build();
        let a = compute_routes(&t, &[SourceAnnouncement::origin(10)], &no_fail());
        let b = compute_routes(&t, &[SourceAnnouncement::origin(10)], &no_fail());
        for u in 0..t.num_ases() as u32 {
            assert_eq!(a.path(u), b.path(u));
        }
    }
}
