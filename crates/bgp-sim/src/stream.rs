//! Update-stream synthesis: schedule events, propagate, diff, emit.
//!
//! This is the stand-in for the RIS/RV feeds: §11 does exactly the same —
//! "we generate random link failures and feed GILL the induced BGP updates
//! collected by every deployed VP". The generator:
//!
//! 1. snapshots every VP's initial RIB,
//! 2. schedules primary events (link failures, hijacks, origin changes,
//!    community changes) over the window, with secondary events (restores,
//!    hijack ends) queued after a random hold time,
//! 3. on each event recomputes the affected route tables, diffs every VP's
//!    paths and emits announcements/withdrawals with a per-VP convergence
//!    delay (always < the 100 s correlation slack),
//! 4. optionally emits BGP *path exploration* — a short-lived transient
//!    route (stale information from the new next hop) before the final one,
//!    producing the transient paths of use case I,
//! 5. replays the whole stream through per-VP RIBs to annotate the
//!    implicit-withdrawal sets `Lw`/`Cw`.
//!
//! Churn is deliberately skewed: a small "flappy" subset of links and
//! origins receives most events (controlled by
//! [`StreamConfig::world_seed`], which is *shared across streams* so that
//! filters trained on one window keep matching later windows — the property
//! Fig. 7 measures).

use crate::communities::communities_for;
use crate::events::{EventKind, PrefixId, RecordedEvent};
use crate::routing::RouteTable;
use crate::simulator::Simulator;
use bgp_types::{BgpUpdate, Rib, Timestamp, UpdateBuilder, VpId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::time::Duration;

/// Configuration for one synthesized collection window.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Window length in seconds (default 3600 — the paper's one-hour periods).
    pub duration_secs: u64,
    /// Number of primary events to inject (default 80).
    pub events: usize,
    /// Stream randomness (event times, choices). Different windows of the
    /// same "world" use different seeds.
    pub seed: u64,
    /// World randomness: defines which links/origins are flappy. Keep it
    /// fixed across windows of the same experiment.
    pub world_seed: u64,
    /// Relative weights of the primary event kinds
    /// (failure, hijack, origin-change, community-change).
    pub weights: [f64; 4],
    /// Probability that a path change goes through a transient
    /// path-exploration step first (use case I).
    pub explore_prob: f64,
    /// Emit the initial RIB as announcements at t≈0 (default false; the
    /// initial state is returned as `initial_ribs` either way).
    pub include_initial: bool,
    /// Fraction of links/origins that are "flappy" (receive most churn).
    pub flappy_fraction: f64,
    /// Probability that an event hits the flappy subset.
    pub flappy_weight: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            duration_secs: 3600,
            events: 80,
            seed: 0,
            world_seed: 42,
            weights: [0.45, 0.12, 0.13, 0.30],
            explore_prob: 0.35,
            include_initial: false,
            flappy_fraction: 0.08,
            flappy_weight: 0.75,
        }
    }
}

impl StreamConfig {
    /// Sets the number of primary events.
    pub fn events(mut self, n: usize) -> Self {
        self.events = n;
        self
    }

    /// Sets the stream seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the world seed (flappy subsets).
    pub fn world_seed(mut self, s: u64) -> Self {
        self.world_seed = s;
        self
    }

    /// Sets the window length in seconds.
    pub fn duration_secs(mut self, d: u64) -> Self {
        self.duration_secs = d;
        self
    }

    /// Sets the event-kind weights (failure, hijack, origin-change,
    /// community-change).
    pub fn weights(mut self, w: [f64; 4]) -> Self {
        self.weights = w;
        self
    }

    /// Sets the path-exploration probability.
    pub fn explore_prob(mut self, p: f64) -> Self {
        self.explore_prob = p;
        self
    }

    /// Emit initial-RIB announcements at the start of the window.
    pub fn include_initial(mut self, yes: bool) -> Self {
        self.include_initial = yes;
        self
    }
}

/// A synthesized collection window: the updates every VP exported, plus the
/// ground truth needed by the evaluations.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    /// All updates, time-sorted, with `Lw`/`Cw` annotated.
    pub updates: Vec<BgpUpdate>,
    /// Ground-truth events (with affected prefixes and update counts).
    pub events: Vec<RecordedEvent>,
    /// The VPs that fed this window.
    pub vps: Vec<VpId>,
    /// prefix id → origin node at window start.
    pub prefix_origin: Vec<u32>,
    /// Every VP's RIB at window start.
    pub initial_ribs: HashMap<VpId, Rib>,
}

impl UpdateStream {
    /// Updates observed by one VP, in time order.
    pub fn updates_of(&self, vp: VpId) -> impl Iterator<Item = &BgpUpdate> {
        self.updates.iter().filter(move |u| u.vp == vp)
    }

    /// Total number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the stream has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

/// Key for a cached route table: one per plain origin, one per overridden
/// prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum TableKey {
    Origin(u32),
    Prefix(PrefixId),
}

/// A pending (time-ordered) event.
struct Pending {
    time: Timestamp,
    seq: usize,
    kind: EventKind,
}
impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One executed event and the updates it induced, yielded by
/// [`EventStream`]. `event.emitted_updates == updates.len()` always.
#[derive(Clone, Debug)]
pub struct EventBatch {
    /// The ground-truth record (id, kind, time, affected prefixes, count).
    pub event: RecordedEvent,
    /// The updates the event induced, in emission order (per-VP convergence
    /// delays applied, so timestamps are *not* globally sorted yet).
    pub updates: Vec<BgpUpdate>,
}

/// A seeded, pull-based event stream over one collection window.
///
/// Created by [`Simulator::event_stream`]. Each [`Iterator::next`] executes
/// the next effective scheduled event (no-op events — a failure of an
/// already-down link, a hijack of an overridden prefix — are skipped
/// transparently) and yields its [`EventBatch`]. Secondary events (link
/// restores, hijack ends) enter the queue as their primaries execute, so
/// the stream ends only when the whole cascade has drained.
///
/// The iterator borrows the simulator mutably and leaves it in the
/// post-window state when dropped; [`Simulator::synthesize_stream`] wraps
/// it with a state save/restore and the global sort + `Lw`/`Cw`
/// annotation pass. Consumers that want raw per-event batches (the
/// scenario engine's extra-source merge, incremental pipelines) iterate
/// directly.
pub struct EventStream<'s, 'a> {
    sim: &'s mut Simulator<'a>,
    rng: SmallRng,
    explore_prob: f64,
    vp_nodes: Vec<(VpId, u32)>,
    tables: HashMap<TableKey, RouteTable>,
    queue: BinaryHeap<Pending>,
    seq: usize,
    // affected keys recorded per failed link, for the matching restore
    fail_scope: HashMap<(u32, u32), Vec<TableKey>>,
    initial_ribs: HashMap<VpId, Rib>,
    initial_updates: Vec<BgpUpdate>,
    next_id: usize,
}

impl EventStream<'_, '_> {
    /// Every VP's RIB at window start.
    pub fn initial_ribs(&self) -> &HashMap<VpId, Rib> {
        &self.initial_ribs
    }

    /// Takes the initial-RIB announcements (empty unless the config set
    /// `include_initial`). Idempotent: the second call returns nothing.
    pub fn take_initial_updates(&mut self) -> Vec<BgpUpdate> {
        std::mem::take(&mut self.initial_updates)
    }

    /// Scheduled events not yet executed (secondary events included once
    /// their primaries have run).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

impl<'a> Simulator<'a> {
    /// Synthesizes one collection window observed by `vps`. The simulator's
    /// mutable state is restored afterwards, so successive windows with
    /// different seeds are independent samples of the same world.
    pub fn synthesize_stream(&mut self, vps: &[VpId], cfg: StreamConfig) -> UpdateStream {
        let saved = self.save_state();
        let out = self.run_stream(vps, &cfg);
        self.restore_state(saved);
        out
    }

    /// Builds the seeded event iterator for one window: flappy subsets and
    /// primary-event schedule are fixed here, execution is pulled through
    /// [`Iterator::next`]. See [`EventStream`] for the state contract.
    pub fn event_stream<'s>(&'s mut self, vps: &[VpId], cfg: &StreamConfig) -> EventStream<'s, 'a> {
        let topo = self.topology();
        let n = topo.num_ases();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xd1b5_4a32_d192_ed03);
        let vp_nodes: Vec<(VpId, u32)> = vps
            .iter()
            .filter_map(|&v| topo.index_of(v.asn).map(|i| (v, i)))
            .collect();

        // ---- flappy subsets (world-seeded) -------------------------------
        let mut wrng = SmallRng::seed_from_u64(cfg.world_seed ^ 0xaaaa_bbbb_cccc_dddd);
        let all_links: Vec<(u32, u32)> = topo
            .links()
            .iter()
            .map(|l| (l.a.min(l.b), l.a.max(l.b)))
            .collect();
        let mut flappy_links = all_links.clone();
        flappy_links.shuffle(&mut wrng);
        flappy_links.truncate(((all_links.len() as f64 * cfg.flappy_fraction) as usize).max(1));
        let mut flappy_origins: Vec<u32> = (0..n as u32).collect();
        flappy_origins.shuffle(&mut wrng);
        flappy_origins.truncate(((n as f64 * cfg.flappy_fraction) as usize).max(1));

        // ---- initial state ------------------------------------------------
        let initial_ribs = self.rib_snapshot(vps, Timestamp::ZERO);
        let mut tables: HashMap<TableKey, RouteTable> = HashMap::new();
        for origin in 0..n as u32 {
            tables.insert(TableKey::Origin(origin), self.table_for_origin(origin));
        }

        let mut initial_updates: Vec<BgpUpdate> = Vec::new();
        if cfg.include_initial {
            for vp in vps {
                let rib = &initial_ribs[vp];
                let mut entries: Vec<_> = rib.iter().collect();
                entries.sort_by_key(|(p, _)| **p);
                for (prefix, entry) in entries {
                    initial_updates.push(
                        UpdateBuilder::announce(*vp, *prefix)
                            .at(Timestamp::from_millis(rng.gen_range(0..5_000)))
                            .as_path(entry.path.clone())
                            .communities(entry.communities.iter().copied())
                            .build(),
                    );
                }
            }
        }

        // ---- schedule primary events -------------------------------------
        let mut queue: BinaryHeap<Pending> = BinaryHeap::new();
        let mut seq = 0usize;
        let horizon = cfg.duration_secs.saturating_sub(120).max(60);
        let wsum: f64 = cfg.weights.iter().sum();
        for _ in 0..cfg.events {
            let t = Timestamp::from_millis(rng.gen_range(30_000..horizon * 1000));
            let r = rng.gen::<f64>() * wsum;
            let kind = if r < cfg.weights[0] {
                let &(a, b) = if rng.gen::<f64>() < cfg.flappy_weight {
                    flappy_links.choose(&mut rng).unwrap()
                } else {
                    all_links.choose(&mut rng).unwrap()
                };
                EventKind::LinkFailure { a, b }
            } else if r < cfg.weights[0] + cfg.weights[1] {
                let prefix = rng.gen_range(0..self.plan().num_prefixes() as u32);
                let attacker = rng.gen_range(0..n as u32);
                let x = if rng.gen::<f64>() < 0.7 { 1 } else { 2 };
                EventKind::ForgedOriginHijack {
                    prefix,
                    attacker,
                    hijack_type: x,
                }
            } else if r < cfg.weights[0] + cfg.weights[1] + cfg.weights[2] {
                let prefix = rng.gen_range(0..self.plan().num_prefixes() as u32);
                let new_origin = rng.gen_range(0..n as u32);
                EventKind::OriginChange {
                    prefix,
                    new_origin,
                    moas: rng.gen::<f64>() < 0.5,
                }
            } else {
                let origin = if rng.gen::<f64>() < cfg.flappy_weight {
                    *flappy_origins.choose(&mut rng).unwrap()
                } else {
                    rng.gen_range(0..n as u32)
                };
                EventKind::CommunityChange { origin }
            };
            queue.push(Pending {
                time: t,
                seq: {
                    seq += 1;
                    seq
                },
                kind,
            });
        }

        EventStream {
            sim: self,
            rng,
            explore_prob: cfg.explore_prob,
            vp_nodes,
            tables,
            queue,
            seq,
            fail_scope: HashMap::new(),
            initial_ribs,
            initial_updates,
            next_id: 0,
        }
    }

    fn run_stream(&mut self, vps: &[VpId], cfg: &StreamConfig) -> UpdateStream {
        let mut stream = self.event_stream(vps, cfg);
        let mut updates = stream.take_initial_updates();
        let mut events: Vec<RecordedEvent> = Vec::new();
        for batch in stream.by_ref() {
            updates.extend(batch.updates);
            events.push(batch.event);
        }
        let initial_ribs = std::mem::take(&mut stream.initial_ribs);
        drop(stream);

        // ---- annotate Lw/Cw by replay --------------------------------------
        updates.sort_by_key(|u| (u.time, u.vp, u.prefix));
        let mut ribs: HashMap<VpId, Rib> = initial_ribs.clone();
        for u in updates.iter_mut() {
            ribs.entry(u.vp).or_default().apply(u);
        }

        events.sort_by_key(|e| e.time);
        for (i, e) in events.iter_mut().enumerate() {
            e.id = i;
        }

        UpdateStream {
            updates,
            events,
            vps: vps.to_vec(),
            prefix_origin: self.plan().origin_of.clone(),
            initial_ribs,
        }
    }

    /// Diffs two route tables for every VP and emits updates. Returns the
    /// number of updates emitted.
    #[allow(clippy::too_many_arguments)]
    fn diff_and_emit(
        &self,
        vp_nodes: &[(VpId, u32)],
        old: &RouteTable,
        new: &RouteTable,
        prefixes: &[PrefixId],
        time: Timestamp,
        community_only: bool,
        explore_prob: f64,
        rng: &mut SmallRng,
        updates: &mut Vec<BgpUpdate>,
    ) -> usize {
        let mut emitted = 0usize;
        for &(vp, node) in vp_nodes {
            let old_path = old.path(node);
            let new_path = new.path(node);
            if community_only {
                // same path, re-tagged communities
                if let Some(p) = &new_path {
                    let delay = self.convergence_delay(p.len(), rng);
                    for &pid in prefixes {
                        let origin = self.plan().origin_of[pid as usize];
                        let comms = communities_for(
                            p,
                            self.plan().group_of[pid as usize],
                            self.epoch(origin),
                        );
                        updates.push(
                            UpdateBuilder::announce(vp, self.prefix(pid))
                                .at(time + delay)
                                .as_path(self.as_path(p))
                                .communities(comms)
                                .build(),
                        );
                        emitted += 1;
                    }
                }
                continue;
            }
            if old_path == new_path {
                continue;
            }
            match (&old_path, &new_path) {
                (_, Some(np)) => {
                    let delay = self.convergence_delay(np.len(), rng);
                    // optional path exploration: stale route via the new
                    // next hop, visible briefly before the final route
                    let transient = if old_path.is_some() && rng.gen::<f64>() < explore_prob {
                        self.transient_path(node, np, old)
                    } else {
                        None
                    };
                    for &pid in prefixes {
                        let origin_epoch = self.epoch(self.plan().origin_of[pid as usize]);
                        let group = self.plan().group_of[pid as usize];
                        if let Some(tp) = &transient {
                            let tdelay = Duration::from_millis(
                                (delay.as_millis() as u64).saturating_mul(30) / 100,
                            );
                            updates.push(
                                UpdateBuilder::announce(vp, self.prefix(pid))
                                    .at(time + tdelay)
                                    .as_path(self.as_path(tp))
                                    .communities(communities_for(tp, group, origin_epoch))
                                    .build(),
                            );
                            emitted += 1;
                        }
                        updates.push(
                            UpdateBuilder::announce(vp, self.prefix(pid))
                                .at(time + delay)
                                .as_path(self.as_path(np))
                                .communities(communities_for(np, group, origin_epoch))
                                .build(),
                        );
                        emitted += 1;
                    }
                }
                (Some(op), None) => {
                    let delay = self.convergence_delay(op.len(), rng);
                    for &pid in prefixes {
                        updates.push(
                            UpdateBuilder::withdraw(vp, self.prefix(pid))
                                .at(time + delay)
                                .build(),
                        );
                        emitted += 1;
                    }
                }
                (None, None) => {}
            }
        }
        emitted
    }

    /// Path exploration: the VP briefly believes the *stale* route of its
    /// new next hop (classic BGP path exploration \[39\]). Returns a loop-free
    /// transient path different from the final one, if any.
    fn transient_path(&self, node: u32, new_path: &[u32], old: &RouteTable) -> Option<Vec<u32>> {
        if new_path.len() < 2 {
            return None;
        }
        let next_hop = new_path[1];
        let stale = old.path(next_hop)?;
        if stale.contains(&node) {
            return None; // would loop
        }
        let mut t = Vec::with_capacity(stale.len() + 1);
        t.push(node);
        t.extend_from_slice(&stale);
        if t == new_path {
            None
        } else {
            Some(t)
        }
    }

    /// Per-VP convergence delay: base + per-hop + jitter, always < 100 s so
    /// correlated updates stay within the paper's time slack.
    fn convergence_delay(&self, path_len: usize, rng: &mut SmallRng) -> Duration {
        let ms = 800 + 600 * path_len.min(20) as u64 + rng.gen_range(0..4_000u64);
        Duration::from_millis(ms.min(90_000))
    }
}

impl Iterator for EventStream<'_, '_> {
    type Item = EventBatch;

    fn next(&mut self) -> Option<EventBatch> {
        while let Some(Pending { time, kind, .. }) = self.queue.pop() {
            let mut affected: Vec<TableKey> = Vec::new();
            let mut olds: HashMap<TableKey, RouteTable> = HashMap::new();

            // 1. determine scope & snapshot old tables, 2. mutate state
            match &kind {
                EventKind::LinkFailure { a, b } => {
                    if !self.sim.fail_link(*a, *b) {
                        continue; // already down
                    }
                    for (key, t) in &self.tables {
                        if t.uses_link(*a, *b) {
                            affected.push(*key);
                        }
                    }
                    self.fail_scope
                        .insert((*a.min(b), *a.max(b)), affected.clone());
                    // schedule restore
                    let hold = Duration::from_secs(self.rng.gen_range(120..900));
                    queue_push(&mut self.queue, &mut self.seq, time + hold, {
                        EventKind::LinkRestore { a: *a, b: *b }
                    });
                }
                EventKind::LinkRestore { a, b } => {
                    if !self.sim.restore_link(*a, *b) {
                        continue;
                    }
                    affected = self
                        .fail_scope
                        .remove(&(*a.min(b), *a.max(b)))
                        .unwrap_or_default();
                    // keep only keys that still exist
                    let tables = &self.tables;
                    affected.retain(|k| tables.contains_key(k));
                }
                EventKind::ForgedOriginHijack {
                    prefix, attacker, ..
                } => {
                    if self.sim.is_overridden(*prefix) {
                        continue; // one override at a time per prefix
                    }
                    let origin = self.sim.plan().origin_of[*prefix as usize];
                    if *attacker == origin {
                        continue;
                    }
                    olds.insert(
                        TableKey::Prefix(*prefix),
                        self.tables[&TableKey::Origin(origin)].clone(),
                    );
                    if let EventKind::ForgedOriginHijack {
                        prefix: p,
                        attacker: at,
                        hijack_type,
                    } = kind
                    {
                        self.sim.start_hijack(p, at, hijack_type);
                    }
                    affected.push(TableKey::Prefix(*prefix));
                    let hold = Duration::from_secs(self.rng.gen_range(300..1200));
                    queue_push(&mut self.queue, &mut self.seq, time + hold, {
                        EventKind::HijackEnd { prefix: *prefix }
                    });
                }
                EventKind::HijackEnd { prefix } => {
                    if !self.sim.is_overridden(*prefix) {
                        continue;
                    }
                    olds.insert(
                        TableKey::Prefix(*prefix),
                        self.tables
                            .remove(&TableKey::Prefix(*prefix))
                            .unwrap_or_else(|| self.sim.table_for_prefix(*prefix)),
                    );
                    self.sim.clear_override(*prefix);
                    affected.push(TableKey::Prefix(*prefix));
                }
                EventKind::OriginChange {
                    prefix,
                    new_origin,
                    moas,
                } => {
                    if self.sim.is_overridden(*prefix)
                        || *new_origin == self.sim.plan().origin_of[*prefix as usize]
                    {
                        continue;
                    }
                    let origin = self.sim.plan().origin_of[*prefix as usize];
                    olds.insert(
                        TableKey::Prefix(*prefix),
                        self.tables[&TableKey::Origin(origin)].clone(),
                    );
                    self.sim.change_origin(*prefix, *new_origin, *moas);
                    affected.push(TableKey::Prefix(*prefix));
                }
                EventKind::CommunityChange { origin } => {
                    self.sim.bump_epoch(*origin);
                    affected.push(TableKey::Origin(*origin));
                }
            }

            // 3. recompute & diff (sorted: HashMap scan order above is not
            //    deterministic, the stream must be)
            affected.sort_unstable();
            affected.dedup();
            let mut emitted = 0usize;
            let mut updates: Vec<BgpUpdate> = Vec::new();
            let mut affected_prefixes: Vec<PrefixId> = Vec::new();
            let community_only = matches!(kind, EventKind::CommunityChange { .. });
            for key in affected {
                let old = olds
                    .remove(&key)
                    .or_else(|| self.tables.get(&key).cloned())
                    .unwrap_or_else(|| match key {
                        TableKey::Origin(o) => self.sim.table_for_origin(o),
                        TableKey::Prefix(p) => self.sim.table_for_prefix(p),
                    });
                let new = match key {
                    TableKey::Origin(o) => self.sim.table_for_origin(o),
                    TableKey::Prefix(p) => {
                        if self.sim.is_overridden(p) {
                            self.sim.table_for_prefix(p)
                        } else {
                            // back to plain origin routing
                            self.sim
                                .table_for_origin(self.sim.plan().origin_of[p as usize])
                        }
                    }
                };
                let prefixes: Vec<PrefixId> = match key {
                    TableKey::Origin(o) => self.sim.plan().prefixes_of[o as usize]
                        .iter()
                        .copied()
                        .filter(|p| !self.sim.is_overridden(*p))
                        .collect(),
                    TableKey::Prefix(p) => vec![p],
                };
                let count = self.sim.diff_and_emit(
                    &self.vp_nodes,
                    &old,
                    &new,
                    &prefixes,
                    time,
                    community_only,
                    self.explore_prob,
                    &mut self.rng,
                    &mut updates,
                );
                if count > 0 {
                    affected_prefixes.extend(&prefixes);
                }
                emitted += count;
                // update cache (per-prefix overrides live under Prefix key;
                // a cleared override goes back to the Origin key, which is
                // still cached and may be refreshed here too)
                match key {
                    TableKey::Origin(_) => {
                        self.tables.insert(key, new);
                    }
                    TableKey::Prefix(p) => {
                        if self.sim.is_overridden(p) {
                            self.tables.insert(key, new);
                        } else {
                            self.tables.remove(&key);
                        }
                    }
                }
            }

            let event = RecordedEvent {
                id: self.next_id,
                kind,
                time,
                affected_prefixes,
                emitted_updates: emitted,
            };
            self.next_id += 1;
            return Some(EventBatch { event, updates });
        }
        None
    }
}

/// Pushes a secondary event with the next sequence number.
fn queue_push(queue: &mut BinaryHeap<Pending>, seq: &mut usize, time: Timestamp, kind: EventKind) {
    *seq += 1;
    queue.push(Pending {
        time,
        seq: *seq,
        kind,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_types::UpdateKind;

    fn small_stream(seed: u64, events: usize) -> (UpdateStream, usize) {
        let topo = TopologyBuilder::artificial(150, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.2, 3);
        let nvps = vps.len();
        let s = sim.synthesize_stream(&vps, StreamConfig::default().events(events).seed(seed));
        (s, nvps)
    }

    #[test]
    fn stream_is_time_sorted_and_annotated() {
        let (s, _) = small_stream(1, 40);
        assert!(!s.is_empty(), "no updates generated");
        for w in s.updates.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // some update must have a non-empty withdrawn-link set (a path change)
        assert!(
            s.updates.iter().any(|u| !u.withdrawn_links.is_empty()),
            "no implicit withdrawals annotated"
        );
    }

    #[test]
    fn stream_is_deterministic() {
        let (a, _) = small_stream(7, 30);
        let (b, _) = small_stream(7, 30);
        assert_eq!(a.updates.len(), b.updates.len());
        assert_eq!(a.updates, b.updates);
        let (c, _) = small_stream(8, 30);
        assert!(
            !(a.updates.len() == c.updates.len() && a.updates == c.updates),
            "different seeds must differ"
        );
    }

    #[test]
    fn events_are_recorded_with_counts() {
        let (s, _) = small_stream(2, 40);
        assert!(!s.events.is_empty());
        let total: usize = s.events.iter().map(|e| e.emitted_updates).sum();
        let base = if s.updates.is_empty() { 0 } else { total };
        assert_eq!(
            base,
            s.updates.len(),
            "event counts must sum to stream size"
        );
        // recorded events are time sorted with sequential ids
        for (i, e) in s.events.iter().enumerate() {
            assert_eq!(e.id, i);
        }
    }

    #[test]
    fn failure_produces_updates_or_withdrawals_and_restore_reverts() {
        let topo = TopologyBuilder::artificial(120, 9).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.5, 1);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(25)
                .seed(11)
                .weights([1.0, 0.0, 0.0, 0.0]),
        );
        assert!(s.updates.iter().all(|u| match u.kind {
            UpdateKind::Announce => !u.path.is_empty(),
            UpdateKind::Withdraw => u.path.is_empty(),
        }));
        // the simulator state is restored
        assert!(sim.failed_links().is_empty());
    }

    #[test]
    fn community_change_emits_unchanged_path_updates() {
        let topo = TopologyBuilder::artificial(100, 10).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 2);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(12)
                .seed(13)
                .weights([0.0, 0.0, 0.0, 1.0]),
        );
        assert!(!s.is_empty());
        // every update announces an unchanged path: Lw must be empty and the
        // previous RIB entry had the same path
        for u in &s.updates {
            assert!(u.is_announce());
            assert!(
                u.withdrawn_links.is_empty(),
                "path changed on community event"
            );
        }
        // and communities actually changed for at least one update
        assert!(s
            .updates
            .iter()
            .any(|u| !u.withdrawn_communities.is_empty()));
    }

    #[test]
    fn hijack_updates_route_to_attacker() {
        let topo = TopologyBuilder::artificial(100, 11).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(1.0, 2); // all ASes host VPs
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(6)
                .seed(17)
                .weights([0.0, 1.0, 0.0, 0.0]),
        );
        let hijacks: Vec<_> = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ForgedOriginHijack { .. }))
            .collect();
        assert!(!hijacks.is_empty());
        // at full coverage, some hijack must be visible
        let visible = hijacks.iter().any(|e| e.emitted_updates > 0);
        assert!(visible, "no hijack visible at 100% coverage");
    }

    #[test]
    fn include_initial_emits_full_ribs() {
        let topo = TopologyBuilder::artificial(60, 12).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.1, 3);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(0)
                .include_initial(true)
                .seed(1),
        );
        let expected = vps.len() * sim.plan().num_prefixes();
        assert_eq!(s.updates.len(), expected);
    }

    #[test]
    fn transient_paths_precede_final_paths() {
        let topo = TopologyBuilder::artificial(200, 13).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.5, 4);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(40)
                .seed(19)
                .weights([1.0, 0.0, 0.0, 0.0])
                .explore_prob(1.0),
        );
        // find a (vp, prefix) with two announcements close in time: the
        // transient then the final
        let mut found = false;
        for (i, u) in s.updates.iter().enumerate() {
            for v in s.updates.iter().skip(i + 1) {
                if u.vp == v.vp
                    && u.prefix == v.prefix
                    && u.is_announce()
                    && v.is_announce()
                    && u.path != v.path
                    && (v.time - u.time) < Duration::from_secs(300)
                {
                    found = true;
                    break;
                }
            }
            if found {
                break;
            }
        }
        assert!(found, "no transient path produced with explore_prob = 1");
    }

    #[test]
    fn delays_stay_within_correlation_slack() {
        let (s, _) = small_stream(23, 40);
        for e in &s.events {
            for u in &s.updates {
                // every update belongs to some event; just assert global
                // bound: updates never lag an event by >= 100 s when they
                // share its timestamp neighborhood. Simplest check: delay
                // model caps at 90 s, so min gap to the *triggering* event
                // is below slack. Verify no update precedes every event.
                let _ = (e, u);
            }
        }
        // direct check of the delay model
        let topo = TopologyBuilder::artificial(50, 1).build();
        let sim = Simulator::new(&topo);
        let mut rng = SmallRng::seed_from_u64(1);
        for len in [1usize, 5, 30] {
            let d = sim.convergence_delay(len, &mut rng);
            assert!(d < Duration::from_secs(100));
        }
    }
}
