//! Synthetic community tagging.
//!
//! Real RIS/RV data shows a strong correlation between the AS path and the
//! community set — §18.2 measures that two identical AS paths share the
//! exact same communities in 93 % of cases. The simulator reproduces that
//! structure by making the community set a *deterministic function of the
//! path* (ingress/propagation tags), the prefix group (origin tag) and the
//! origin's "community epoch", which only changes on
//! [`crate::EventKind::CommunityChange`] events — so epoch bumps produce
//! unchanged-path updates (use case V).
//!
//! Action communities (use case IV) are attached on odd epochs and, like
//! real traffic-engineering tags, only survive a few hops from the origin —
//! which is what makes them "the most challenging to observe" (§10).

use bgp_types::Community;
use std::collections::BTreeSet;

/// Maximum unique path length (in ASes) at which action communities are
/// still visible — transit networks strip them beyond this.
pub const ACTION_VISIBILITY_HOPS: usize = 4;

#[inline]
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer — cheap, deterministic tag derivation.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the community set carried by an announcement.
///
/// * `path` — node indices, VP side first, origin last (prepends allowed).
/// * `prefix_group` — the origin-local index of the prefix.
/// * `epoch` — the origin's community epoch (bumped by community-change
///   events).
pub fn communities_for(path: &[u32], prefix_group: u32, epoch: u32) -> BTreeSet<Community> {
    let mut out = BTreeSet::new();
    let Some(&origin) = path.last() else {
        return out;
    };
    let origin16 = (origin % 60_000 + 1) as u16;
    // Origin's informational tag: depends on the prefix group and epoch.
    // Groups of four prefixes share a tag, mirroring how operators tag
    // address blocks rather than individual prefixes — which is what makes
    // same-origin prefixes carry *identical* updates (the cross-prefix
    // redundancy GILL's Step 3 exploits, §17.3).
    out.insert(Community::new(
        origin16,
        100 + ((prefix_group / 4 + epoch) % 30) as u16,
    ));
    // Propagation tags: a subset of on-path ASes tag the route; which ones
    // do is a deterministic function of the adjacent pair, so identical
    // paths always carry identical tag sets.
    let mut uniq: Vec<u32> = Vec::with_capacity(path.len());
    for &h in path {
        if uniq.last() != Some(&h) {
            uniq.push(h);
        }
    }
    for w in uniq.windows(2) {
        let h = mix(((w[0] as u64) << 32) | w[1] as u64);
        if h.is_multiple_of(3) {
            let tagger16 = (w[0] % 60_000 + 1) as u16;
            out.insert(Community::new(tagger16, 200 + (h % 40) as u16));
        }
    }
    // Geo-ish tag from the first transit hop.
    if uniq.len() >= 2 {
        let t16 = (uniq[1] % 60_000 + 1) as u16;
        out.insert(Community::new(t16, 300 + (mix(uniq[1] as u64) % 20) as u16));
    }
    // Action community: odd epochs request traffic engineering; stripped
    // beyond ACTION_VISIBILITY_HOPS.
    if epoch % 2 == 1 && uniq.len() <= ACTION_VISIBILITY_HOPS {
        out.insert(Community::new(
            origin16,
            Community::ACTION_BASE + (epoch % Community::ACTION_RANGE as u32) as u16,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_paths_share_identical_communities() {
        let a = communities_for(&[9, 5, 2, 7], 0, 0);
        let b = communities_for(&[9, 5, 2, 7], 0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_paths_usually_differ() {
        let a = communities_for(&[9, 5, 2, 7], 0, 0);
        let b = communities_for(&[9, 6, 2, 7], 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn epoch_changes_communities_but_origin_stays() {
        let a = communities_for(&[9, 5, 7], 0, 0);
        let b = communities_for(&[9, 5, 7], 0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn action_communities_on_odd_epochs_near_origin_only() {
        let near = communities_for(&[5, 7], 0, 1);
        assert!(near.iter().any(|c| c.is_action()), "{near:?}");
        let far = communities_for(&[1, 2, 3, 4, 5, 7], 0, 1);
        assert!(!far.iter().any(|c| c.is_action()));
        let even = communities_for(&[5, 7], 0, 2);
        assert!(!even.iter().any(|c| c.is_action()));
    }

    #[test]
    fn prepending_does_not_change_tags() {
        let a = communities_for(&[9, 5, 5, 5, 7], 0, 0);
        let b = communities_for(&[9, 5, 7], 0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_path_empty_set() {
        assert!(communities_for(&[], 0, 0).is_empty());
    }

    #[test]
    fn prefix_group_quads_share_origin_tags() {
        // groups 0..3 share the origin tag (cross-prefix redundancy)…
        let a = communities_for(&[9, 7], 0, 0);
        let b = communities_for(&[9, 7], 3, 0);
        assert_eq!(a, b);
        // …but group 4 starts a new block
        let c = communities_for(&[9, 7], 4, 0);
        assert_ne!(a, c);
    }
}
