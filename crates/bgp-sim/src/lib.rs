//! A C-BGP-like BGP route-propagation simulator and update-stream
//! synthesizer — the controlled "mini Internet" substrate of §3 and §11.
//!
//! * [`routing`] — Gao–Rexford path-vector route computation, including
//!   multi-source announcements (MOAS) and forged-origin hijacks.
//! * [`simulator`] — the stateful simulator: prefix plan, failed links,
//!   hijack/MOAS overrides, community epochs, RIB snapshots.
//! * [`stream`] — synthesis of realistic BGP update streams from scheduled
//!   routing events, with convergence delays, path exploration and
//!   community tagging; the stand-in for the RIS/RV feeds.
//! * [`events`] — the event vocabulary and ground-truth records.
//! * [`communities`] — the deterministic community-tagging model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod communities;
pub mod events;
pub mod routing;
pub mod simulator;
pub mod stream;

pub use events::{EventKind, PrefixId, RecordedEvent};
pub use routing::{compute_routes, RouteClass, RouteTable, SourceAnnouncement};
pub use simulator::{PrefixPlan, SimState, Simulator};
pub use stream::{EventBatch, EventStream, StreamConfig, UpdateStream};
