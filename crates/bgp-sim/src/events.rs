//! Routing events the simulator can inject.

use bgp_types::Timestamp;

/// Dense prefix identifier used inside the simulator; maps to a concrete
/// [`bgp_types::Prefix`] via [`bgp_types::Prefix::synthetic`].
pub type PrefixId = u32;

/// The kinds of routing events the paper's experiments exercise: link
/// failures/restorations (§3 failure localization, §11 training), forged-
/// origin Type-X hijacks (§3, §11), origin changes (MOAS, §10 use case II,
/// §18.1 event class), and community-only changes (use cases IV and V).
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// The undirected link `{a, b}` (node indices) goes down.
    LinkFailure {
        /// One endpoint.
        a: u32,
        /// Other endpoint.
        b: u32,
    },
    /// The undirected link `{a, b}` comes back.
    LinkRestore {
        /// One endpoint.
        a: u32,
        /// Other endpoint.
        b: u32,
    },
    /// `attacker` announces `prefix` with a forged AS path that keeps the
    /// legitimate origin as rightmost hop; `hijack_type` = X ≥ 1 is the
    /// attacker's position in the forged path (Type-1 claims adjacency).
    ForgedOriginHijack {
        /// Victim prefix.
        prefix: PrefixId,
        /// Attacker node index.
        attacker: u32,
        /// X in "Type-X".
        hijack_type: u8,
    },
    /// The hijack on `prefix` stops.
    HijackEnd {
        /// Victim prefix.
        prefix: PrefixId,
    },
    /// `prefix` moves to (or is additionally announced by) `new_origin`.
    /// When `moas` is true the old origin keeps announcing too.
    OriginChange {
        /// Affected prefix.
        prefix: PrefixId,
        /// The new announcing AS.
        new_origin: u32,
        /// Multiple-origin (both announce) vs clean move.
        moas: bool,
    },
    /// `origin` re-tags its announcements: all of its prefixes are
    /// re-announced with the same AS path but a new community set
    /// (producing the unchanged-path updates of use case V, and action
    /// communities for use case IV).
    CommunityChange {
        /// The origin AS whose prefixes are re-tagged.
        origin: u32,
    },
}

impl EventKind {
    /// Short tag for logs and tables.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::LinkFailure { .. } => "fail",
            EventKind::LinkRestore { .. } => "restore",
            EventKind::ForgedOriginHijack { .. } => "hijack",
            EventKind::HijackEnd { .. } => "hijack-end",
            EventKind::OriginChange { .. } => "origin-change",
            EventKind::CommunityChange { .. } => "community-change",
        }
    }
}

/// A ground-truth record of one injected event, kept alongside the
/// synthesized stream so evaluations don't have to re-infer what happened.
#[derive(Clone, Debug)]
pub struct RecordedEvent {
    /// Sequential event id.
    pub id: usize,
    /// What happened.
    pub kind: EventKind,
    /// Injection time.
    pub time: Timestamp,
    /// Prefixes whose routes actually changed.
    pub affected_prefixes: Vec<PrefixId>,
    /// Number of updates the event put on the wire.
    pub emitted_updates: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let kinds = [
            EventKind::LinkFailure { a: 0, b: 1 },
            EventKind::LinkRestore { a: 0, b: 1 },
            EventKind::ForgedOriginHijack {
                prefix: 0,
                attacker: 1,
                hijack_type: 1,
            },
            EventKind::HijackEnd { prefix: 0 },
            EventKind::OriginChange {
                prefix: 0,
                new_origin: 1,
                moas: false,
            },
            EventKind::CommunityChange { origin: 0 },
        ];
        let tags: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), kinds.len());
    }
}
