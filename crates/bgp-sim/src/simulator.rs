//! The simulator: prefix plan, mutable routing state, RIB snapshots.

use crate::events::PrefixId;
use crate::routing::{compute_routes, RouteTable, SourceAnnouncement};
use as_topology::Topology;
use bgp_types::{AsPath, Prefix, Rib, RibEntry, Timestamp, VpId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

use crate::communities::communities_for;

/// Assignment of announced prefixes to origin ASes.
///
/// §3: "We ensure that the number of prefixes announced by the ASes follows
/// the distribution observed in the real Internet" — i.e. heavy-tailed:
/// most ASes announce one prefix, a few announce dozens.
#[derive(Clone, Debug)]
pub struct PrefixPlan {
    /// prefix id → origin node index.
    pub origin_of: Vec<u32>,
    /// node index → its prefix ids.
    pub prefixes_of: Vec<Vec<PrefixId>>,
    /// prefix id → origin-local group index (0 for the AS's first prefix).
    pub group_of: Vec<u32>,
}

impl PrefixPlan {
    /// Every AS announces exactly one prefix.
    pub fn one_per_as(n: usize) -> Self {
        PrefixPlan {
            origin_of: (0..n as u32).collect(),
            prefixes_of: (0..n as u32).map(|u| vec![u]).collect(),
            group_of: vec![0; n],
        }
    }

    /// Heavy-tailed per-AS prefix counts: every AS announces at least one
    /// prefix; ~20 % announce a few more, a few announce dozens.
    pub fn heavy_tailed(topo: &Topology, seed: u64) -> Self {
        let n = topo.num_ases();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        let mut origin_of = Vec::new();
        let mut prefixes_of = vec![Vec::new(); n];
        let mut group_of = Vec::new();
        for u in 0..n as u32 {
            let r: f64 = rng.gen();
            // heavier tail for transit ASes (they announce more space)
            let bias = if topo.is_transit(u) { 2.0 } else { 1.0 };
            let extra = if r < 0.80 {
                0
            } else if r < 0.92 {
                (1.0 * bias) as usize
            } else if r < 0.985 {
                (4.0 * bias) as usize
            } else {
                (12.0 * bias) as usize
            };
            for g in 0..=(extra as u32) {
                let id = origin_of.len() as PrefixId;
                origin_of.push(u);
                prefixes_of[u as usize].push(id);
                group_of.push(g);
            }
        }
        PrefixPlan {
            origin_of,
            prefixes_of,
            group_of,
        }
    }

    /// Number of prefixes.
    pub fn num_prefixes(&self) -> usize {
        self.origin_of.len()
    }
}

/// A C-BGP-like simulator over one topology: holds the prefix plan, the set
/// of failed links, per-prefix source overrides (hijacks, MOAS, origin
/// moves) and per-origin community epochs; computes route tables on demand.
pub struct Simulator<'a> {
    topo: &'a Topology,
    plan: PrefixPlan,
    failed: HashSet<(u32, u32)>,
    /// Per-prefix override of the announcing sources (None → plain origin).
    overrides: HashMap<PrefixId, Vec<SourceAnnouncement>>,
    /// Community epoch per origin node.
    epochs: HashMap<u32, u32>,
}

impl<'a> Simulator<'a> {
    /// A simulator where every AS announces one prefix.
    pub fn new(topo: &'a Topology) -> Self {
        Simulator::with_plan(topo, PrefixPlan::one_per_as(topo.num_ases()))
    }

    /// A simulator with an explicit prefix plan.
    pub fn with_plan(topo: &'a Topology, plan: PrefixPlan) -> Self {
        Simulator {
            topo,
            plan,
            failed: HashSet::new(),
            overrides: HashMap::new(),
            epochs: HashMap::new(),
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The prefix plan.
    pub fn plan(&self) -> &PrefixPlan {
        &self.plan
    }

    /// Currently failed links.
    pub fn failed_links(&self) -> &HashSet<(u32, u32)> {
        &self.failed
    }

    /// The current announcing sources for `prefix`.
    pub fn sources_for(&self, prefix: PrefixId) -> Vec<SourceAnnouncement> {
        self.overrides.get(&prefix).cloned().unwrap_or_else(|| {
            vec![SourceAnnouncement::origin(
                self.plan.origin_of[prefix as usize],
            )]
        })
    }

    /// Whether `prefix`'s sources are currently overridden (hijack/MOAS/
    /// moved origin).
    pub fn is_overridden(&self, prefix: PrefixId) -> bool {
        self.overrides.contains_key(&prefix)
    }

    /// Routes for `prefix` under the current state.
    pub fn table_for_prefix(&self, prefix: PrefixId) -> RouteTable {
        compute_routes(self.topo, &self.sources_for(prefix), &self.failed)
    }

    /// Routes for a plain origination by `node` under the current state
    /// (shared by all non-overridden prefixes of that origin).
    pub fn table_for_origin(&self, node: u32) -> RouteTable {
        compute_routes(self.topo, &[SourceAnnouncement::origin(node)], &self.failed)
    }

    /// Community epoch of `origin`.
    pub fn epoch(&self, origin: u32) -> u32 {
        self.epochs.get(&origin).copied().unwrap_or(0)
    }

    // ---- mutators -------------------------------------------------------

    /// Fails the undirected link `{a, b}`. Returns false if already failed.
    pub fn fail_link(&mut self, a: u32, b: u32) -> bool {
        self.failed.insert(norm(a, b))
    }

    /// Restores the undirected link `{a, b}`.
    pub fn restore_link(&mut self, a: u32, b: u32) -> bool {
        self.failed.remove(&norm(a, b))
    }

    /// Starts a forged-origin Type-`x` hijack of `prefix` by `attacker`.
    /// Filler hops (for `x ≥ 2`) are real neighbors of the victim, making
    /// the forged path plausible (as in DFOH's threat model \[25\]).
    pub fn start_hijack(&mut self, prefix: PrefixId, attacker: u32, x: u8) {
        let victim = self.plan.origin_of[prefix as usize];
        let fillers = self.pick_fillers(victim, attacker, x.saturating_sub(1) as usize);
        let mut sources = vec![SourceAnnouncement::origin(victim)];
        sources.push(SourceAnnouncement::forged(attacker, &fillers, victim));
        self.overrides.insert(prefix, sources);
    }

    fn pick_fillers(&self, victim: u32, attacker: u32, count: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(count);
        let mut candidates: Vec<u32> = self
            .topo
            .providers(victim)
            .iter()
            .chain(self.topo.peers(victim))
            .chain(self.topo.customers(victim))
            .copied()
            .filter(|&v| v != attacker && v != victim)
            .collect();
        candidates.sort_unstable();
        for c in candidates.into_iter().take(count) {
            out.push(c);
        }
        // Pad with arbitrary distinct nodes if the victim has few neighbors.
        let mut fallback = 0u32;
        while out.len() < count {
            if fallback != victim && fallback != attacker && !out.contains(&fallback) {
                out.push(fallback);
            }
            fallback += 1;
        }
        out
    }

    /// Ends any hijack/override on `prefix`.
    pub fn clear_override(&mut self, prefix: PrefixId) {
        self.overrides.remove(&prefix);
    }

    /// Moves `prefix` to `new_origin`; with `moas` both origins announce.
    pub fn change_origin(&mut self, prefix: PrefixId, new_origin: u32, moas: bool) {
        let mut sources = vec![SourceAnnouncement::origin(new_origin)];
        if moas {
            sources.push(SourceAnnouncement::origin(
                self.plan.origin_of[prefix as usize],
            ));
        }
        self.overrides.insert(prefix, sources);
    }

    /// Bumps the community epoch of `origin` (a community-change event).
    pub fn bump_epoch(&mut self, origin: u32) -> u32 {
        let e = self.epochs.entry(origin).or_insert(0);
        *e += 1;
        *e
    }

    // ---- observation helpers -------------------------------------------

    /// Converts a node-index path to an [`AsPath`].
    pub fn as_path(&self, node_path: &[u32]) -> AsPath {
        AsPath::new(node_path.iter().map(|&i| self.topo.asn(i)).collect())
    }

    /// The concrete [`Prefix`] for a prefix id.
    pub fn prefix(&self, id: PrefixId) -> Prefix {
        Prefix::synthetic(id)
    }

    /// Snapshot of every VP's RIB under the current state (one entry per
    /// reachable prefix, with path-derived communities), timestamped `t`.
    ///
    /// Route-table computation — the expensive part — is fanned out across
    /// threads per origin batch; the snapshot fill then runs sequentially
    /// in ascending origin order, so the result is identical to a fully
    /// sequential pass.
    pub fn rib_snapshot(&self, vps: &[VpId], t: Timestamp) -> HashMap<VpId, Rib> {
        use rayon::prelude::*;
        let mut ribs: HashMap<VpId, Rib> = vps.iter().map(|&v| (v, Rib::new())).collect();
        let vp_nodes: Vec<(VpId, u32)> = vps
            .iter()
            .filter_map(|&v| self.topo.index_of(v.asn).map(|i| (v, i)))
            .collect();
        // Group non-overridden prefixes by origin so each origin's table is
        // computed once (all its prefixes share identical routes); the
        // per-origin propagations are independent and run in parallel.
        let plain_batches: Vec<(u32, Vec<PrefixId>)> = (0..self.topo.num_ases() as u32)
            .filter_map(|origin| {
                let plain: Vec<PrefixId> = self.plan.prefixes_of[origin as usize]
                    .iter()
                    .copied()
                    .filter(|p| !self.is_overridden(*p))
                    .collect();
                (!plain.is_empty()).then_some((origin, plain))
            })
            .collect();
        let plain_tables: Vec<(u32, Vec<PrefixId>, RouteTable)> = plain_batches
            .into_par_iter()
            .map(|(origin, plain)| {
                let table = self.table_for_origin(origin);
                (origin, plain, table)
            })
            .collect();
        for (origin, plain, table) in &plain_tables {
            self.fill_snapshot(&mut ribs, &vp_nodes, table, plain, *origin, t);
        }
        let mut overridden: Vec<PrefixId> = self.overrides.keys().copied().collect();
        overridden.sort_unstable();
        let override_tables: Vec<(PrefixId, RouteTable)> = overridden
            .into_par_iter()
            .map(|p| (p, self.table_for_prefix(p)))
            .collect();
        for (p, table) in &override_tables {
            let origin = self.plan.origin_of[*p as usize];
            self.fill_snapshot(&mut ribs, &vp_nodes, table, &[*p], origin, t);
        }
        ribs
    }

    fn fill_snapshot(
        &self,
        ribs: &mut HashMap<VpId, Rib>,
        vp_nodes: &[(VpId, u32)],
        table: &RouteTable,
        prefixes: &[PrefixId],
        origin: u32,
        t: Timestamp,
    ) {
        let epoch = self.epoch(origin);
        for &(vp, node) in vp_nodes {
            let Some(path_nodes) = table.path(node) else {
                continue;
            };
            let path = self.as_path(&path_nodes);
            for &p in prefixes {
                let comms = communities_for(&path_nodes, self.plan.group_of[p as usize], epoch);
                let entry = RibEntry {
                    path: path.clone(),
                    communities: comms,
                    time: t,
                };
                insert_rib(ribs.get_mut(&vp).unwrap(), self.prefix(p), entry);
            }
        }
    }

    /// Saves the mutable state (failed links, overrides, epochs).
    pub fn save_state(&self) -> SimState {
        SimState {
            failed: self.failed.clone(),
            overrides: self.overrides.clone(),
            epochs: self.epochs.clone(),
        }
    }

    /// Restores a previously saved state.
    pub fn restore_state(&mut self, s: SimState) {
        self.failed = s.failed;
        self.overrides = s.overrides;
        self.epochs = s.epochs;
    }
}

/// Opaque snapshot of a simulator's mutable state.
#[derive(Clone, Debug)]
pub struct SimState {
    failed: HashSet<(u32, u32)>,
    overrides: HashMap<PrefixId, Vec<SourceAnnouncement>>,
    epochs: HashMap<u32, u32>,
}

fn insert_rib(rib: &mut Rib, prefix: Prefix, entry: RibEntry) {
    // Rib has no direct insert; go through an update application.
    use bgp_types::UpdateBuilder;
    let mut u = UpdateBuilder::announce(VpId::default(), prefix)
        .at(entry.time)
        .as_path(entry.path.clone())
        .communities(entry.communities.iter().copied())
        .build();
    rib.apply(&mut u);
}

#[inline]
fn norm(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_types::Asn;

    #[test]
    fn heavy_tailed_plan_covers_all_ases() {
        let t = TopologyBuilder::artificial(500, 31).build();
        let plan = PrefixPlan::heavy_tailed(&t, 1);
        assert!(plan.num_prefixes() >= 500);
        for u in 0..500 {
            assert!(!plan.prefixes_of[u].is_empty(), "AS {u} has no prefix");
        }
        // heavy tail: someone announces many
        let max = plan.prefixes_of.iter().map(Vec::len).max().unwrap();
        assert!(max >= 5, "tail too light: max {max}");
        // group indices are origin-local
        for (p, &o) in plan.origin_of.iter().enumerate() {
            assert!(plan.prefixes_of[o as usize].contains(&(p as u32)));
        }
    }

    #[test]
    fn failing_and_restoring_links_changes_tables() {
        let t = TopologyBuilder::artificial(200, 32).build();
        let mut sim = Simulator::new(&t);
        let origin = 150u32;
        let before = sim.table_for_origin(origin);
        // fail the origin's first provider link
        let p = t.providers(origin)[0];
        assert!(sim.fail_link(origin, p));
        let during = sim.table_for_origin(origin);
        assert_ne!(before.path(p), during.path(p));
        sim.restore_link(origin, p);
        let after = sim.table_for_origin(origin);
        for u in 0..t.num_ases() as u32 {
            assert_eq!(before.path(u), after.path(u));
        }
    }

    #[test]
    fn hijack_override_and_clear() {
        let t = TopologyBuilder::artificial(200, 33).build();
        let mut sim = Simulator::new(&t);
        let prefix = 10u32;
        sim.start_hijack(prefix, 180, 1);
        assert!(sim.is_overridden(prefix));
        let table = sim.table_for_prefix(prefix);
        // attacker routes to itself
        assert_eq!(table.source_index(180), Some(1));
        sim.clear_override(prefix);
        assert!(!sim.is_overridden(prefix));
    }

    #[test]
    fn type3_hijack_uses_real_neighbor_fillers() {
        let t = TopologyBuilder::artificial(200, 34).build();
        let mut sim = Simulator::new(&t);
        let prefix = 20u32;
        let victim = 20u32;
        sim.start_hijack(prefix, 100, 3);
        let srcs = sim.sources_for(prefix);
        let forged = &srcs[1];
        assert_eq!(forged.initial_path.len(), 4); // attacker + 2 fillers + victim
        assert_eq!(*forged.initial_path.last().unwrap(), victim);
        assert_eq!(forged.initial_path[0], 100);
    }

    #[test]
    fn moas_keeps_both_origins() {
        let t = TopologyBuilder::artificial(100, 35).build();
        let mut sim = Simulator::new(&t);
        sim.change_origin(5, 50, true);
        let srcs = sim.sources_for(5);
        assert_eq!(srcs.len(), 2);
        let table = sim.table_for_prefix(5);
        // both origins keep their own announcement
        assert_eq!(table.path(50), Some(vec![50]));
        assert_eq!(table.path(5), Some(vec![5]));
    }

    #[test]
    fn rib_snapshot_is_complete_for_connected_topo() {
        let t = TopologyBuilder::artificial(150, 36).build();
        let sim = Simulator::new(&t);
        let vps = t.pick_vps(0.1, 1);
        let ribs = sim.rib_snapshot(&vps, Timestamp::ZERO);
        assert_eq!(ribs.len(), vps.len());
        for (vp, rib) in &ribs {
            assert_eq!(
                rib.len(),
                sim.plan().num_prefixes(),
                "VP {vp} misses prefixes"
            );
        }
    }

    #[test]
    fn rib_paths_end_at_origin() {
        let t = TopologyBuilder::artificial(150, 37).build();
        let sim = Simulator::new(&t);
        let vps = t.pick_vps(0.05, 2);
        let ribs = sim.rib_snapshot(&vps, Timestamp::ZERO);
        for rib in ribs.values() {
            for (prefix, entry) in rib.iter() {
                // prefix id = origin node for one_per_as plan
                let pid = (0..sim.plan().num_prefixes() as u32)
                    .find(|&p| sim.prefix(p) == *prefix)
                    .unwrap();
                let origin_asn = Asn(sim.plan().origin_of[pid as usize] + 1);
                assert_eq!(entry.path.origin(), Some(origin_asn));
            }
        }
    }

    #[test]
    fn save_restore_roundtrip() {
        let t = TopologyBuilder::artificial(100, 38).build();
        let mut sim = Simulator::new(&t);
        let saved = sim.save_state();
        sim.fail_link(0, t.providers(0).first().copied().unwrap_or(1));
        sim.start_hijack(3, 70, 2);
        sim.bump_epoch(4);
        sim.restore_state(saved);
        assert!(sim.failed_links().is_empty());
        assert!(!sim.is_overridden(3));
        assert_eq!(sim.epoch(4), 0);
    }

    #[test]
    fn epochs_accumulate() {
        let t = TopologyBuilder::artificial(50, 39).build();
        let mut sim = Simulator::new(&t);
        assert_eq!(sim.epoch(7), 0);
        assert_eq!(sim.bump_epoch(7), 1);
        assert_eq!(sim.bump_epoch(7), 2);
        assert_eq!(sim.epoch(7), 2);
    }
}
