//! BGP data sampling schemes: GILL's sampling and every baseline of §10.
//!
//! All schemes implement [`Sampler`]: given an [`UpdateStream`] and an
//! update budget, they return the indices of the updates they retain. The
//! benchmark of Table 2 gives every scheme the *same* budget (the volume
//! GILL naturally retains), so differences in use-case scores are
//! attributable to *which* updates are kept, not how many.
//!
//! * [`GillSampler`] — the full system (component #1 + component #2),
//!   plus the simplified GILL-upd / GILL-vp variants of §10.
//! * [`RandomUpdates`], [`RandomVps`] — the naive baselines.
//! * [`AsDistance`] — pick VPs maximizing pairwise AS-level distance.
//! * [`Unbiased`] — iteratively drop the VP that most increases sampling
//!   bias (à la \[57\]), keep the rest.
//! * [`DefSpecific`] — greedy VP selection minimizing redundancy under one
//!   of the three §4.2 definitions.
//! * [`ObjectiveSpecific`] — greedy VP selection maximizing an arbitrary
//!   use-case objective (the "use-case-based specifics" of §10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use as_topology::AsCategory;
use bgp_sim::UpdateStream;
use bgp_types::{Asn, BgpUpdate, VpId};
use gill_core::{FilterSet, GillAnalysis, GillConfig, RedundancyDef};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A BGP data sampling scheme.
pub trait Sampler {
    /// Human-readable name (Table 2 row labels).
    fn name(&self) -> String;

    /// Returns the indices (into `stream.updates`) of the retained updates,
    /// at most `budget` of them, deterministically in `seed`.
    fn sample(&self, stream: &UpdateStream, budget: usize, seed: u64) -> Vec<usize>;
}

/// Deterministically truncates `idx` to `budget` (random subsample, then
/// restored to time order).
fn truncate(mut idx: Vec<usize>, budget: usize, seed: u64) -> Vec<usize> {
    if idx.len() <= budget {
        return idx;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e57_7e57_7e57_7e57);
    idx.shuffle(&mut rng);
    idx.truncate(budget);
    idx.sort_unstable();
    idx
}

/// Groups update indices by VP.
fn by_vp(stream: &UpdateStream) -> BTreeMap<VpId, Vec<usize>> {
    let mut m: BTreeMap<VpId, Vec<usize>> = BTreeMap::new();
    for (i, u) in stream.updates.iter().enumerate() {
        m.entry(u.vp).or_default().push(i);
    }
    m
}

/// Takes whole VPs from `order` until the budget is filled (last VP
/// truncated).
fn take_vps(order: &[VpId], per_vp: &BTreeMap<VpId, Vec<usize>>, budget: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for vp in order {
        if out.len() >= budget {
            break;
        }
        if let Some(idx) = per_vp.get(vp) {
            for &i in idx {
                if out.len() >= budget {
                    break;
                }
                out.push(i);
            }
        }
    }
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------------
// GILL and its simplified variants
// ---------------------------------------------------------------------------

/// Which part of GILL the sampler uses (§10's "GILL-simplified" rows).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GillVariant {
    /// Both components (the real system).
    Full,
    /// Component #1 only: update-granularity sampling.
    UpdOnly,
    /// Component #2 only: anchor-VP-granularity sampling.
    VpOnly,
}

/// GILL's sampling scheme, trained on a (past) window and applied through
/// its generated filters — exactly how the deployed system samples.
pub struct GillSampler {
    variant: GillVariant,
    filters: FilterSet,
    upd_filters: FilterSet,
    anchors: Vec<VpId>,
}

impl GillSampler {
    /// Trains GILL on `train` (runs both components, generates filters).
    pub fn train(
        train: &UpdateStream,
        categories: &HashMap<Asn, AsCategory>,
        cfg: &GillConfig,
        variant: GillVariant,
    ) -> Self {
        let analysis = GillAnalysis::run_with_categories(train, categories, cfg);
        Self::from_analysis(&analysis, train, variant)
    }

    /// Builds the sampler from an existing analysis (avoids re-training when
    /// benchmarking all three variants).
    pub fn from_analysis(
        analysis: &GillAnalysis,
        train: &UpdateStream,
        variant: GillVariant,
    ) -> Self {
        let filters = analysis.filter_set();
        // Component-#1-only filters: ignore anchors entirely.
        let redundant_updates: Vec<&BgpUpdate> = train
            .updates
            .iter()
            .zip(&analysis.component1.redundant)
            .filter_map(|(u, &r)| r.then_some(u))
            .collect();
        let upd_filters = FilterSet::generate(
            [],
            redundant_updates,
            gill_core::FilterGranularity::VpPrefix,
        );
        GillSampler {
            variant,
            filters,
            upd_filters,
            anchors: analysis.component2.anchors.clone(),
        }
    }

    /// The trained filter set (full variant).
    pub fn filters(&self) -> &FilterSet {
        &self.filters
    }

    /// The anchors found by component #2.
    pub fn anchors(&self) -> &[VpId] {
        &self.anchors
    }
}

impl Sampler for GillSampler {
    fn name(&self) -> String {
        match self.variant {
            GillVariant::Full => "GILL".into(),
            GillVariant::UpdOnly => "GILL-upd".into(),
            GillVariant::VpOnly => "GILL-vp".into(),
        }
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, seed: u64) -> Vec<usize> {
        let idx: Vec<usize> = match self.variant {
            GillVariant::Full => stream
                .updates
                .iter()
                .enumerate()
                .filter_map(|(i, u)| self.filters.accepts(u).then_some(i))
                .collect(),
            GillVariant::UpdOnly => stream
                .updates
                .iter()
                .enumerate()
                .filter_map(|(i, u)| self.upd_filters.accepts(u).then_some(i))
                .collect(),
            GillVariant::VpOnly => {
                let anchors: HashSet<VpId> = self.anchors.iter().copied().collect();
                stream
                    .updates
                    .iter()
                    .enumerate()
                    .filter_map(|(i, u)| anchors.contains(&u.vp).then_some(i))
                    .collect()
            }
        };
        truncate(idx, budget, seed)
    }
}

// ---------------------------------------------------------------------------
// Naive baselines
// ---------------------------------------------------------------------------

/// Rnd.-Upd: random updates regardless of VP.
#[derive(Clone, Copy, Default, Debug)]
pub struct RandomUpdates;

impl Sampler for RandomUpdates {
    fn name(&self) -> String {
        "Rnd.-Upd".into()
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, seed: u64) -> Vec<usize> {
        truncate((0..stream.updates.len()).collect(), budget, seed)
    }
}

/// Rnd.-VP: all updates from a random set of VPs (the scheme the survey
/// found most common in practice, §16).
#[derive(Clone, Copy, Default, Debug)]
pub struct RandomVps;

impl Sampler for RandomVps {
    fn name(&self) -> String {
        "Rnd.-VP".into()
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, seed: u64) -> Vec<usize> {
        let per_vp = by_vp(stream);
        let mut order: Vec<VpId> = per_vp.keys().copied().collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0);
        order.shuffle(&mut rng);
        take_vps(&order, &per_vp, budget)
    }
}

/// AS-Dist.: first VP random, subsequent VPs maximize the minimum AS-level
/// (hop) distance to already-selected VPs, distances measured on the AS
/// graph observed in the data.
#[derive(Clone, Copy, Default, Debug)]
pub struct AsDistance;

impl AsDistance {
    /// Hop-distance matrix between VP ASes over the union AS graph of the
    /// stream's paths.
    fn distances(stream: &UpdateStream) -> HashMap<(VpId, VpId), u32> {
        // adjacency from observed paths (initial RIBs + updates)
        let mut adj: HashMap<Asn, BTreeSet<Asn>> = HashMap::new();
        let mut add_path = |path: &bgp_types::AsPath| {
            for l in path.links() {
                adj.entry(l.from).or_default().insert(l.to);
                adj.entry(l.to).or_default().insert(l.from);
            }
        };
        for rib in stream.initial_ribs.values() {
            for (_, e) in rib.iter() {
                add_path(&e.path);
            }
        }
        for u in &stream.updates {
            add_path(&u.path);
        }
        let vps: Vec<VpId> = stream.vps.clone();
        let mut out = HashMap::new();
        for &v in &vps {
            // BFS from v's AS
            let mut dist: HashMap<Asn, u32> = HashMap::new();
            let mut q = std::collections::VecDeque::new();
            dist.insert(v.asn, 0);
            q.push_back(v.asn);
            while let Some(x) = q.pop_front() {
                let d = dist[&x];
                if let Some(nbrs) = adj.get(&x) {
                    for &y in nbrs {
                        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(y) {
                            e.insert(d + 1);
                            q.push_back(y);
                        }
                    }
                }
            }
            for &w in &vps {
                if v != w {
                    out.insert((v, w), dist.get(&w.asn).copied().unwrap_or(u32::MAX / 2));
                }
            }
        }
        out
    }
}

impl Sampler for AsDistance {
    fn name(&self) -> String {
        "AS-Dist.".into()
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, seed: u64) -> Vec<usize> {
        let per_vp = by_vp(stream);
        let vps: Vec<VpId> = per_vp.keys().copied().collect();
        if vps.is_empty() {
            return Vec::new();
        }
        let dist = Self::distances(stream);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0f0f_f0f0_1111_2222);
        let first = *vps.as_slice().choose(&mut rng).unwrap();
        let mut order = vec![first];
        let mut remaining: Vec<VpId> = vps.into_iter().filter(|&v| v != first).collect();
        while !remaining.is_empty() {
            // max-min distance to selected
            let pick = *remaining
                .iter()
                .max_by_key(|&&v| {
                    let m = order
                        .iter()
                        .map(|&s| dist.get(&(v, s)).copied().unwrap_or(0))
                        .min()
                        .unwrap_or(0);
                    (m, std::cmp::Reverse(v))
                })
                .unwrap();
            order.push(pick);
            remaining.retain(|&v| v != pick);
        }
        take_vps(&order, &per_vp, budget)
    }
}

/// Unbiased: starts from all VPs and iteratively removes the VP whose
/// removal most reduces sampling bias (the deviation of the VP-hosting-AS
/// category mix from the all-AS category mix, following \[57\]), then
/// collects all updates of the survivors.
pub struct Unbiased {
    categories: HashMap<Asn, AsCategory>,
}

impl Unbiased {
    /// Builds the baseline with the AS-category map used to measure bias.
    pub fn new(categories: HashMap<Asn, AsCategory>) -> Self {
        Unbiased { categories }
    }

    fn bias(&self, vps: &[VpId], reference: &[f64; 5]) -> f64 {
        let mut hist = [0.0f64; 5];
        for v in vps {
            let c = self
                .categories
                .get(&v.asn)
                .copied()
                .unwrap_or(AsCategory::Stub);
            hist[c.id() as usize - 1] += 1.0;
        }
        let n: f64 = hist.iter().sum();
        if n == 0.0 {
            return 0.0;
        }
        hist.iter()
            .zip(reference)
            .map(|(h, r)| (h / n - r).abs())
            .sum()
    }
}

impl Sampler for Unbiased {
    fn name(&self) -> String {
        "Unbiased".into()
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, _seed: u64) -> Vec<usize> {
        let per_vp = by_vp(stream);
        let mut selected: Vec<VpId> = per_vp.keys().copied().collect();
        // reference distribution: all ASes in the category map
        let mut reference = [0.0f64; 5];
        for c in self.categories.values() {
            reference[c.id() as usize - 1] += 1.0;
        }
        let total: f64 = reference.iter().sum::<f64>().max(1.0);
        for r in reference.iter_mut() {
            *r /= total;
        }
        // shrink the VP set until the updates fit the budget
        let volume =
            |sel: &[VpId]| -> usize { sel.iter().map(|v| per_vp.get(v).map_or(0, Vec::len)).sum() };
        while selected.len() > 1 && volume(&selected) > budget {
            // remove the VP whose removal yields the lowest bias
            let (best_i, _) = selected
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let mut without: Vec<VpId> = selected.clone();
                    without.remove(i);
                    (i, self.bias(&without, &reference))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .unwrap();
            selected.remove(best_i);
        }
        take_vps(&selected, &per_vp, budget)
    }
}

// ---------------------------------------------------------------------------
// Definition-based specifics
// ---------------------------------------------------------------------------

/// The §4 "specific sampling strategies": greedily pick the VP that adds
/// the fewest updates redundant (under `def`) with the already-selected
/// set.
pub struct DefSpecific {
    def: RedundancyDef,
}

impl DefSpecific {
    /// A sampler optimized for one redundancy definition.
    pub fn new(def: RedundancyDef) -> Self {
        DefSpecific { def }
    }
}

impl Sampler for DefSpecific {
    fn name(&self) -> String {
        match self.def {
            RedundancyDef::Def1 => "Def. 1".into(),
            RedundancyDef::Def2 => "Def. 2".into(),
            RedundancyDef::Def3 => "Def. 3".into(),
        }
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, _seed: u64) -> Vec<usize> {
        let per_vp = by_vp(stream);
        let vps: Vec<VpId> = per_vp.keys().copied().collect();
        if vps.is_empty() {
            return Vec::new();
        }
        // pairwise redundancy: fraction of v1's updates redundant with v2's
        let pair = gill_core::vp_pair_redundancy(&stream.updates, self.def);
        // seed with the VP with most updates (maximizes initial info)
        let first = *vps
            .iter()
            .max_by_key(|&&v| (per_vp[&v].len(), std::cmp::Reverse(v)))
            .unwrap();
        let mut order = vec![first];
        let mut remaining: Vec<VpId> = vps.into_iter().filter(|&v| v != first).collect();
        while !remaining.is_empty() {
            // add the VP with the lowest max redundancy w.r.t. selected
            let pick = *remaining
                .iter()
                .min_by(|&&a, &&b| {
                    let ra = order
                        .iter()
                        .map(|&s| pair.get(&(a, s)).copied().unwrap_or(0.0))
                        .fold(0.0f64, f64::max);
                    let rb = order
                        .iter()
                        .map(|&s| pair.get(&(b, s)).copied().unwrap_or(0.0))
                        .fold(0.0f64, f64::max);
                    ra.partial_cmp(&rb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.cmp(&b))
                })
                .unwrap();
            order.push(pick);
            remaining.retain(|&v| v != pick);
        }
        take_vps(&order, &per_vp, budget)
    }
}

// ---------------------------------------------------------------------------
// Use-case-based specifics
// ---------------------------------------------------------------------------

/// A "use-case-based specific" sampler: greedily adds the VP that best
/// improves `objective(selected updates)` per update added — deliberately
/// overfit to one use case (§10's diagonal).
pub struct ObjectiveSpecific<F> {
    label: String,
    objective: F,
}

impl<F> ObjectiveSpecific<F>
where
    F: Fn(&UpdateStream, &[usize]) -> f64,
{
    /// Wraps a use-case objective. The closure receives the stream and the
    /// candidate retained indices and returns a score (higher = better).
    pub fn new(label: impl Into<String>, objective: F) -> Self {
        ObjectiveSpecific {
            label: label.into(),
            objective,
        }
    }
}

impl<F> Sampler for ObjectiveSpecific<F>
where
    F: Fn(&UpdateStream, &[usize]) -> f64,
{
    fn name(&self) -> String {
        format!("Specific({})", self.label)
    }

    fn sample(&self, stream: &UpdateStream, budget: usize, _seed: u64) -> Vec<usize> {
        let per_vp = by_vp(stream);
        let vps: Vec<VpId> = per_vp.keys().copied().collect();
        // A small number of fully greedy (marginal-gain) rounds, then rank
        // the rest by standalone objective-per-update — a bounded
        // approximation of the paper's greedy that keeps the benchmark
        // tractable at hundreds of VPs.
        const GREEDY_ROUNDS: usize = 6;
        let mut remaining: Vec<VpId> = vps.clone();
        let mut selected_idx: Vec<usize> = Vec::new();
        let mut order: Vec<VpId> = Vec::new();
        let mut current = (self.objective)(stream, &selected_idx);
        for _ in 0..GREEDY_ROUNDS {
            if remaining.is_empty() || selected_idx.len() >= budget {
                break;
            }
            let mut best: Option<(f64, f64, VpId)> = None;
            for &v in &remaining {
                let mut cand = selected_idx.clone();
                cand.extend(&per_vp[&v]);
                cand.sort_unstable();
                let total = (self.objective)(stream, &cand);
                let marginal = total - current;
                let cost = per_vp[&v].len().max(1) as f64;
                let ratio = marginal / cost;
                if best.is_none_or(|(b, _, bv)| ratio > b || (ratio == b && v < bv)) {
                    best = Some((ratio, total, v));
                }
            }
            let (_, total, v) = best.unwrap();
            order.push(v);
            selected_idx.extend(&per_vp[&v]);
            selected_idx.sort_unstable();
            current = total;
            remaining.retain(|&x| x != v);
        }
        // standalone ranking for the tail
        let mut scored: Vec<(f64, VpId)> = remaining
            .iter()
            .map(|&v| {
                let score = (self.objective)(stream, &per_vp[&v]);
                (score / per_vp[&v].len().max(1) as f64, v)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        order.extend(scored.into_iter().map(|(_, v)| v));
        take_vps(&order, &per_vp, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};
    use gill_core::AnchorConfig;

    fn world() -> (UpdateStream, UpdateStream, HashMap<Asn, AsCategory>) {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let cats = as_topology::categories::classify(&topo);
        let map: HashMap<Asn, AsCategory> = (0..topo.num_ases() as u32)
            .map(|u| (topo.asn(u), cats[u as usize]))
            .collect();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 3);
        let train = sim.synthesize_stream(&vps, StreamConfig::default().events(40).seed(100));
        let eval = sim.synthesize_stream(&vps, StreamConfig::default().events(40).seed(200));
        (train, eval, map)
    }

    fn check_sample(idx: &[usize], stream: &UpdateStream, budget: usize) {
        assert!(idx.len() <= budget);
        for w in idx.windows(2) {
            assert!(w[0] < w[1], "indices must be sorted unique");
        }
        for &i in idx {
            assert!(i < stream.updates.len());
        }
    }

    #[test]
    fn random_updates_honors_budget_and_determinism() {
        let (_, eval, _) = world();
        let s = RandomUpdates;
        let a = s.sample(&eval, 50, 1);
        let b = s.sample(&eval, 50, 1);
        assert_eq!(a, b);
        check_sample(&a, &eval, 50);
        assert_eq!(a.len(), 50.min(eval.updates.len()));
    }

    #[test]
    fn random_vps_takes_whole_vps() {
        let (_, eval, _) = world();
        let s = RandomVps;
        let idx = s.sample(&eval, eval.updates.len(), 7);
        check_sample(&idx, &eval, eval.updates.len());
        assert_eq!(idx.len(), eval.updates.len());
        let small = s.sample(&eval, 20, 7);
        check_sample(&small, &eval, 20);
    }

    #[test]
    fn as_distance_spreads_vps() {
        let (_, eval, _) = world();
        let s = AsDistance;
        let idx = s.sample(&eval, 100, 3);
        check_sample(&idx, &eval, 100);
        assert!(!idx.is_empty());
    }

    #[test]
    fn unbiased_respects_budget() {
        let (_, eval, cats) = world();
        let s = Unbiased::new(cats);
        let idx = s.sample(&eval, 80, 3);
        check_sample(&idx, &eval, 80);
        assert!(!idx.is_empty());
    }

    #[test]
    fn def_specifics_produce_valid_samples() {
        let (_, eval, _) = world();
        for def in RedundancyDef::ALL {
            let s = DefSpecific::new(def);
            let idx = s.sample(&eval, 120, 3);
            check_sample(&idx, &eval, 120);
            assert!(!idx.is_empty());
        }
    }

    #[test]
    fn gill_variants_sample_through_filters() {
        let (train, eval, cats) = world();
        let cfg = GillConfig {
            anchor: AnchorConfig {
                events_per_cell: 3,
                ..AnchorConfig::default()
            },
            ..GillConfig::default()
        };
        let analysis = GillAnalysis::run_with_categories(&train, &cats, &cfg);
        let full = GillSampler::from_analysis(&analysis, &train, GillVariant::Full);
        let upd = GillSampler::from_analysis(&analysis, &train, GillVariant::UpdOnly);
        let vp = GillSampler::from_analysis(&analysis, &train, GillVariant::VpOnly);
        let budget = eval.updates.len();
        let fi = full.sample(&eval, budget, 1);
        let ui = upd.sample(&eval, budget, 1);
        let vi = vp.sample(&eval, budget, 1);
        check_sample(&fi, &eval, budget);
        check_sample(&ui, &eval, budget);
        check_sample(&vi, &eval, budget);
        assert!(!fi.is_empty());
        // vp-only retains exactly the anchors' updates
        let anchors: HashSet<VpId> = vp.anchors().iter().copied().collect();
        for &i in &vi {
            assert!(anchors.contains(&eval.updates[i].vp));
        }
        // the full variant keeps at least everything vp-only keeps
        let fset: HashSet<usize> = fi.iter().copied().collect();
        for &i in &vi {
            assert!(fset.contains(&i), "anchor update missing from full GILL");
        }
    }

    #[test]
    fn gill_discards_redundancy_but_keeps_signal() {
        let (train, eval, cats) = world();
        let cfg = GillConfig {
            anchor: AnchorConfig {
                events_per_cell: 3,
                ..AnchorConfig::default()
            },
            ..GillConfig::default()
        };
        let full = GillSampler::train(&train, &cats, &cfg, GillVariant::Full);
        let kept = full.sample(&eval, usize::MAX, 1);
        assert!(kept.len() < eval.updates.len(), "GILL discarded nothing");
        assert!(!kept.is_empty());
    }

    #[test]
    fn objective_specific_maximizes_its_objective() {
        let (_, eval, _) = world();
        // objective: number of distinct prefixes covered
        let obj = |s: &UpdateStream, idx: &[usize]| {
            let set: BTreeSet<bgp_types::Prefix> =
                idx.iter().map(|&i| s.updates[i].prefix).collect();
            set.len() as f64
        };
        let s = ObjectiveSpecific::new("prefix-cover", obj);
        let budget = eval.updates.len() / 4;
        let idx = s.sample(&eval, budget, 1);
        check_sample(&idx, &eval, budget);
        let rnd = RandomVps.sample(&eval, budget, 1);
        let cover = |idx: &[usize]| {
            idx.iter()
                .map(|&i| eval.updates[i].prefix)
                .collect::<BTreeSet<_>>()
                .len()
        };
        assert!(
            cover(&idx) >= cover(&rnd),
            "specific {} < random {}",
            cover(&idx),
            cover(&rnd)
        );
    }
}
