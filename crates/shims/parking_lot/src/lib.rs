//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing the poison-free
//! `parking_lot` API (guards are returned directly, a poisoned lock is
//! recovered transparently).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose guards are returned without poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
