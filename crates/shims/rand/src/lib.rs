//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible subset of `rand 0.8`:
//! the [`Rng`]/[`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256++
//! seeded through SplitMix64) and [`seq::SliceRandom`]. Everything is
//! deterministic given a seed; statistical quality is more than sufficient
//! for simulation and sampling workloads.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Marker for types uniformly samplable from a range (the
/// `SampleUniform` of real `rand`); its presence as a bound on
/// [`Rng::gen_range`] is what lets integer-literal ranges infer.
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(impl SampleUniform for $t {})*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, f64);

/// Ranges that can produce a uniform sample (the `SampleRange` of real
/// `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` without modulo bias worth caring about
/// (Lemire multiply-shift).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from ambient entropy (wall clock + address
    /// randomness) — non-reproducible, for non-test use only.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let local = 0u8;
        Self::seed_from_u64(t ^ (&local as *const u8 as u64).rotate_left(17))
    }
}

/// Concrete small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded via
    /// SplitMix64 (the same family real `rand` uses for `SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // avoid the all-zero state (unreachable with splitmix, but cheap)
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }

    /// Keep the trait object-safe while letting `Vec<T>` call through deref.
    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }
    }

    // Re-assert that the blanket Rng impl stays usable alongside this trait.
    const _: fn() = || {
        fn assert_rng<R: Rng>(_: &R) {}
        fn check(r: &super::rngs::SmallRng) {
            assert_rng(r);
        }
        let _ = check;
    };
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u8..=32);
            assert!(w <= 32);
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert_ne!(v, s, "shuffle left the identity order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SmallRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([9u32].choose(&mut r).is_some());
    }
}
