//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the exact surface the BGP wire codec uses: big-endian integer
//! accessors, cursor-based consumption (`advance`, `remaining`, `chunk`,
//! `copy_to_bytes`) and appending writers (`put_u8` … `put_bytes`,
//! `extend_from_slice`). Backed by plain `Vec<u8>` — no refcounted
//! zero-copy splitting, which none of this workspace needs.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

/// An owned immutable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    head: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            head: 0,
        }
    }

    /// Copies `src` into an owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            head: 0,
        }
    }

    /// Wraps a static slice (copied — this stand-in has no zero-copy path).
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Length of the unconsumed contents.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Copies the unconsumed contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.head += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, head: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// An owned mutable byte buffer: append at the tail, consume at the head.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut {
            data: Vec::new(),
            head: 0,
        }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Length of the unconsumed contents.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            head: self.head,
        }
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of BytesMut");
        let front = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// The unconsumed contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Drops already-consumed bytes, compacting the allocation.
    fn compact(&mut self) {
        if self.head >= 4096 {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.head += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, head: 0 }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.clone().freeze(), f)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEADBEEF);
        b.put_bytes(0xFF, 3);
        assert_eq!(b.len(), 10);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u32(), 0xDEADBEEF);
        assert_eq!(b.copy_to_bytes(3).as_slice(), &[0xFF; 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let hello = b.split_to(5);
        assert_eq!(hello.as_slice(), b"hello");
        assert_eq!(b.as_slice(), b" world");
        assert_eq!(b.freeze().as_slice(), b" world");
    }

    #[test]
    fn deref_indexing() {
        let b = BytesMut::from(&[1u8, 2, 3][..]);
        assert_eq!(b[1], 2);
        assert_eq!(&b[..2], &[1, 2]);
    }
}
