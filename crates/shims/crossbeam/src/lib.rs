//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided: MPMC bounded/unbounded channels built on
//! `Mutex` + `Condvar` with the same API shape as `crossbeam-channel`.
//! Throughput is lower than the real lock-free implementation but the
//! semantics (disconnect on last sender/receiver drop, non-blocking
//! `try_send`, `recv_timeout`) match.

#![forbid(unsafe_code)]

/// MPMC channels in the style of `crossbeam-channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and full; the message is handed back.
        Full(T),
        /// All receivers are gone; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing queued.
        Timeout,
        /// Empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Creates a channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// Creates a channel with an unbounded queue.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queues `msg`, blocking while the channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(c) if st.queue.len() >= c => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Queues `msg` without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(c) = st.cap {
                if st.queue.len() >= c {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives or all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator over immediately available messages.
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator that ends on disconnect.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn bounded_backpressure_and_order() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
            let (tx2, rx2) = unbounded::<u32>();
            tx2.try_send(9).unwrap();
            drop(tx2);
            assert_eq!(rx2.recv().unwrap(), 9);
            assert_eq!(rx2.recv(), Err(RecvError));
            assert_eq!(
                rx2.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = bounded(1);
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
