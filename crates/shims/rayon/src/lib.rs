//! Offline stand-in for the `rayon` crate.
//!
//! Provides the small data-parallel surface the GILL analysis pipeline
//! uses — `par_iter()` / `into_par_iter()` on slices, `Vec`s and ranges,
//! with `map`, `for_each` and order-preserving `collect`, plus
//! [`join`] — implemented over `std::thread::scope`. Unlike real rayon
//! there is no work-stealing pool: each parallel call splits its input
//! into `current_num_threads()` contiguous chunks and spawns one scoped
//! thread per chunk. Results are concatenated in input order, so every
//! reduction is **deterministic** and bit-identical to the sequential
//! path regardless of thread count.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like real rayon) and
//! falls back to `std::thread::available_parallelism`. With one thread
//! the input is processed inline with zero spawn overhead.

#![forbid(unsafe_code)]

use std::sync::OnceLock;

/// Number of worker threads parallel calls fan out to.
///
/// Honors `RAYON_NUM_THREADS` when set to a positive integer, otherwise
/// uses the machine's available parallelism.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Splits `items` into per-thread chunks, maps each element with `f` on a
/// scoped worker thread, and returns results in input order.
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

/// Parallel iterator adaptors.
pub mod iter {
    use super::execute;

    /// An eager parallel iterator over an owned list of items.
    ///
    /// `map` evaluates immediately across worker threads (the mapping
    /// closure is where the work lives in every call site this workspace
    /// has); the result preserves input order.
    pub struct ParIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps every element in parallel, preserving order.
        pub fn map<R, F>(self, f: F) -> ParIter<R>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParIter {
                items: execute(self.items, f),
            }
        }

        /// Runs `f` on every element in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            let _ = execute(self.items, f);
        }

        /// Collects the (already order-preserving) results.
        pub fn collect<C: FromIterator<T>>(self) -> C {
            self.items.into_iter().collect()
        }

        /// Compatibility no-op: chunking here is always contiguous.
        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }
    }

    /// Conversion of owned collections into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;

        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Item = u32;
        fn into_par_iter(self) -> ParIter<u32> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    /// Borrowing conversion (`par_iter()`) for slice-backed collections.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed element type.
        type Item: Send + 'a;

        /// A parallel iterator over references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

/// The traits a caller needs in scope.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_range() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn for_each_runs_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..1000usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
