//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, integer range
//! strategies, tuple strategies, `collection::vec`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Case generation is **deterministic**: every test derives its RNG seed
//! from the test-function name and the case index, so failures reproduce
//! exactly on re-run. There is no shrinking — a failing case reports the
//! case index and the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies during generation.
pub type TestRng = SmallRng;

/// An error raised by a failing property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// A rejected case (treated as failure here — no case filtering).
    pub fn reject<S: Into<String>>(message: S) -> Self {
        Self::fail(message)
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of arbitrary values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (*self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward small values half the time: edge-heavy
                // domains (ASNs, lengths) exercise more interesting paths.
                if rng.gen::<bool>() {
                    (rng.gen_range(0u64..=u8::MAX as u64)) as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Same small-value bias as the other integers, with full-width
        // values composed from two u64 draws.
        if rng.gen::<bool>() {
            rng.gen_range(0u64..=u8::MAX as u64) as u128
        } else {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy that always produces a clone of one value (proptest's
/// `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by the [`prop_oneof!`] expansion to unify arm
/// types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A weighted union of strategies over one value type — what
/// [`prop_oneof!`] builds.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

/// Builds a weighted [`Union`]. Panics on empty input or all-zero
/// weights.
pub fn union<T>(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
    let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "prop_oneof! needs at least one positive weight");
    Union { arms, total }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type: `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::union(vec![$(($weight as u32, $crate::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::boxed($strategy))),+])
    };
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: len.start,
            max: len.end,
        }
    }
}

/// Drives a single property test: `cases` deterministic generations of
/// `strategy`, each run through `body`. Panics with the case number and
/// message on the first failure. Used by the [`proptest!`] expansion.
pub fn run_property_test<S, F>(test_name: &str, config: &ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ ((case as u64) << 32 | case as u64));
        let value = strategy.generate(&mut rng);
        if let Err(e) = body(value) {
            panic!(
                "proptest case {case}/{total} failed for `{test_name}`: {msg}",
                total = config.cases,
                msg = e.message()
            );
        }
    }
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in 0u32..100) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_property_test(
                stringify!($name),
                &config,
                strategy,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn add_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respected(x in 3u8..=9, y in 0usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }
    }

    proptest! {
        #[test]
        fn vec_lengths(v in collection::vec(any::<u16>(), 0..12)) {
            prop_assert!(v.len() < 12);
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(s in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 200);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (any::<u64>(), 0u8..255);
        let first = std::cell::RefCell::new(Vec::new());
        let second = std::cell::RefCell::new(Vec::new());
        crate::run_property_test("det", &ProptestConfig::with_cases(8), &s, |v| {
            first.borrow_mut().push(format!("{v:?}"));
            Ok(())
        });
        crate::run_property_test("det", &ProptestConfig::with_cases(8), &s, |v| {
            second.borrow_mut().push(format!("{v:?}"));
            Ok(())
        });
        assert_eq!(first.into_inner(), second.into_inner());
    }
}
