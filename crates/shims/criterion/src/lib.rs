//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness with the same calling convention:
//! [`Criterion::bench_function`] with a [`Bencher`] closure,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark does a short warm-up, then `sample_size`
//! timed samples, and prints median / mean / min nanoseconds per
//! iteration. No plots, no statistics beyond that — enough to compare
//! implementations on one machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness: collects samples for named benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: find an iteration count that takes a measurable slice
        // of time, then collect `sample_size` samples at that count.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let mut iters = 1u64;
        loop {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns[0];
        println!(
            "bench {name:<48} median {median:>12.1} ns/iter  mean {mean:>12.1}  min {min:>12.1}  ({iters} iters x {} samples)",
            samples_ns.len()
        );
        self
    }

    /// Compatibility no-op (criterion parses CLI filters here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op (criterion prints its summary here).
    pub fn final_summary(&mut self) {}
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runnable via [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }
}
