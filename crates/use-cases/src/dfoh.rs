//! DFOH-style forged-origin hijack inference (§12).
//!
//! DFOH \[25\] flags *new AS links adjacent to an origin* as suspicious and
//! classifies them as hijack vs legitimate using topological plausibility
//! features computed on the knowledge base of previously-observed links.
//! The quality of the knowledge base — which depends on how the BGP data
//! was sampled — drives both the true-positive and the false-positive
//! rate, which is exactly the effect §12 measures (DFOH over GILL-sampled
//! data vs over a random VP sample).

use bgp_sim::{EventKind, UpdateStream};
use bgp_types::Asn;
use std::collections::{HashMap, HashSet};

/// Outcome of a DFOH replication run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfohResult {
    /// Suspicious cases surfaced from the sample.
    pub cases: usize,
    /// Ground-truth hijacks flagged as hijacks.
    pub true_positives: usize,
    /// Ground-truth hijacks (the TPR denominator).
    pub hijacks_total: usize,
    /// Legitimate suspicious cases misclassified as hijacks.
    pub false_positives: usize,
    /// Legitimate suspicious cases (the FPR denominator).
    pub legit_total: usize,
}

impl DfohResult {
    /// True positive rate.
    pub fn tpr(&self) -> f64 {
        if self.hijacks_total == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.hijacks_total as f64
        }
    }

    /// False positive rate.
    pub fn fpr(&self) -> f64 {
        if self.legit_total == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.legit_total as f64
        }
    }
}

/// Undirected adjacency knowledge base with a 2-hop reachability check.
struct KnowledgeBase {
    adj: HashMap<Asn, HashSet<Asn>>,
}

impl KnowledgeBase {
    fn new() -> Self {
        KnowledgeBase {
            adj: HashMap::new(),
        }
    }

    fn add_link(&mut self, a: Asn, b: Asn) {
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    fn has_link(&self, a: Asn, b: Asn) -> bool {
        self.adj.get(&a).map(|s| s.contains(&b)).unwrap_or(false)
    }

    /// Plausibility: the pair shares at least one neighbor (2-hop
    /// proximity) in the knowledge base.
    fn plausible(&self, a: Asn, b: Asn) -> bool {
        let (Some(na), Some(nb)) = (self.adj.get(&a), self.adj.get(&b)) else {
            return false;
        };
        !na.is_disjoint(nb)
    }
}

/// Runs the DFOH replication on a sample: builds the link knowledge base
/// from the window-start RIBs of the sampled VPs and the sampled updates,
/// surfaces new origin-adjacent links, and classifies each as hijack when
/// the new adjacency is topologically implausible.
pub fn evaluate(stream: &UpdateStream, sample: &[usize]) -> DfohResult {
    let rib_vps: HashSet<bgp_types::VpId> = sample.iter().map(|&i| stream.updates[i].vp).collect();
    evaluate_with_ribs(stream, sample, &rib_vps)
}

/// [`evaluate`] with an explicit set of VPs whose window-start RIBs are
/// available (GILL only stores full RIBs for its anchors; whole-VP
/// baselines have RIBs for their selected VPs).
pub fn evaluate_with_ribs(
    stream: &UpdateStream,
    sample: &[usize],
    rib_vps: &HashSet<bgp_types::VpId>,
) -> DfohResult {
    evaluate_with_kb(stream, sample, rib_vps, &[])
}

/// [`evaluate_with_ribs`] with additional knowledge-base seed paths — the
/// AS paths of the data the scheme retained in *past* windows (DFOH runs
/// against the platform's whole archive, not a single hour).
pub fn evaluate_with_kb(
    stream: &UpdateStream,
    sample: &[usize],
    rib_vps: &HashSet<bgp_types::VpId>,
    kb_seed: &[bgp_types::AsPath],
) -> DfohResult {
    // ground truth: (prefix, attacker asn) per hijack event
    let mut hijack_links: HashSet<(Asn, Asn)> = HashSet::new();
    for e in &stream.events {
        if let EventKind::ForgedOriginHijack {
            prefix, attacker, ..
        } = e.kind
        {
            let victim = Asn(stream.prefix_origin[prefix as usize] + 1);
            let a = Asn(attacker + 1);
            hijack_links.insert(norm(a, victim));
        }
    }
    let hijacks_total = hijack_links.len();

    // knowledge base: seed paths (retained history) + links from the
    // available RIB dumps — updates add links as the window replays.
    let mut kb = KnowledgeBase::new();
    for p in kb_seed {
        for l in p.links() {
            kb.add_link(l.from, l.to);
        }
    }
    for vp in rib_vps {
        if let Some(rib) = stream.initial_ribs.get(vp) {
            for (_, entry) in rib.iter() {
                for l in entry.path.links() {
                    kb.add_link(l.from, l.to);
                }
            }
        }
    }

    let mut result = DfohResult {
        hijacks_total,
        ..DfohResult::default()
    };
    let mut seen_cases: HashSet<(Asn, Asn)> = HashSet::new();
    for &i in sample {
        let u = &stream.updates[i];
        if !u.is_announce() || u.path.hop_count() < 2 {
            continue;
        }
        let hops = u.path.hops();
        let origin = hops[hops.len() - 1];
        let before = hops[hops.len() - 2];
        if before == origin {
            continue;
        }
        let pair = norm(before, origin);
        let is_new = !kb.has_link(before, origin);
        if is_new && seen_cases.insert(pair) {
            // a suspicious case: new link adjacent to the origin
            let truth_hijack = hijack_links.contains(&pair);
            let flagged = !kb.plausible(before, origin);
            result.cases += 1;
            if truth_hijack {
                if flagged {
                    result.true_positives += 1;
                }
            } else {
                result.legit_total += 1;
                if flagged {
                    result.false_positives += 1;
                }
            }
        }
        // the update's links enter the knowledge base after classification
        for l in u.path.links() {
            kb.add_link(l.from, l.to);
        }
    }
    result
}

fn norm(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    fn stream() -> UpdateStream {
        let topo = TopologyBuilder::artificial(200, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.5, 3);
        sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(40)
                .seed(101)
                .weights([0.4, 0.4, 0.0, 0.2]),
        )
    }

    #[test]
    fn full_sample_catches_visible_hijacks() {
        let s = stream();
        let all: Vec<usize> = (0..s.updates.len()).collect();
        let r = evaluate(&s, &all);
        assert!(r.hijacks_total > 0);
        // rates are well-formed
        assert!((0.0..=1.0).contains(&r.tpr()));
        assert!((0.0..=1.0).contains(&r.fpr()));
        assert!(r.cases >= r.true_positives + r.false_positives);
    }

    #[test]
    fn empty_sample_finds_no_cases() {
        let s = stream();
        let r = evaluate(&s, &[]);
        assert_eq!(r.cases, 0);
        assert_eq!(r.tpr(), 0.0);
        assert_eq!(r.fpr(), 0.0);
    }

    #[test]
    fn richer_kb_lowers_false_positives() {
        let s = stream();
        let all: Vec<usize> = (0..s.updates.len()).collect();
        let tiny: Vec<usize> = all.iter().copied().step_by(10).collect();
        let r_full = evaluate(&s, &all);
        let r_tiny = evaluate(&s, &tiny);
        // with less knowledge, legitimate new links look implausible more
        // often — FPR must not improve with a poorer sample
        if r_tiny.legit_total > 0 && r_full.legit_total > 0 {
            assert!(
                r_full.fpr() <= r_tiny.fpr() + 0.25,
                "full {:.2} vs tiny {:.2}",
                r_full.fpr(),
                r_tiny.fpr()
            );
        }
    }
}
