//! Canonical BGP analyses used to evaluate sampling quality.
//!
//! The five §10 use cases (each exercising a different BGP attribute):
//!
//! * [`transient`] — I: transient paths (needs the *time*),
//! * [`moas`] — II: MOAS prefixes (needs the *prefix*),
//! * [`topomap`] — III: AS topology mapping (needs the *AS path*),
//! * [`action_comms`] — IV: action communities (needs *communities*),
//! * [`unchanged`] — V: unchanged-path updates (needs *communities*).
//!
//! Plus the §3/§11 simulation analyses ([`hijack`], [`failloc`],
//! [`topomap::static_link_coverage`]) and the §12 replications
//! ([`asrel`], [`dfoh`]).
//!
//! Every Table-2 evaluator follows the same shape: build the ground truth
//! from the full stream (`new`), then `score(stream, sample)` returns the
//! fraction of ground-truth events still detectable from the sampled
//! update indices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action_comms;
pub mod asrel;
pub mod dfoh;
pub mod failloc;
pub mod hijack;
pub mod moas;
pub mod topomap;
pub mod transient;
pub mod unchanged;

pub use action_comms::ActionCommunities;
pub use asrel::{ccs_accuracy, infer_relationships, validate, InferredRel};
pub use dfoh::{evaluate as dfoh_evaluate, DfohResult};
pub use failloc::{static_campaign, FaillocCampaign, FailureLocalization};
pub use hijack::{static_detection, HijackCampaign, HijackDetection};
pub use moas::MoasDetection;
pub use topomap::{static_link_coverage, TopologyMapping};
pub use transient::TransientPaths;
pub use unchanged::UnchangedPath;
