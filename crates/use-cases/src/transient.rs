//! Use case I — transient paths detection (§10).
//!
//! A transient path is a BGP route visible for less than five minutes (a
//! typical convergence delay), usually produced by path exploration. The
//! detector scans each `(VP, prefix)` update sequence for an announcement
//! superseded by a different route (or a withdrawal) within the window.

use bgp_sim::UpdateStream;
use bgp_types::{Prefix, VpId};
use std::collections::{BTreeMap, HashSet};

/// Maximum visibility (ms) for a route to count as transient (5 minutes).
pub const TRANSIENT_WINDOW_MS: u64 = 300_000;

/// A detected transient-path event: the prefix and the coarse time bucket
/// of the exploration episode. Keyed at the *event* level — observing the
/// episode from any single VP detects it (the paper counts events, which
/// is what makes heavy sampling survivable for this use case).
pub type TransientKey = (Prefix, u64);

/// Detects transient-path events among the updates selected by `indices`
/// (sorted): an announcement superseded by a different route (or a
/// withdrawal) at the same VP within the window.
pub fn detect(stream: &UpdateStream, indices: &[usize]) -> HashSet<TransientKey> {
    let mut per_key: BTreeMap<(VpId, Prefix), Vec<usize>> = BTreeMap::new();
    for &i in indices {
        let u = &stream.updates[i];
        per_key.entry((u.vp, u.prefix)).or_default().push(i);
    }
    let mut out = HashSet::new();
    for ((_vp, prefix), idxs) in per_key {
        for w in idxs.windows(2) {
            let a = &stream.updates[w[0]];
            let b = &stream.updates[w[1]];
            if a.is_announce()
                && (b.time - a.time).as_millis() < TRANSIENT_WINDOW_MS as u128
                && (a.path != b.path)
            {
                out.insert((prefix, a.time.as_millis() / TRANSIENT_WINDOW_MS));
            }
        }
    }
    out
}

/// The Table-2 evaluator: fraction of full-stream transient events still
/// detected from the sample.
pub struct TransientPaths {
    truth: HashSet<TransientKey>,
}

impl TransientPaths {
    /// Builds the ground truth from the full stream.
    pub fn new(stream: &UpdateStream) -> Self {
        let all: Vec<usize> = (0..stream.updates.len()).collect();
        TransientPaths {
            truth: detect(stream, &all),
        }
    }

    /// Number of ground-truth events.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Detection score of a sample in `[0, 1]`.
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let found = detect(stream, sample);
        let hit = self.truth.intersection(&found).count();
        hit as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    fn stream() -> UpdateStream {
        let topo = TopologyBuilder::artificial(150, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.4, 3);
        sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(40)
                .seed(31)
                .explore_prob(1.0),
        )
    }

    #[test]
    fn full_sample_scores_one() {
        let s = stream();
        let uc = TransientPaths::new(&s);
        assert!(uc.truth_size() > 0, "explore_prob 1 must create transients");
        let all: Vec<usize> = (0..s.updates.len()).collect();
        assert!((uc.score(&s, &all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sample_scores_zero() {
        let s = stream();
        let uc = TransientPaths::new(&s);
        assert_eq!(uc.score(&s, &[]), 0.0);
    }

    #[test]
    fn dropping_updates_can_only_reduce_detection() {
        let s = stream();
        let uc = TransientPaths::new(&s);
        let all: Vec<usize> = (0..s.updates.len()).collect();
        let half: Vec<usize> = all.iter().copied().step_by(2).collect();
        assert!(uc.score(&s, &half) <= uc.score(&s, &all) + 1e-9);
    }
}
