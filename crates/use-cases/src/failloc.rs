//! Link-failure localization (§3.1, §11), after Feldmann et al. \[21\].
//!
//! When a link fails, every route that used it changes; the failed link is
//! in the *old* path but not the *new* path of each changed route. The
//! localization algorithm intersects, across all observations available to
//! the collection system, the per-route sets of disappeared links; the
//! failure is located when the intersection pins down the failed link.

use as_topology::{Relationship, Topology};
use bgp_sim::routing::{compute_routes, RouteTable, SourceAnnouncement};
use bgp_sim::UpdateStream;
use bgp_types::Timestamp;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Outcome of a localization campaign, split by link relationship.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaillocCampaign {
    /// p2p link failures simulated / localized.
    pub p2p_total: usize,
    /// p2p failures localized.
    pub p2p_localized: usize,
    /// c2p link failures simulated.
    pub c2p_total: usize,
    /// c2p failures localized.
    pub c2p_localized: usize,
}

impl FaillocCampaign {
    /// Localization rate over p2p failures.
    pub fn p2p_rate(&self) -> f64 {
        if self.p2p_total == 0 {
            1.0
        } else {
            self.p2p_localized as f64 / self.p2p_total as f64
        }
    }

    /// Localization rate over c2p failures.
    pub fn c2p_rate(&self) -> f64 {
        if self.c2p_total == 0 {
            1.0
        } else {
            self.c2p_localized as f64 / self.c2p_total as f64
        }
    }
}

/// Tries to localize the failure of `link` from the routes of `vp_nodes`:
/// returns `true` iff intersecting the disappeared-link sets over all
/// changed (VP, origin) routes yields exactly the failed link.
fn localize_one(
    topo: &Topology,
    before: &[RouteTable],
    link: (u32, u32),
    vp_nodes: &[u32],
) -> bool {
    let mut failed = HashSet::new();
    failed.insert(link);
    let mut candidates: Option<HashSet<(u32, u32)>> = None;
    for (origin, b) in before.iter().enumerate() {
        if !b.uses_link(link.0, link.1) {
            continue; // routes to this origin are unaffected
        }
        let after = compute_routes(topo, &[SourceAnnouncement::origin(origin as u32)], &failed);
        for &v in vp_nodes {
            let old = b.path(v);
            let new = after.path(v);
            if old == new {
                continue;
            }
            let Some(old) = old else { continue };
            let old_links: HashSet<(u32, u32)> = path_links(&old);
            let new_links: HashSet<(u32, u32)> = new.map(|p| path_links(&p)).unwrap_or_default();
            let disappeared: HashSet<(u32, u32)> =
                old_links.difference(&new_links).copied().collect();
            if disappeared.is_empty() {
                continue;
            }
            candidates = Some(match candidates {
                None => disappeared,
                Some(c) => c.intersection(&disappeared).copied().collect(),
            });
            if let Some(c) = &candidates {
                if c.len() == 1 {
                    // early exit: already pinned down
                    return c.contains(&norm(link));
                }
            }
        }
    }
    match candidates {
        Some(c) => c.len() == 1 && c.contains(&norm(link)),
        None => false, // invisible failure
    }
}

fn path_links(path: &[u32]) -> HashSet<(u32, u32)> {
    path.windows(2).map(|w| norm((w[0], w[1]))).collect()
}

#[inline]
fn norm(l: (u32, u32)) -> (u32, u32) {
    if l.0 < l.1 {
        l
    } else {
        (l.1, l.0)
    }
}

/// Runs a §3.1-style campaign: fails `count` random links (deterministic in
/// `seed`) and reports how many can be localized from `vp_nodes`' routes.
pub fn static_campaign(
    topo: &Topology,
    vp_nodes: &[u32],
    count: usize,
    seed: u64,
) -> FaillocCampaign {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa11_0c00_0000_0001);
    let mut links = topo.links();
    links.shuffle(&mut rng);
    links.truncate(count);
    // Precompute all before-tables once.
    let no_fail = HashSet::new();
    let before: Vec<RouteTable> = (0..topo.num_ases() as u32)
        .map(|o| compute_routes(topo, &[SourceAnnouncement::origin(o)], &no_fail))
        .collect();
    let mut out = FaillocCampaign::default();
    for l in links {
        let key = (l.a.min(l.b), l.a.max(l.b));
        let ok = localize_one(topo, &before, key, vp_nodes);
        match l.rel {
            Relationship::P2p => {
                out.p2p_total += 1;
                if ok {
                    out.p2p_localized += 1;
                }
            }
            Relationship::C2p => {
                out.c2p_total += 1;
                if ok {
                    out.c2p_localized += 1;
                }
            }
        }
    }
    out
}

/// Stream-based evaluator: for each ground-truth link-failure event, the
/// sample localizes it iff intersecting the withdrawn-link sets of the
/// sampled updates in the event's time vicinity yields the failed link.
pub struct FailureLocalization {
    truth: Vec<((u32, u32), Timestamp)>,
}

impl FailureLocalization {
    /// Collects ground-truth failures from the event log.
    pub fn new(stream: &UpdateStream) -> Self {
        let truth = stream
            .events
            .iter()
            .filter_map(|e| match e.kind {
                bgp_sim::EventKind::LinkFailure { a, b } => Some(((a.min(b), a.max(b)), e.time)),
                _ => None,
            })
            .collect();
        FailureLocalization { truth }
    }

    /// Number of injected failures.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Fraction of injected failures localized from the sample.
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let window = 100_000u64; // convergence slack
        let mut localized = 0usize;
        for &((a, b), t) in &self.truth {
            let mut candidates: Option<HashSet<(u32, u32)>> = None;
            for &i in sample {
                let u = &stream.updates[i];
                if u.time.as_millis() < t.as_millis()
                    || u.time.as_millis() > t.as_millis() + window
                    || u.withdrawn_links.is_empty()
                {
                    continue;
                }
                let disappeared: HashSet<(u32, u32)> = u
                    .withdrawn_links
                    .iter()
                    .map(|l| {
                        let x = l.from.value() - 1;
                        let y = l.to.value() - 1;
                        norm((x, y))
                    })
                    .collect();
                candidates = Some(match candidates {
                    None => disappeared,
                    Some(c) => {
                        let inter: HashSet<(u32, u32)> =
                            c.intersection(&disappeared).copied().collect();
                        if inter.is_empty() {
                            c // ignore observations of concurrent other events
                        } else {
                            inter
                        }
                    }
                });
            }
            if let Some(c) = candidates {
                if c.len() == 1 && c.contains(&(a, b)) {
                    localized += 1;
                }
            }
        }
        localized as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    #[test]
    fn full_coverage_localizes_most_failures() {
        let topo = TopologyBuilder::artificial(150, 5).build();
        let all: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let c = static_campaign(&topo, &all, 40, 1);
        let rate =
            (c.p2p_localized + c.c2p_localized) as f64 / (c.p2p_total + c.c2p_total).max(1) as f64;
        assert!(rate > 0.5, "full coverage localization rate {rate}");
    }

    #[test]
    fn sparse_coverage_localizes_fewer() {
        let topo = TopologyBuilder::artificial(200, 6).build();
        let all: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let few: Vec<u32> = vec![3, 77];
        let c_all = static_campaign(&topo, &all, 30, 2);
        let c_few = static_campaign(&topo, &few, 30, 2);
        let rate = |c: &FaillocCampaign| {
            (c.p2p_localized + c.c2p_localized) as f64 / (c.p2p_total + c.c2p_total).max(1) as f64
        };
        assert!(rate(&c_few) <= rate(&c_all) + 1e-9);
    }

    #[test]
    fn stream_scoring_is_monotone_in_sample_size() {
        let topo = TopologyBuilder::artificial(150, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.5, 3);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(20)
                .seed(91)
                .weights([1.0, 0.0, 0.0, 0.0])
                .explore_prob(0.0),
        );
        let uc = FailureLocalization::new(&s);
        assert!(uc.truth_size() > 0);
        let all: Vec<usize> = (0..s.updates.len()).collect();
        let full = uc.score(&s, &all);
        assert!(full > 0.0, "no failure localized at full sample");
        assert_eq!(uc.score(&s, &[]), 0.0);
    }
}
